"""The work-stealing shard queue, materialized in the artifact store.

PR 4's sharding statically partitions ranges: worker *k* computes shards
``k, k+N, ...`` and everyone idles behind the slowest straggler before the
merge can fire.  This module replaces assignment with **claiming**: the
pending work of a pipeline plan is the set of store keys that do not exist
yet, and a worker takes a unit of work by atomically creating a *claim
file* for its key.  ``O_CREAT | O_EXCL`` is the whole mutual-exclusion
story — the filesystem guarantees exactly one creator — so any number of
heterogeneous workers (threads, processes, machines sharing one
``REPRO_STORE_DIR`` over a network filesystem) drain one plan without a
coordinator.

Crash tolerance comes from **leases**: a claim carries its creation time
(the file's mtime), and a claim older than the lease is treated as
abandoned — some worker died mid-shard.  Stealing an expired claim is a
two-step dance that preserves single-winner semantics: rename the stale
claim file away (``os.rename`` has exactly one winner; losers see
``ENOENT``) and then re-create the claim with ``O_EXCL`` as usual.  The
artifact a crashed worker half-wrote is invisible by construction — store
writes land via temp file + ``os.replace``, so an interrupted shard leaves
only a stale ``.tmp.`` spill (swept by gc), never a truncated entry.  A
long *live* computation is distinguished from a dead worker by its
**heartbeat**: the claim holder refreshes the lease from a daemon thread
every third of the lease period (:meth:`ShardQueue.heartbeat`), so only a
worker that actually stopped — crashed, killed, wedged hard enough that
its heartbeat thread died too — loses its claim.

Lease expiry alone cannot handle the *other* deterministic failure: a
shard whose computation always crashes or raises would be stolen back,
re-crashed and re-stolen forever, livelocking the plan.  Claims therefore
carry **attempt counts** (persisted per task under ``queue/attempts/``),
and a task that fails :func:`default_max_attempts` times — by raising, or
by its holder dying and the lease-expiry steal recording the death — is
**quarantined**: a structured failure artifact (worker ids, per-attempt
errors, tracebacks) lands under ``queue/failures/``, and every worker
claiming or awaiting the task raises :class:`~repro.errors.PlanFailed`
naming the poison shard instead of spinning.

Completion needs no bookkeeping either: a unit of work is done exactly
when its store entry exists.  Workers therefore poll the store between
claim attempts, and the stage merge fires in whichever worker claims it
after the last shard lands.  Because every compute is a deterministic
function of fingerprinted inputs, even the worst race — two workers
computing the same shard because a lease expired under a live-but-slow
worker — is benign: both leave byte-identical entries.

A **plan** is how ``repro worker`` finds work in the first place: the
process that wants a pipeline resolved publishes its
:class:`~repro.store.stages.PipelineConfig` plus shard count as an ordinary
store artifact (kind ``plan``), and workers pointed at the directory
enumerate the plans and drain each one's stage graph through the claim
protocol until nothing is left to do.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import threading
import time
import traceback
from pathlib import Path

from repro.envutil import env_float, env_int
from repro.errors import PlanFailed
from repro.store.faults import fault_point

#: A claim older than this is an abandoned worker's, and may be stolen.
DEFAULT_LEASE_SECONDS = 300.0

#: How long a worker sleeps between probes while someone else holds a claim.
DEFAULT_POLL_SECONDS = 0.05

#: How many times a task may fail (raise, or crash its holder) before it is
#: quarantined instead of retried.
DEFAULT_MAX_ATTEMPTS = 3


def default_lease_seconds() -> float:
    """The claim lease from ``REPRO_QUEUE_LEASE`` (seconds), hardened."""
    return env_float("REPRO_QUEUE_LEASE", default=DEFAULT_LEASE_SECONDS, minimum=0.001)


def default_max_attempts() -> int:
    """The retry budget from ``REPRO_QUEUE_MAX_ATTEMPTS``, hardened.

    The minimum is 1: a budget of zero would quarantine every task before
    its first attempt, which can never be what an operator meant.
    """
    return env_int("REPRO_QUEUE_MAX_ATTEMPTS", default=DEFAULT_MAX_ATTEMPTS, minimum=1)


class _Heartbeat:
    """Context manager refreshing a held claim's lease from a daemon thread.

    The refresh period is a third of the lease, so even two consecutive
    missed beats (scheduler stall, slow NFS utime) leave the claim alive;
    only a worker whose whole process stopped loses it.  Exceptions from
    ``refresh`` are already swallowed there — a heartbeat must never be the
    thing that kills a healthy compute.
    """

    def __init__(self, queue: "ShardQueue", task_id: str):
        self._queue = queue
        self._task_id = task_id
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"lease-heartbeat-{task_id[:12]}", daemon=True
        )

    def _run(self) -> None:
        interval = max(self._queue.lease_seconds / 3.0, 0.005)
        while not self._stop.wait(interval):
            self._queue.refresh(self._task_id)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=1.0)


class ShardQueue:
    """Claim/lease/attempt coordination for one store directory.

    Claims live in ``<directory>/queue/claims/<key>.claim`` — beside, not
    inside, the artifact kind directories, so gc and stats never mistake
    them for entries.  Failed-attempt histories live beside them under
    ``queue/attempts/`` and quarantined-task records under
    ``queue/failures/``.  Task identifiers are artifact store keys
    (fingerprints), which are globally unique across kinds and plans, so
    one claim namespace serves every plan sharing the store.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        lease_seconds: float | None = None,
        poll_seconds: float | None = None,
        max_attempts: int | None = None,
    ):
        root = Path(directory) / "queue"
        self.claims = root / "claims"
        self.attempts_dir = root / "attempts"
        self.failures_dir = root / "failures"
        self.lease_seconds = (
            lease_seconds if lease_seconds is not None else default_lease_seconds()
        )
        self.poll_seconds = (
            poll_seconds if poll_seconds is not None else DEFAULT_POLL_SECONDS
        )
        self.max_attempts = (
            max_attempts if max_attempts is not None else default_max_attempts()
        )
        self.worker_id = (
            f"{socket.gethostname()}.{os.getpid()}.{threading.get_ident()}"
        )

    def _claim_path(self, task_id: str) -> Path:
        return self.claims / f"{task_id}.claim"

    def _attempts_path(self, task_id: str) -> Path:
        return self.attempts_dir / f"{task_id}.json"

    def _failure_path(self, task_id: str) -> Path:
        return self.failures_dir / f"{task_id}.json"

    # ------------------------------------------------------------------
    # The claim protocol.
    # ------------------------------------------------------------------

    def try_claim(self, task_id: str) -> bool:
        """Atomically take *task_id*; steal it first if its lease expired.

        Returns ``True`` for exactly one caller per claim lifetime: the
        ``O_EXCL`` create admits a single winner, and an expired claim is
        stolen through a single-winner ``os.rename`` before re-claiming.
        A quarantined task is never claimable, and stealing an expired
        claim records the dead holder's attempt — so a shard that kills
        every worker that touches it runs out of retry budget instead of
        livelocking the fleet.
        """
        if self.failure(task_id) is not None:
            return False
        path = self._claim_path(task_id)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
        except OSError:
            return False
        if self._create_claim(path, task_id):
            return True
        if not self._expired(path):
            return False
        # Steal: move the stale claim aside.  os.rename of one source has
        # exactly one winner — every losing stealer gets ENOENT — and the
        # slot then reopens for an ordinary O_EXCL claim (which a third
        # worker may legitimately win first).
        stale = path.with_name(
            f"{path.name}.stale.{os.getpid()}.{threading.get_ident()}"
        )
        try:
            os.rename(path, stale)
        except OSError:
            return False
        # We own the renamed file: read the dead holder's record before
        # discarding it, and charge the death against the task's budget.
        dead = {}
        try:
            dead = json.loads(stale.read_text())
        except (OSError, json.JSONDecodeError, ValueError):
            pass
        try:
            stale.unlink()
        except OSError:
            pass
        if self._record_attempt(
            task_id,
            worker=dead.get("worker", "unknown"),
            error="lease expired: worker crashed or stalled mid-compute "
            "(no heartbeat within the lease)",
            traceback_text=None,
        ):
            return False  # that death exhausted the budget: quarantined
        return self._create_claim(path, task_id)

    def _create_claim(self, path: Path, task_id: str) -> bool:
        from repro.store.artifact_store import retry_io

        payload = json.dumps(
            {
                "worker": self.worker_id,
                "claimed_at": time.time(),
                "attempt": len(self.attempts(task_id)) + 1,
            }
        )

        def create() -> int:
            fault_point("io_error", op="claim")
            return os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)

        try:
            descriptor = retry_io(create)
        except FileExistsError:
            return False
        except OSError:
            return False
        with os.fdopen(descriptor, "w") as handle:
            handle.write(payload)
        return True

    def _expired(self, path: Path) -> bool:
        try:
            age = time.time() - path.stat().st_mtime
        except OSError:
            # Vanished between the failed create and this stat: the holder
            # completed (or a stealer renamed it).  Not ours to steal; the
            # caller re-probes the store / retries the claim.
            return False
        return age > self.lease_seconds

    def refresh(self, task_id: str) -> None:
        """Extend the lease of a held claim (the heartbeat calls this so
        long computations are never mistaken for dead workers)."""
        try:
            os.utime(self._claim_path(task_id))
        except OSError:
            pass

    def heartbeat(self, task_id: str) -> _Heartbeat:
        """A context manager keeping the held claim *task_id* alive: a
        daemon thread refreshes the lease every ``lease/3`` seconds until
        the block exits (or the whole process dies — which is the point)."""
        return _Heartbeat(self, task_id)

    def complete(self, task_id: str) -> None:
        """Drop the claim after the artifact landed, and clear the task's
        failed-attempt history (it succeeded; old failures were transient)."""
        self.release(task_id)
        try:
            self._attempts_path(task_id).unlink()
        except OSError:
            pass

    def release(self, task_id: str) -> None:
        """Drop the claim *without* touching the attempt history — the
        failure path, so another worker may retry immediately without
        waiting out the lease."""
        try:
            self._claim_path(task_id).unlink()
        except OSError:
            pass

    def holder(self, task_id: str) -> dict | None:
        """The claim record for *task_id*, or ``None`` (diagnostics only)."""
        try:
            return json.loads(self._claim_path(task_id).read_text())
        except (OSError, json.JSONDecodeError, ValueError):
            return None

    # ------------------------------------------------------------------
    # Attempt accounting and quarantine.
    # ------------------------------------------------------------------

    def attempts(self, task_id: str) -> list[dict]:
        """The task's failed-attempt history (empty when it never failed)."""
        try:
            history = json.loads(self._attempts_path(task_id).read_text())
        except (OSError, json.JSONDecodeError, ValueError):
            return []
        return history if isinstance(history, list) else []

    def record_failure(self, task_id: str, error: BaseException) -> bool:
        """Charge a raised compute failure against *task_id*'s retry budget.

        Returns ``True`` when this failure was the last straw and the task
        is now quarantined (the caller should raise
        :class:`~repro.errors.PlanFailed` rather than retry).
        """
        return self._record_attempt(
            task_id,
            worker=self.worker_id,
            error=f"{type(error).__name__}: {error}",
            traceback_text="".join(
                traceback.format_exception(type(error), error, error.__traceback__)
            ),
        )

    def _record_attempt(
        self, task_id: str, worker: str, error: str, traceback_text: str | None
    ) -> bool:
        """Append one failed attempt; quarantine when the budget is spent.

        Only the claim winner (or the steal-rename winner) calls this, so
        the read-modify-write on the history file is single-writer by the
        claim protocol; the write itself is atomic (temp + ``os.replace``)
        so concurrent *readers* never see a torn history.
        """
        history = self.attempts(task_id)
        history.append(
            {
                "worker": worker,
                "at": time.time(),
                "attempt": len(history) + 1,
                "error": error,
                "traceback": traceback_text,
            }
        )
        if len(history) >= self.max_attempts:
            self._quarantine(task_id, history)
            return True
        self._write_json(self._attempts_path(task_id), history)
        return False

    def _quarantine(self, task_id: str, history: list[dict]) -> None:
        record = {
            "task": task_id,
            "quarantined_at": time.time(),
            "quarantined_by": self.worker_id,
            "max_attempts": self.max_attempts,
            "attempts": history,
        }
        self._write_json(self._failure_path(task_id), record)
        try:
            self._attempts_path(task_id).unlink()
        except OSError:
            pass

    def _write_json(self, path: Path, value) -> None:
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            temp = path.with_name(
                f"{path.name}.tmp.{os.getpid()}.{threading.get_ident()}"
            )
            temp.write_text(json.dumps(value, indent=2))
            os.replace(temp, path)
        except OSError:
            # Best-effort like every other queue write: losing an attempt
            # record costs at worst one extra retry, never correctness.
            pass

    def failure(self, task_id: str) -> dict | None:
        """The quarantine record for *task_id*, or ``None``."""
        try:
            record = json.loads(self._failure_path(task_id).read_text())
        except (OSError, json.JSONDecodeError, ValueError):
            return None
        return record if isinstance(record, dict) else None

    def raise_if_failed(self, task_id: str) -> None:
        """Raise :class:`~repro.errors.PlanFailed` if *task_id* was
        quarantined — how awaiting workers stop spinning on a poison shard."""
        record = self.failure(task_id)
        if record is not None:
            raise PlanFailed(task_id, record)

    # ------------------------------------------------------------------
    # Sweep randomization and inspection.
    # ------------------------------------------------------------------

    def sweep_offset(self, count: int) -> int:
        """This worker's deterministic sweep start over *count* task slots.

        Every worker sweeping pending tasks in the same sorted order
        collides on task 0's claim, loses, moves to task 1, collides again…
        — O(workers) wasted claim attempts per task on wide fan-outs.
        Hashing the worker id into a start offset spreads first touches
        across the pending set; sweeps still cover every task (rotation,
        not subset), so correctness is untouched.
        """
        if count <= 0:
            return 0
        digest = hashlib.sha256(self.worker_id.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "little") % count

    def sweep_order(self, task_ids, priorities=None) -> list:
        """*task_ids* in this worker's claim-sweep order.

        Priority first: tasks are grouped by descending priority (a missing
        entry in *priorities* reads as 0), so every worker finishes all
        higher-priority pending work before touching lower — the serve
        layer's per-plan priority field lands here.  Within one priority
        class the worker-id-hashed :meth:`sweep_offset` rotation still
        applies, so equal-priority workers spread their first touches
        instead of contending for the same claim.
        """
        if priorities:
            classes: dict = {}
            for task_id in task_ids:
                classes.setdefault(priorities.get(task_id, 0), []).append(task_id)
            ordered: list = []
            for priority in sorted(classes, reverse=True):
                bucket = classes[priority]
                offset = self.sweep_offset(len(bucket))
                ordered.extend(bucket[offset:] + bucket[:offset])
            return ordered
        order = list(task_ids)
        offset = self.sweep_offset(len(order))
        return order[offset:] + order[:offset]

    def claim_records(self) -> list[dict]:
        """All live claims, each with its task, holder, attempt and age
        (``repro queue status``)."""
        records: list[dict] = []
        now = time.time()
        try:
            paths = sorted(self.claims.glob("*.claim"))
        except OSError:
            return records
        for path in paths:
            record = {"task": path.name.removesuffix(".claim")}
            try:
                record.update(json.loads(path.read_text()))
                record["age_seconds"] = now - path.stat().st_mtime
            except (OSError, json.JSONDecodeError, ValueError):
                record["unreadable"] = True
            records.append(record)
        return records

    def failure_records(self) -> list[dict]:
        """All quarantine records, sorted by task (``repro queue status``)."""
        try:
            paths = sorted(self.failures_dir.glob("*.json"))
        except OSError:
            return []
        records = []
        for path in paths:
            try:
                record = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError, ValueError):
                record = {"task": path.stem, "unreadable": True}
            records.append(record)
        return records


# ---------------------------------------------------------------------------
# Published plans: how `repro worker` discovers what to drain.
# ---------------------------------------------------------------------------


def plan_fingerprint(cfg, shards: int) -> str:
    """The store key of the plan resolving *cfg* at *shards* shards.

    Keyed off the two execute-side fingerprints (which transitively include
    every upstream stage), so a plan readdresses whenever any stage of the
    pipeline it describes would.
    """
    from repro.store import stages
    from repro.store.fingerprint import fingerprint

    return fingerprint(
        "plan",
        {
            "suite": stages.suite_execution_fingerprint(cfg),
            "synthetic": stages.synthetic_execution_fingerprint(cfg),
            "shards": shards,
        },
    )


def publish_plan(store, cfg, shards: int, priority: int = 0) -> str:
    """Persist *cfg* as a drainable plan; returns its key.

    Idempotent: republishing the same configuration lands on the same key.
    *priority* is deliberately **not** part of the fingerprint — it
    describes urgency, not work — so republishing an already-pending plan
    at a new priority re-prioritizes it in place instead of duplicating it.
    """
    key = plan_fingerprint(cfg, shards)
    store.put("plan", key, {"config": cfg, "shards": shards, "priority": int(priority)})
    return key


def plan_priority(value: dict) -> int:
    """The priority of a published plan value (pre-priority plans read 0)."""
    priority = value.get("priority", 0) if isinstance(value, dict) else 0
    if isinstance(priority, bool) or not isinstance(priority, int):
        return 0
    return priority


def load_plans(store) -> list[tuple[str, dict]]:
    """All published plans in *store*, as ``(key, value)`` pairs.

    Sorted by descending priority, then key, so every worker visits plans
    in the same order (workers colliding on the same plan is fine — that is
    the point — but a shared order drains one plan at full width before
    starting the next, and urgent plans drain before backfill).
    """
    plans = [
        (key, value)
        for key in sorted(store.keys("plan"))
        if (value := store.get("plan", key)) is not None
    ]
    plans.sort(key=lambda pair: (-plan_priority(pair[1]), pair[0]))
    return plans


def queue_status(directory, lease_seconds: float | None = None) -> dict:
    """Machine-readable queue state for one store directory.

    The single code path behind ``repro queue status --json`` and the serve
    layer's ``GET /queue`` endpoint, so dashboards and the front door can
    never disagree about what "live" or "quarantined" means.
    """
    queue = ShardQueue(directory, lease_seconds=lease_seconds)
    claims = queue.claim_records()
    for record in claims:
        record["expired"] = record.get("age_seconds", 0.0) > queue.lease_seconds
    return {
        "directory": str(directory),
        "lease_seconds": queue.lease_seconds,
        "max_attempts": queue.max_attempts,
        "claims": claims,
        "failures": queue.failure_records(),
    }


def drain_plan(runner, cfg) -> None:
    """Resolve every stage of *cfg* through *runner*.

    Ordered so independent work comes first: the suite-side measurements
    need no model, so workers blocked behind another worker's ``train``
    claim would otherwise idle when there are still suite shards to take.
    ``content_files`` is listed explicitly because the sharded corpus merge
    consumes mine *shards* directly — without it the whole-``mine`` entry
    an unsharded run leaves behind would be missing, and queue-drained
    stores must be entry-for-entry identical to unsharded ones.

    Raises :class:`~repro.errors.PlanFailed` when any task of the plan was
    (or becomes) quarantined: the plan cannot complete, and every draining
    worker surfaces the same poison shard instead of spinning.
    """
    runner.suite_measurements(cfg)
    runner.content_files(cfg)
    runner.synthesis(cfg)
    runner.synthetic_measurements(cfg)
