"""Deterministic fault injection for the store/queue/runner stack.

A fault-tolerance layer is only trustworthy if its failure paths are
*executed*, not just written: a lease-expiry steal-back that has never run
against a worker that actually died mid-claim is a hope, not a mechanism.
This module gives tests and the chaos harness (``scripts/chaos_drain.py``)
a way to kill, starve and corrupt workers at every protocol edge — claim
taken, shard mid-compute, merge about to land, store entry half-written —
so the surviving fleet's recovery can be asserted byte-for-byte.

Faults are named by the ``REPRO_FAULTS`` environment variable: a
comma-separated list of specs, each ``name[:token]*`` where a token is
either ``key=value`` or a bare word (shorthand for ``op=<word>``).

=====================  ====================================================
spec                   effect at its injection point
=====================  ====================================================
``crash_after_claim``  die right after winning a claim (claim left held)
``crash_mid_shard``    die at the start of a shard's compute
``crash_pre_merge``    die after the merge computed, before its ``put``
``fail_shard``         raise :class:`InjectedFault` from a shard compute
                       (a deterministic, *catchable* poison failure)
``stall_shard``        sleep ``seconds=`` at the start of a shard compute
``torn_write``         land a truncated store entry (simulated torn write)
``io_error``           raise :class:`OSError` from store/queue I/O
                       (``op=put`` / ``op=get`` / ``op=claim``)
=====================  ====================================================

Parameters shared by every spec (everything else is a *match attribute*
that must equal the injection point's keyword, e.g. ``shard=2`` or
``kind=synthesis-shard``):

* ``p=0.3`` — fire probabilistically per occurrence from a seeded RNG
  (``seed=N``, default 0) instead of the default fire-once;
* ``times=N`` — arm the fault for N firings (default 1; with ``p`` the
  default is unlimited);
* ``mode=raise`` — crash faults raise :class:`InjectedCrash` (a
  ``BaseException``, so ordinary ``except Exception`` recovery code cannot
  swallow it) instead of ``os._exit(70)``.  The default hard exit is the
  faithful simulation — no ``finally`` blocks run, exactly like a kill —
  and is what the chaos harness's subprocess workers use;
* ``seconds=S`` — the stall duration for ``stall_*`` faults (default 1).

Examples::

    REPRO_FAULTS='crash_after_claim:shard=2'
    REPRO_FAULTS='torn_write:kind=synthesis-shard'
    REPRO_FAULTS='io_error:put:p=0.2:seed=7'
    REPRO_FAULTS='fail_shard:shard=1:p=1'        # poison: fails every time

With ``REPRO_FAULTS`` unset every injection point is a cheap no-op, so the
hooks stay threaded through production paths permanently.
"""

from __future__ import annotations

import os
import random
import threading
import time
import warnings
from dataclasses import dataclass, field

from repro.envutil import env_text

#: The exit status of a hard-crash fault — distinct from real failures so
#: the chaos harness can tell "worker killed as scripted" from "worker
#: found a genuine bug".
CRASH_EXIT_CODE = 70

#: Spec tokens that parameterize the fault rather than match the point.
_PARAMS = frozenset({"p", "seed", "times", "mode", "seconds"})

#: Names this module knows how to fire (a typo'd name would otherwise be
#: silently inert, which is the worst failure mode for a failure tester).
KNOWN_FAULTS = frozenset(
    {
        "crash_after_claim",
        "crash_mid_shard",
        "crash_pre_merge",
        "fail_shard",
        "stall_shard",
        "torn_write",
        "io_error",
    }
)


class InjectedFault(Exception):
    """A scripted *catchable* failure (``fail_*`` faults): stands in for a
    deterministic compute bug, so retry/quarantine paths can be driven."""


class InjectedCrash(BaseException):
    """A scripted crash in ``mode=raise``.

    Deliberately a ``BaseException``: recovery code that catches
    ``Exception`` must not be able to "handle" a simulated worker death —
    the whole point is that the claim stays held and cleanup never runs,
    as with a real kill.
    """


@dataclass
class FaultSpec:
    """One armed fault: a name, match attributes, and firing policy."""

    name: str
    attrs: dict[str, str] = field(default_factory=dict)
    p: float | None = None
    times: int = 1  # remaining firings; -1 = unlimited
    mode: str = "exit"
    seconds: float = 1.0
    rng: random.Random = field(default_factory=lambda: random.Random(0))

    def matches(self, point: str, attrs: dict) -> bool:
        if self.name != point:
            return False
        return all(str(attrs.get(key)) == value for key, value in self.attrs.items())


def parse_faults(raw: str) -> list[FaultSpec]:
    """Parse a ``REPRO_FAULTS`` value; malformed specs warn and are dropped
    (a typo in a chaos run must not silently disable the experiment)."""
    specs: list[FaultSpec] = []
    for chunk in raw.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        tokens = chunk.split(":")
        name = tokens[0].strip()
        if name not in KNOWN_FAULTS:
            warnings.warn(
                f"ignoring unknown fault {name!r} in REPRO_FAULTS "
                f"(known: {', '.join(sorted(KNOWN_FAULTS))})",
                RuntimeWarning,
                stacklevel=3,
            )
            continue
        attrs: dict[str, str] = {}
        params: dict[str, str] = {}
        for token in tokens[1:]:
            token = token.strip()
            if not token:
                continue
            if "=" in token:
                key, _, value = token.partition("=")
                (params if key in _PARAMS else attrs)[key] = value
            else:
                attrs["op"] = token
        try:
            p = float(params["p"]) if "p" in params else None
            seed = int(params.get("seed", "0"))
            seconds = float(params.get("seconds", "1.0"))
            times = int(params["times"]) if "times" in params else (-1 if p is not None else 1)
        except ValueError:
            warnings.warn(
                f"ignoring malformed fault spec {chunk!r} in REPRO_FAULTS",
                RuntimeWarning,
                stacklevel=3,
            )
            continue
        mode = params.get("mode", "exit")
        if mode not in ("exit", "raise"):
            warnings.warn(
                f"ignoring fault spec {chunk!r}: mode must be 'exit' or 'raise'",
                RuntimeWarning,
                stacklevel=3,
            )
            continue
        specs.append(
            FaultSpec(
                name=name,
                attrs=attrs,
                p=p,
                times=times,
                mode=mode,
                seconds=seconds,
                rng=random.Random(seed),
            )
        )
    return specs


class FaultPlan:
    """The armed faults of one process, with thread-safe firing state."""

    def __init__(self, specs: list[FaultSpec]):
        self._specs = specs
        self._lock = threading.Lock()

    def fire(self, point: str, **attrs) -> bool:
        """Fire any armed fault matching *point*.

        Crash faults terminate (or raise :class:`InjectedCrash`),
        ``io_error`` raises :class:`OSError`, ``fail_*`` raises
        :class:`InjectedFault`, ``stall_*`` sleeps.  Returns ``True`` when a
        behavior-bearing fault fired that the *caller* must enact
        (``torn_write``), ``False`` otherwise.
        """
        fired: FaultSpec | None = None
        with self._lock:
            for spec in self._specs:
                if not spec.matches(point, attrs):
                    continue
                if spec.times == 0:
                    continue
                if spec.p is not None and spec.rng.random() >= spec.p:
                    continue
                if spec.times > 0:
                    spec.times -= 1
                fired = spec
                break
        if fired is None:
            return False
        return self._enact(fired, point, attrs)

    @staticmethod
    def _enact(spec: FaultSpec, point: str, attrs: dict) -> bool:
        detail = ",".join(f"{key}={value}" for key, value in sorted(attrs.items()))
        if spec.name.startswith("crash"):
            if spec.mode == "raise":
                raise InjectedCrash(f"injected {spec.name} at {detail}")
            os._exit(CRASH_EXIT_CODE)
        if spec.name == "io_error":
            raise OSError(f"injected io_error at {detail}")
        if spec.name.startswith("fail"):
            raise InjectedFault(f"injected {spec.name} at {detail}")
        if spec.name.startswith("stall"):
            time.sleep(spec.seconds)
            return True
        return True  # torn_write (and any future caller-enacted fault)


#: Parsed-plan cache keyed on the raw env string, so one-shot firing state
#: survives across injection points within a process while a *changed*
#: REPRO_FAULTS re-arms from scratch.
_CACHE: tuple[str, FaultPlan] | None = None
_CACHE_LOCK = threading.Lock()


def active_plan() -> FaultPlan | None:
    """The process's armed fault plan, or ``None`` when ``REPRO_FAULTS`` is unset."""
    global _CACHE
    raw = env_text("REPRO_FAULTS")
    if raw is None:
        return None
    with _CACHE_LOCK:
        if _CACHE is None or _CACHE[0] != raw:
            _CACHE = (raw, FaultPlan(parse_faults(raw)))
        return _CACHE[1]


def reset() -> None:
    """Drop the cached plan so the next :func:`fault_point` re-arms from the
    environment (tests re-using identical spec strings need this)."""
    global _CACHE
    with _CACHE_LOCK:
        _CACHE = None


def fault_point(point: str, **attrs) -> bool:
    """Declare an injection point.  A no-op unless ``REPRO_FAULTS`` arms a
    matching fault; returns ``True`` when a caller-enacted fault fired."""
    plan = active_plan()
    if plan is None:
        return False
    return plan.fire(point, **attrs)


def shard_compute_faults(kind: str, shard: int) -> None:
    """The injection points at the top of every shard compute: die, poison,
    or stall — the three ways a real worker goes wrong mid-shard."""
    fault_point("crash_mid_shard", kind=kind, shard=shard)
    fault_point("fail_shard", kind=kind, shard=shard)
    fault_point("stall_shard", kind=kind, shard=shard)
