"""A character-level LSTM language model implemented in numpy.

The paper uses a 3-layer, 2048-node LSTM trained in Torch for three weeks on
a GTX Titan (§4.2).  This is the same architecture family — stacked LSTM
layers over a 1-of-K character encoding with a softmax output layer — scaled
to what a CPU can train in seconds-to-minutes, with full backpropagation
through time, gradient clipping and either SGD (the paper's optimizer, with
its 0.002 / halve-every-5-epochs schedule) or Adam.

The network is deliberately self-contained: parameters live in a flat
``dict[str, np.ndarray]`` so the optimizers and the checkpoint format stay
trivial, and sampling is exposed both through the generic
:meth:`next_distribution` interface and through a stateful
:class:`LSTMSamplerState` that the synthesizer uses to avoid re-encoding the
growing sample on every character.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.model.backend import LanguageModel, TrainingSummary, apply_temperature
from repro.model.optimizer import Adam, Optimizer, SGD, StepDecaySchedule, clip_gradients
from repro.model.vocabulary import CharacterVocabulary


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))


@dataclass
class LSTMConfig:
    """Hyper-parameters of the network and its training run."""

    hidden_size: int = 128
    num_layers: int = 2
    sequence_length: int = 64
    batch_size: int = 16
    epochs: int = 10
    optimizer: str = "adam"  # "adam" | "sgd"
    learning_rate: float = 0.002
    lr_decay_factor: float = 0.5
    lr_decay_interval: int = 5
    gradient_clip: float = 5.0
    seed: int = 0

    @classmethod
    def paper_configuration(cls) -> "LSTMConfig":
        """The configuration reported in §4.2 (not trainable on a laptop)."""
        return cls(
            hidden_size=2048,
            num_layers=3,
            sequence_length=128,
            batch_size=64,
            epochs=50,
            optimizer="sgd",
            learning_rate=0.002,
            lr_decay_factor=0.5,
            lr_decay_interval=5,
        )

    @classmethod
    def test_configuration(cls) -> "LSTMConfig":
        """A tiny configuration for unit tests."""
        return cls(hidden_size=24, num_layers=1, sequence_length=24, batch_size=4, epochs=2)


class LSTMLanguageModel(LanguageModel):
    """Stacked LSTM over characters with a softmax output layer."""

    def __init__(self, config: LSTMConfig | None = None):
        self.config = config or LSTMConfig()
        self.vocabulary = CharacterVocabulary.from_characters(["\x00"])
        self.parameters: dict[str, np.ndarray] = {}
        self._rng = np.random.default_rng(self.config.seed)
        self._trained = False

    # ------------------------------------------------------------------
    # Parameter management.
    # ------------------------------------------------------------------

    def _initialise_parameters(self) -> None:
        config = self.config
        vocabulary_size = self.vocabulary.size
        self.parameters = {}
        for layer in range(config.num_layers):
            input_size = vocabulary_size if layer == 0 else config.hidden_size
            scale = 1.0 / np.sqrt(max(input_size, 1))
            self.parameters[f"Wx{layer}"] = self._rng.normal(
                0, scale, size=(input_size, 4 * config.hidden_size)
            )
            self.parameters[f"Wh{layer}"] = self._rng.normal(
                0, 1.0 / np.sqrt(config.hidden_size), size=(config.hidden_size, 4 * config.hidden_size)
            )
            bias = np.zeros(4 * config.hidden_size)
            # Forget-gate bias of 1.0: standard trick for stable training.
            bias[config.hidden_size : 2 * config.hidden_size] = 1.0
            self.parameters[f"b{layer}"] = bias
        scale = 1.0 / np.sqrt(config.hidden_size)
        self.parameters["Why"] = self._rng.normal(0, scale, size=(config.hidden_size, vocabulary_size))
        self.parameters["by"] = np.zeros(vocabulary_size)

    @property
    def parameter_count(self) -> int:
        return int(sum(p.size for p in self.parameters.values()))

    def zero_state(self, batch_size: int) -> list[tuple[np.ndarray, np.ndarray]]:
        """Initial (h, c) pair per layer."""
        hidden = self.config.hidden_size
        return [
            (np.zeros((batch_size, hidden)), np.zeros((batch_size, hidden)))
            for _ in range(self.config.num_layers)
        ]

    # ------------------------------------------------------------------
    # Forward / backward over one truncated-BPTT window.
    # ------------------------------------------------------------------

    def _step_forward(self, x: np.ndarray, state: list[tuple[np.ndarray, np.ndarray]]):
        """One time-step through the stack.

        Args:
            x: One-hot inputs of shape ``(batch, vocab)``.
            state: Per-layer ``(h, c)``.

        Returns:
            (probabilities, new_state, cache) where cache holds everything the
            backward pass needs.
        """
        hidden = self.config.hidden_size
        caches = []
        layer_input = x
        new_state: list[tuple[np.ndarray, np.ndarray]] = []
        for layer in range(self.config.num_layers):
            h_prev, c_prev = state[layer]
            gates = (
                layer_input @ self.parameters[f"Wx{layer}"]
                + h_prev @ self.parameters[f"Wh{layer}"]
                + self.parameters[f"b{layer}"]
            )
            i = _sigmoid(gates[:, :hidden])
            f = _sigmoid(gates[:, hidden : 2 * hidden])
            o = _sigmoid(gates[:, 2 * hidden : 3 * hidden])
            g = np.tanh(gates[:, 3 * hidden :])
            c = f * c_prev + i * g
            tanh_c = np.tanh(c)
            h = o * tanh_c
            caches.append((layer_input, h_prev, c_prev, i, f, o, g, c, tanh_c))
            new_state.append((h, c))
            layer_input = h
        logits = layer_input @ self.parameters["Why"] + self.parameters["by"]
        logits -= logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        probabilities = exp / exp.sum(axis=1, keepdims=True)
        return probabilities, new_state, caches

    def _window_loss_and_gradients(
        self,
        inputs: np.ndarray,
        targets: np.ndarray,
        state: list[tuple[np.ndarray, np.ndarray]],
    ):
        """Forward + BPTT over a ``(time, batch)`` window of character indices."""
        time_steps, batch_size = inputs.shape
        vocabulary_size = self.vocabulary.size
        hidden = self.config.hidden_size

        probabilities_by_time = []
        caches_by_time = []
        states_by_time = [state]
        for t in range(time_steps):
            x = np.zeros((batch_size, vocabulary_size))
            x[np.arange(batch_size), inputs[t]] = 1.0
            probabilities, state, caches = self._step_forward(x, state)
            probabilities_by_time.append(probabilities)
            caches_by_time.append(caches)
            states_by_time.append(state)

        loss = 0.0
        for t in range(time_steps):
            correct = probabilities_by_time[t][np.arange(batch_size), targets[t]]
            loss -= float(np.sum(np.log(np.maximum(correct, 1e-12))))
        loss /= time_steps * batch_size

        gradients = {name: np.zeros_like(value) for name, value in self.parameters.items()}
        d_h_next = [np.zeros((batch_size, hidden)) for _ in range(self.config.num_layers)]
        d_c_next = [np.zeros((batch_size, hidden)) for _ in range(self.config.num_layers)]

        for t in reversed(range(time_steps)):
            probabilities = probabilities_by_time[t].copy()
            probabilities[np.arange(batch_size), targets[t]] -= 1.0
            probabilities /= time_steps * batch_size
            top_h = states_by_time[t + 1][-1][0]
            gradients["Why"] += top_h.T @ probabilities
            gradients["by"] += probabilities.sum(axis=0)
            d_layer_output = probabilities @ self.parameters["Why"].T

            for layer in reversed(range(self.config.num_layers)):
                layer_input, h_prev, c_prev, i, f, o, g, c, tanh_c = caches_by_time[t][layer]
                d_h = d_layer_output + d_h_next[layer]
                d_o = d_h * tanh_c
                d_c = d_h * o * (1 - tanh_c**2) + d_c_next[layer]
                d_i = d_c * g
                d_g = d_c * i
                d_f = d_c * c_prev
                d_c_prev = d_c * f

                d_gates = np.concatenate(
                    [
                        d_i * i * (1 - i),
                        d_f * f * (1 - f),
                        d_o * o * (1 - o),
                        d_g * (1 - g**2),
                    ],
                    axis=1,
                )
                gradients[f"Wx{layer}"] += layer_input.T @ d_gates
                gradients[f"Wh{layer}"] += h_prev.T @ d_gates
                gradients[f"b{layer}"] += d_gates.sum(axis=0)

                d_h_next[layer] = d_gates @ self.parameters[f"Wh{layer}"].T
                d_c_next[layer] = d_c_prev
                d_layer_output = d_gates @ self.parameters[f"Wx{layer}"].T

        final_state = [(h.copy(), c.copy()) for h, c in states_by_time[-1]]
        return loss, gradients, final_state

    # ------------------------------------------------------------------
    # Training.
    # ------------------------------------------------------------------

    def fit(self, text: str) -> TrainingSummary:
        if len(text) < self.config.sequence_length + 1:
            raise ModelError(
                "training text is shorter than one sequence window "
                f"({len(text)} < {self.config.sequence_length + 1})"
            )
        self.vocabulary = CharacterVocabulary.from_text(text)
        self._initialise_parameters()

        config = self.config
        encoded = np.array(self.vocabulary.encode(text), dtype=np.int64)

        optimizer: Optimizer
        if config.optimizer == "sgd":
            optimizer = SGD(learning_rate=config.learning_rate)
        else:
            optimizer = Adam(learning_rate=config.learning_rate)
        schedule = StepDecaySchedule(
            initial_rate=config.learning_rate,
            factor=config.lr_decay_factor,
            interval=config.lr_decay_interval,
        )

        # Lay the text out as `batch_size` parallel streams.
        batch_size = max(1, min(config.batch_size, len(encoded) // (config.sequence_length + 1)))
        stream_length = len(encoded) // batch_size
        streams = encoded[: stream_length * batch_size].reshape(batch_size, stream_length)

        losses: list[float] = []
        for epoch in range(config.epochs):
            optimizer.set_learning_rate(schedule.rate(epoch))
            state = self.zero_state(batch_size)
            epoch_loss = 0.0
            windows = 0
            for start in range(0, stream_length - 1 - config.sequence_length,
                               config.sequence_length):
                window = streams[:, start : start + config.sequence_length + 1]
                inputs = window[:, :-1].T.copy()
                targets = window[:, 1:].T.copy()
                loss, gradients, state = self._window_loss_and_gradients(inputs, targets, state)
                clip_gradients(gradients, config.gradient_clip)
                optimizer.step(self.parameters, gradients)
                epoch_loss += loss
                windows += 1
            if windows == 0:
                # Text shorter than one window per stream: train on what we have.
                window = streams[:, : config.sequence_length + 1]
                inputs = window[:, :-1].T.copy()
                targets = window[:, 1:].T.copy()
                loss, gradients, state = self._window_loss_and_gradients(
                    inputs, targets, self.zero_state(batch_size)
                )
                clip_gradients(gradients, config.gradient_clip)
                optimizer.step(self.parameters, gradients)
                epoch_loss, windows = loss, 1
            losses.append(epoch_loss / windows)
        self._trained = True
        return TrainingSummary(losses=losses, epochs=config.epochs, parameters=self.parameter_count)

    # ------------------------------------------------------------------
    # Prediction / sampling.
    # ------------------------------------------------------------------

    def next_distribution(self, context: str) -> np.ndarray:
        if not self._trained:
            raise ModelError("model has not been trained")
        state = self.zero_state(1)
        probabilities = np.ones(self.vocabulary.size) / self.vocabulary.size
        for character in context[-256:]:  # bounded context keeps this O(1)-ish
            x = np.zeros((1, self.vocabulary.size))
            x[0, self.vocabulary.index(character)] = 1.0
            probabilities, state, _ = self._step_forward(x, state)
            probabilities = probabilities[0]
        return probabilities

    def make_sampler(self, context: str = "") -> "LSTMSamplerState":
        """A stateful sampler primed with *context* (avoids O(n²) resampling)."""
        sampler = LSTMSamplerState(self)
        sampler.feed(context)
        return sampler

    def make_batch_sampler(self, context: str = "", batch_size: int = 1) -> "LSTMBatchSamplerState":
        """A stateful sampler advancing *batch_size* chains in lock-step.

        All chains share *context*: it is primed through the network once
        and the resulting state cloned per chain, so widening the batch
        costs one copy per lane instead of one forward pass per character
        per lane.  Every subsequent step is bit-identical to
        :class:`LSTMSamplerState` — see the class docstring for why the
        chains do *not* share one ``(N, vocab)`` forward pass.
        """
        return LSTMBatchSamplerState(self, batch_size, context)

    # ------------------------------------------------------------------
    # Serialization.
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "kind": "lstm",
            "config": vars(self.config).copy(),
            "vocabulary": self.vocabulary.to_dict(),
            "parameters": {name: value.tolist() for name, value in self.parameters.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LSTMLanguageModel":
        config = LSTMConfig(**payload["config"])
        model = cls(config)
        model.vocabulary = CharacterVocabulary.from_dict(payload["vocabulary"])
        model.parameters = {
            name: np.array(value, dtype=float) for name, value in payload["parameters"].items()
        }
        model._trained = True
        return model


class LSTMSamplerState:
    """Incremental sampling state for one synthesis run."""

    def __init__(self, model: LSTMLanguageModel):
        self._model = model
        self._state = model.zero_state(1)
        self._distribution = np.ones(model.vocabulary.size) / model.vocabulary.size

    def feed(self, text: str) -> None:
        """Advance the hidden state over *text*."""
        for character in text:
            x = np.zeros((1, self._model.vocabulary.size))
            x[0, self._model.vocabulary.index(character)] = 1.0
            probabilities, self._state, _ = self._model._step_forward(x, self._state)
            self._distribution = probabilities[0]

    def next_distribution(self) -> np.ndarray:
        return self._distribution

    def sample(self, rng: random.Random, temperature: float = 1.0) -> str:
        distribution = apply_temperature(self._distribution, temperature)
        index = rng.choices(range(len(distribution)), weights=distribution.tolist(), k=1)[0]
        character = self._model.vocabulary.character(index) or " "
        self.feed(character)
        return character


class LSTMBatchSamplerState:
    """Incremental sampling state for N synthesis chains advanced together.

    Each chain is its own :class:`LSTMSamplerState` stepped with the same
    batch-1 forward pass the sequential sampler uses.  Earlier revisions
    advanced all chains through one shared ``(N, vocab)`` forward pass;
    that shape is *not* bit-stable across batch widths — BLAS gemm rows for
    ``N >= 2`` differ from the ``N == 1`` product by ~1e-14 — which would
    break the wavefront guarantee that batched sampling reproduces the
    sequential stream bytes at every width (ARCHITECTURE.md "Sample
    wavefront").  What the batch amortizes instead is context priming: the
    shared seed context is pushed through the network once and cloned per
    lane, and :meth:`reset_lane` reuses the same clone for a refilled lane
    instead of re-feeding the seed.  Chains that finish early are dropped
    with :meth:`compact` so the batch shrinks as candidates complete.
    """

    def __init__(self, model: LSTMLanguageModel, batch_size: int, context: str = ""):
        if batch_size < 1:
            raise ModelError("batch size must be positive")
        self._model = model
        self._template = LSTMSamplerState(model)
        self._template.feed(context)
        self._lanes = [self._clone_template() for _ in range(batch_size)]

    def _clone_template(self) -> LSTMSamplerState:
        lane = LSTMSamplerState(self._model)
        lane._state = [(h.copy(), c.copy()) for h, c in self._template._state]
        lane._distribution = self._template._distribution.copy()
        return lane

    @property
    def batch_size(self) -> int:
        return len(self._lanes)

    def feed(self, text: str) -> None:
        """Advance every chain's hidden state over the shared *text*.

        The template advances too, so a later :meth:`reset_lane` rewinds to
        the full primed context (constructor context plus every shared feed).
        """
        for lane in self._lanes:
            lane.feed(text)
        self._template.feed(text)

    def next_distribution(self) -> np.ndarray:
        """The ``(N, vocab)`` distribution over each chain's next character."""
        return np.stack([lane._distribution for lane in self._lanes])

    def sample(self, rng, temperature: float = 1.0) -> list[str]:
        """Draw one character per chain and advance all chains one step.

        *rng* is either one shared :class:`random.Random` (every chain draws
        from the same stream, in lane order) or a sequence of per-chain
        generators — one per active lane, as the independently-seeded sample
        streams use — so chain *k* consumes only its own stream regardless
        of which other chains ride in the batch.
        """
        per_lane = None if isinstance(rng, random.Random) else list(rng)
        if per_lane is not None and len(per_lane) != len(self._lanes):
            raise ModelError(
                f"expected {len(self._lanes)} per-chain rngs, got {len(per_lane)}"
            )
        return [
            lane.sample(rng if per_lane is None else per_lane[position], temperature)
            for position, lane in enumerate(self._lanes)
        ]

    def compact(self, keep: list[int]) -> None:
        """Retain only the chains at positions *keep* (in order)."""
        self._lanes = [self._lanes[position] for position in keep]

    def reset_lane(self, position: int) -> None:
        """Rewind one lane to the primed context (wavefront refill)."""
        self._lanes[position] = self._clone_template()
