"""``repro.model`` — character-level language models of OpenCL.

Two interchangeable backends implement the :class:`LanguageModel` interface:
a numpy LSTM (the paper's architecture at laptop scale) and a back-off
n-gram model (the fast generator the experiment harness uses).
"""

from repro.model.backend import LanguageModel, TrainingSummary, apply_temperature
from repro.model.checkpoint import load_model, model_from_dict, model_to_dict, save_model
from repro.model.lstm import LSTMConfig, LSTMLanguageModel, LSTMSamplerState
from repro.model.ngram import NgramLanguageModel
from repro.model.optimizer import SGD, Adam, StepDecaySchedule, clip_gradients
from repro.model.trainer import ModelTrainer, TrainedModel, TrainerConfig, train_model
from repro.model.vocabulary import CharacterVocabulary

__all__ = [
    "Adam",
    "CharacterVocabulary",
    "LSTMConfig",
    "LSTMLanguageModel",
    "LSTMSamplerState",
    "LanguageModel",
    "ModelTrainer",
    "NgramLanguageModel",
    "SGD",
    "StepDecaySchedule",
    "TrainedModel",
    "TrainerConfig",
    "TrainingSummary",
    "apply_temperature",
    "clip_gradients",
    "load_model",
    "model_from_dict",
    "model_to_dict",
    "save_model",
    "train_model",
]
