"""Model checkpointing.

The paper ships a 648 MB trained Torch checkpoint with its artifact; here a
checkpoint is a (optionally gzip-compressed) JSON document so that both the
n-gram model and the numpy LSTM round-trip without any binary dependencies.

The dictionary form (:func:`model_to_dict` / :func:`model_from_dict`) is
also the ``train`` stage's artifact in the content-addressed store
(:mod:`repro.store`): a checkpoint written by ``repro train --checkpoint``
and a store-cached model are the same serialization.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path

from repro.errors import ModelError
from repro.model.backend import LanguageModel
from repro.model.lstm import LSTMLanguageModel
from repro.model.ngram import NgramLanguageModel


def model_to_dict(model: LanguageModel) -> dict:
    """The JSON-compatible checkpoint dictionary for *model*."""
    if not hasattr(model, "to_dict"):
        raise ModelError(f"model {type(model).__name__} does not support checkpointing")
    return model.to_dict()  # type: ignore[attr-defined]


def model_from_dict(payload: dict) -> LanguageModel:
    """Rebuild a model from its checkpoint dictionary."""
    kind = payload.get("kind")
    if kind == "ngram":
        return NgramLanguageModel.from_dict(payload)
    if kind == "lstm":
        return LSTMLanguageModel.from_dict(payload)
    raise ModelError(f"unknown checkpoint kind: {kind!r}")


def save_model(model: LanguageModel, path: str | Path, compress: bool | None = None) -> Path:
    """Serialize *model* to *path*.

    Compression is inferred from a ``.gz`` suffix unless *compress* is given.
    Returns the path written.
    """
    path = Path(path)
    payload = json.dumps(model_to_dict(model))
    use_gzip = compress if compress is not None else path.suffix == ".gz"
    path.parent.mkdir(parents=True, exist_ok=True)
    if use_gzip:
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(payload)
    else:
        path.write_text(payload, encoding="utf-8")
    return path


def load_model(path: str | Path) -> LanguageModel:
    """Load a model previously written by :func:`save_model`."""
    path = Path(path)
    if not path.exists():
        raise ModelError(f"checkpoint not found: {path}")
    if path.suffix == ".gz":
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            payload = json.load(handle)
    else:
        payload = json.loads(path.read_text(encoding="utf-8"))
    return model_from_dict(payload)
