"""Character vocabulary for the language models.

The paper trains a character-level LSTM over "a 1-of-K coded vocabulary".
This module provides the encoding: a deterministic mapping between
characters and integer indices, with a reserved unknown symbol so that a
trained model can still consume text containing characters it never saw.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelError

#: Index reserved for characters outside the vocabulary.
UNKNOWN_INDEX = 0
UNKNOWN_CHAR = "\x00"


@dataclass
class CharacterVocabulary:
    """A bidirectional character ↔ index mapping."""

    characters: list[str] = field(default_factory=list)
    _index_of: dict[str, int] = field(default_factory=dict, repr=False)

    @classmethod
    def from_text(cls, text: str) -> "CharacterVocabulary":
        """Build a vocabulary from every distinct character in *text*."""
        if not text:
            raise ModelError("cannot build a vocabulary from empty text")
        characters = [UNKNOWN_CHAR] + sorted(set(text))
        vocabulary = cls(characters=characters)
        vocabulary._rebuild_index()
        return vocabulary

    @classmethod
    def from_characters(cls, characters: list[str]) -> "CharacterVocabulary":
        """Rebuild a vocabulary from a saved character list."""
        vocabulary = cls(characters=list(characters))
        vocabulary._rebuild_index()
        return vocabulary

    def _rebuild_index(self) -> None:
        self._index_of = {char: index for index, char in enumerate(self.characters)}

    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.characters)

    def index(self, character: str) -> int:
        """The index of *character* (the unknown index if unseen)."""
        return self._index_of.get(character, UNKNOWN_INDEX)

    def character(self, index: int) -> str:
        """The character at *index* (empty string for the unknown symbol)."""
        if index == UNKNOWN_INDEX:
            return ""
        if 0 <= index < len(self.characters):
            return self.characters[index]
        return ""

    def encode(self, text: str) -> list[int]:
        """Encode *text* into a list of indices."""
        return [self.index(char) for char in text]

    def decode(self, indices: list[int]) -> str:
        """Decode indices back into text, dropping unknown symbols."""
        return "".join(self.character(index) for index in indices)

    def __contains__(self, character: str) -> bool:
        return character in self._index_of

    def __len__(self) -> int:
        return self.size

    def to_dict(self) -> dict:
        return {"characters": self.characters}

    @classmethod
    def from_dict(cls, payload: dict) -> "CharacterVocabulary":
        return cls.from_characters(payload["characters"])
