"""Optimizers for the numpy LSTM.

The paper trains with Stochastic Gradient Descent, an initial learning rate
of 0.002 decayed by one half every 5 epochs.  Both that setup (SGD with an
epoch-based step decay) and Adam (the practical default at laptop scale) are
provided.  Parameters and gradients are plain dictionaries of numpy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class StepDecaySchedule:
    """Learning-rate schedule: multiply by *factor* every *interval* epochs."""

    initial_rate: float = 0.002
    factor: float = 0.5
    interval: int = 5

    def rate(self, epoch: int) -> float:
        """Learning rate to use during *epoch* (0-based)."""
        if self.interval <= 0:
            return self.initial_rate
        return self.initial_rate * (self.factor ** (epoch // self.interval))


def clip_gradients(gradients: dict[str, np.ndarray], max_norm: float = 5.0) -> float:
    """Clip gradients in place to a global L2 norm; returns the pre-clip norm."""
    total = 0.0
    for gradient in gradients.values():
        total += float(np.sum(gradient * gradient))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for gradient in gradients.values():
            gradient *= scale
    return norm


class Optimizer:
    """Base class: updates a parameter dictionary from a gradient dictionary."""

    def step(self, parameters: dict[str, np.ndarray], gradients: dict[str, np.ndarray]) -> None:
        raise NotImplementedError

    def set_learning_rate(self, rate: float) -> None:
        self.learning_rate = rate  # type: ignore[attr-defined]


@dataclass
class SGD(Optimizer):
    """Stochastic gradient descent with momentum (the paper's optimizer)."""

    learning_rate: float = 0.002
    momentum: float = 0.9
    _velocity: dict[str, np.ndarray] = field(default_factory=dict, repr=False)

    def step(self, parameters: dict[str, np.ndarray], gradients: dict[str, np.ndarray]) -> None:
        for name, parameter in parameters.items():
            gradient = gradients[name]
            velocity = self._velocity.get(name)
            if velocity is None:
                velocity = np.zeros_like(parameter)
                self._velocity[name] = velocity
            velocity *= self.momentum
            velocity -= self.learning_rate * gradient
            parameter += velocity


@dataclass
class Adam(Optimizer):
    """Adam optimizer (practical default for quick CPU training)."""

    learning_rate: float = 0.002
    beta1: float = 0.9
    beta2: float = 0.999
    epsilon: float = 1e-8
    _m: dict[str, np.ndarray] = field(default_factory=dict, repr=False)
    _v: dict[str, np.ndarray] = field(default_factory=dict, repr=False)
    _t: int = 0

    def step(self, parameters: dict[str, np.ndarray], gradients: dict[str, np.ndarray]) -> None:
        self._t += 1
        for name, parameter in parameters.items():
            gradient = gradients[name]
            m = self._m.setdefault(name, np.zeros_like(parameter))
            v = self._v.setdefault(name, np.zeros_like(parameter))
            m *= self.beta1
            m += (1 - self.beta1) * gradient
            v *= self.beta2
            v += (1 - self.beta2) * gradient * gradient
            m_hat = m / (1 - self.beta1**self._t)
            v_hat = v / (1 - self.beta2**self._t)
            parameter -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
