"""A back-off n-gram character model.

This is the fast companion backend to the numpy LSTM.  Trained on the
rewritten corpus it captures the highly regular local structure of
normalized OpenCL (keywords, qualifiers, the ``a``/``b``/``c`` identifier
series) and, with a large order, effectively recombines corpus fragments —
which is what makes it a practical generator for the experiment harness on
a CPU-only machine, while exposing exactly the same sampling interface as
the LSTM.
"""

from __future__ import annotations

import random
from collections import Counter, defaultdict

import numpy as np

from repro.errors import ModelError
from repro.model.backend import LanguageModel, TrainingSummary, apply_temperature
from repro.model.vocabulary import CharacterVocabulary


class NgramLanguageModel(LanguageModel):
    """Character n-gram model with stupid-backoff smoothing."""

    #: Bound on the per-model memo tables (contexts seen during sampling).
    _CACHE_LIMIT = 65_536

    def __init__(self, order: int = 10, backoff_factor: float = 0.4):
        if order < 2:
            raise ModelError("n-gram order must be at least 2")
        self.order = order
        self.backoff_factor = backoff_factor
        self.vocabulary = CharacterVocabulary.from_characters(["\x00"])
        #: counts[k] maps a context string of length k to a Counter of next chars.
        self._counts: list[dict[str, Counter]] = []
        self._trained = False
        #: context tail -> distribution; (tail, temperature) -> cumulative
        #: weights.  The model is immutable once trained and code contexts
        #: repeat constantly, so memoizing the back-off walk turns sampling
        #: from O(order * vocab) per character into a dict hit + bisect.
        self._distribution_cache: dict[str, np.ndarray] = {}
        self._cumulative_cache: dict[tuple[str, float], np.ndarray] = {}

    # ------------------------------------------------------------------
    # Training.
    # ------------------------------------------------------------------

    def fit(self, text: str) -> TrainingSummary:
        if not text:
            raise ModelError("cannot train on empty text")
        self.vocabulary = CharacterVocabulary.from_text(text)
        self._counts = [defaultdict(Counter) for _ in range(self.order)]
        self._distribution_cache = {}
        self._cumulative_cache = {}
        for position, character in enumerate(text):
            for context_length in range(self.order):
                if position < context_length:
                    continue
                context = text[position - context_length : position]
                self._counts[context_length][context][character] += 1
        self._trained = True
        # Report the model "size" as the number of stored contexts.
        parameters = sum(len(level) for level in self._counts)
        loss = self._training_loss(text)
        return TrainingSummary(losses=[loss], epochs=1, parameters=parameters)

    def _training_loss(self, text: str, sample_limit: int = 2000) -> float:
        """Mean negative log-likelihood per character over a text prefix."""
        stride = max(1, len(text) // sample_limit)
        total, count = 0.0, 0
        for position in range(1, len(text), stride):
            distribution = self.next_distribution(text[:position])
            index = self.vocabulary.index(text[position])
            total -= float(np.log(max(distribution[index], 1e-12)))
            count += 1
        return total / max(count, 1)

    # ------------------------------------------------------------------
    # Prediction.
    # ------------------------------------------------------------------

    def next_distribution(self, context: str) -> np.ndarray:
        if not self._trained:
            raise ModelError("model has not been trained")
        size = self.vocabulary.size
        distribution = np.zeros(size, dtype=float)
        weight = 1.0
        matched = False
        for context_length in range(min(self.order - 1, len(context)), -1, -1):
            suffix = context[len(context) - context_length :] if context_length else ""
            counter = self._counts[context_length].get(suffix)
            if not counter:
                continue
            total = sum(counter.values())
            for character, count in counter.items():
                distribution[self.vocabulary.index(character)] += weight * count / total
            matched = True
            weight *= self.backoff_factor
            if weight < 1e-4:
                break
        if not matched:
            distribution[:] = 1.0
        distribution = np.maximum(distribution, 0.0)
        distribution[0] = 0.0  # never emit the unknown symbol
        total = distribution.sum()
        if total <= 0:
            distribution[1:] = 1.0
            total = distribution.sum()
        return distribution / total

    # ------------------------------------------------------------------
    # Fast stateful sampling.
    # ------------------------------------------------------------------

    def _tail_of(self, context: str) -> str:
        """The context suffix that actually determines the distribution."""
        max_context = self.order - 1
        return context[len(context) - max_context :] if len(context) > max_context else context

    def _cached_distribution(self, tail: str) -> np.ndarray:
        distribution = self._distribution_cache.get(tail)
        if distribution is None:
            distribution = self.next_distribution(tail)
            if len(self._distribution_cache) >= self._CACHE_LIMIT:
                self._distribution_cache.clear()
            self._distribution_cache[tail] = distribution
        return distribution

    def _cached_cumulative(self, tail: str, temperature: float) -> np.ndarray:
        key = (tail, temperature)
        cumulative = self._cumulative_cache.get(key)
        if cumulative is None:
            distribution = apply_temperature(self._cached_distribution(tail), temperature)
            cumulative = np.cumsum(distribution)
            if len(self._cumulative_cache) >= self._CACHE_LIMIT:
                self._cumulative_cache.clear()
            self._cumulative_cache[key] = cumulative
        return cumulative

    def make_sampler(self, context: str = "") -> "NgramSamplerState":
        """A stateful sampler primed with *context*.

        Avoids re-deriving the back-off distribution for contexts already
        visited this process — in normalized OpenCL the same few thousand
        contexts recur across all candidates, so sampling becomes a memo
        lookup plus one binary search per character.
        """
        if not self._trained:
            raise ModelError("model has not been trained")
        return NgramSamplerState(self, context)

    def make_batch_sampler(self, context: str = "", batch_size: int = 1) -> "NgramBatchSamplerState":
        """A sampler advancing *batch_size* independent chains together.

        Unlike the LSTM there is no matrix product to amortize — each lane
        is an ordinary :class:`NgramSamplerState` — but exposing the same
        batch interface lets :meth:`KernelSampler.sample_many` drive both
        backends identically, including with one independently-seeded RNG
        per chain (the parallel sample streams).
        """
        if not self._trained:
            raise ModelError("model has not been trained")
        return NgramBatchSamplerState(self, context, batch_size)

    # ------------------------------------------------------------------
    # Serialization.
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Serialize the model to a JSON-compatible dictionary."""
        levels = []
        for level in self._counts:
            levels.append({context: dict(counter) for context, counter in level.items()})
        return {
            "kind": "ngram",
            "order": self.order,
            "backoff_factor": self.backoff_factor,
            "vocabulary": self.vocabulary.to_dict(),
            "counts": levels,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "NgramLanguageModel":
        model = cls(order=payload["order"], backoff_factor=payload["backoff_factor"])
        model.vocabulary = CharacterVocabulary.from_dict(payload["vocabulary"])
        model._counts = []
        for level in payload["counts"]:
            restored: dict[str, Counter] = defaultdict(Counter)
            for context, counter in level.items():
                restored[context] = Counter(counter)
            model._counts.append(restored)
        model._trained = True
        return model


class NgramSamplerState:
    """Incremental sampling state over a trained n-gram model."""

    def __init__(self, model: NgramLanguageModel, context: str = ""):
        self._model = model
        self._tail = model._tail_of(context)

    def feed(self, text: str) -> None:
        self._tail = self._model._tail_of(self._tail + text)

    def next_distribution(self) -> np.ndarray:
        return self._model._cached_distribution(self._tail)

    def sample(self, rng: random.Random, temperature: float = 1.0) -> str:
        model = self._model
        cumulative = model._cached_cumulative(self._tail, temperature)
        draw = rng.random() * cumulative[-1]
        index = int(np.searchsorted(cumulative, draw, side="right"))
        index = min(index, model.vocabulary.size - 1)
        character = model.vocabulary.character(index)
        if not character:
            # Unknown symbol sampled: fall back to the most likely real
            # character (mirrors LanguageModel.sample_next).
            distribution = model._cached_distribution(self._tail)
            for candidate in np.argsort(distribution)[::-1]:
                character = model.vocabulary.character(int(candidate))
                if character:
                    break
            else:
                character = " "
        self.feed(character)
        return character


class NgramBatchSamplerState:
    """N independent :class:`NgramSamplerState` lanes behind the batch
    sampler interface (``sample`` / ``compact``) the LSTM exposes."""

    def __init__(self, model: NgramLanguageModel, context: str, batch_size: int):
        if batch_size < 1:
            raise ModelError("batch size must be positive")
        self._lanes = [NgramSamplerState(model, context) for _ in range(batch_size)]

    @property
    def batch_size(self) -> int:
        return len(self._lanes)

    def feed(self, text: str) -> None:
        for lane in self._lanes:
            lane.feed(text)

    def sample(self, rng, temperature: float = 1.0) -> list[str]:
        """One character per lane: *rng* is a shared :class:`random.Random`
        (lanes draw from it in order) or one generator per lane."""
        if isinstance(rng, random.Random):
            return [lane.sample(rng, temperature) for lane in self._lanes]
        per_lane = list(rng)
        if len(per_lane) != len(self._lanes):
            raise ModelError(
                f"expected {len(self._lanes)} per-chain rngs, got {len(per_lane)}"
            )
        return [
            lane.sample(source, temperature)
            for lane, source in zip(self._lanes, per_lane)
        ]

    def compact(self, keep: list[int]) -> None:
        """Retain only the lanes at positions *keep* (in order)."""
        self._lanes = [self._lanes[position] for position in keep]
