"""A back-off n-gram character model.

This is the fast companion backend to the numpy LSTM.  Trained on the
rewritten corpus it captures the highly regular local structure of
normalized OpenCL (keywords, qualifiers, the ``a``/``b``/``c`` identifier
series) and, with a large order, effectively recombines corpus fragments —
which is what makes it a practical generator for the experiment harness on
a CPU-only machine, while exposing exactly the same sampling interface as
the LSTM.
"""

from __future__ import annotations

import random
from collections import Counter, defaultdict

import numpy as np

from repro.errors import ModelError
from repro.model.backend import LanguageModel, TrainingSummary, apply_temperature
from repro.model.vocabulary import CharacterVocabulary


class NgramLanguageModel(LanguageModel):
    """Character n-gram model with stupid-backoff smoothing."""

    #: Bound on the per-model memo tables (contexts seen during sampling).
    _CACHE_LIMIT = 65_536

    def __init__(self, order: int = 10, backoff_factor: float = 0.4):
        if order < 2:
            raise ModelError("n-gram order must be at least 2")
        self.order = order
        self.backoff_factor = backoff_factor
        self.vocabulary = CharacterVocabulary.from_characters(["\x00"])
        #: counts[k] maps a context string of length k to a Counter of next chars.
        self._counts: list[dict[str, Counter]] = []
        self._trained = False
        #: context tail -> distribution; (tail, temperature) -> cumulative
        #: weights.  The model is immutable once trained and code contexts
        #: repeat constantly, so memoizing the back-off walk turns sampling
        #: from O(order * vocab) per character into a dict hit + bisect.
        self._distribution_cache: dict[str, np.ndarray] = {}
        self._cumulative_cache: dict[tuple[str, float], np.ndarray] = {}
        #: context tail -> the character the unknown-symbol fallback resolves
        #: to.  Without this every degenerate draw re-argsorts the whole
        #: distribution (O(vocab log vocab) per character).
        self._fallback_cache: dict[str, str] = {}

    # ------------------------------------------------------------------
    # Training.
    # ------------------------------------------------------------------

    def fit(self, text: str) -> TrainingSummary:
        if not text:
            raise ModelError("cannot train on empty text")
        self.vocabulary = CharacterVocabulary.from_text(text)
        self._counts = [defaultdict(Counter) for _ in range(self.order)]
        self._distribution_cache = {}
        self._cumulative_cache = {}
        self._fallback_cache = {}
        for position, character in enumerate(text):
            for context_length in range(self.order):
                if position < context_length:
                    continue
                context = text[position - context_length : position]
                self._counts[context_length][context][character] += 1
        self._trained = True
        # Report the model "size" as the number of stored contexts.
        parameters = sum(len(level) for level in self._counts)
        loss = self._training_loss(text)
        return TrainingSummary(losses=[loss], epochs=1, parameters=parameters)

    def _training_loss(self, text: str, sample_limit: int = 2000) -> float:
        """Mean negative log-likelihood per character over a text prefix."""
        stride = max(1, len(text) // sample_limit)
        total, count = 0.0, 0
        for position in range(1, len(text), stride):
            distribution = self.next_distribution(text[:position])
            index = self.vocabulary.index(text[position])
            total -= float(np.log(max(distribution[index], 1e-12)))
            count += 1
        return total / max(count, 1)

    # ------------------------------------------------------------------
    # Prediction.
    # ------------------------------------------------------------------

    def next_distribution(self, context: str) -> np.ndarray:
        if not self._trained:
            raise ModelError("model has not been trained")
        size = self.vocabulary.size
        distribution = np.zeros(size, dtype=float)
        weight = 1.0
        matched = False
        for context_length in range(min(self.order - 1, len(context)), -1, -1):
            suffix = context[len(context) - context_length :] if context_length else ""
            counter = self._counts[context_length].get(suffix)
            if not counter:
                continue
            total = sum(counter.values())
            for character, count in counter.items():
                distribution[self.vocabulary.index(character)] += weight * count / total
            matched = True
            weight *= self.backoff_factor
            if weight < 1e-4:
                break
        if not matched:
            distribution[:] = 1.0
        distribution = np.maximum(distribution, 0.0)
        distribution[0] = 0.0  # never emit the unknown symbol
        total = distribution.sum()
        if total <= 0:
            distribution[1:] = 1.0
            total = distribution.sum()
        return distribution / total

    # ------------------------------------------------------------------
    # Fast stateful sampling.
    # ------------------------------------------------------------------

    def _tail_of(self, context: str) -> str:
        """The context suffix that actually determines the distribution."""
        max_context = self.order - 1
        return context[len(context) - max_context :] if len(context) > max_context else context

    def _cached_distribution(self, tail: str) -> np.ndarray:
        distribution = self._distribution_cache.get(tail)
        if distribution is None:
            distribution = self.next_distribution(tail)
            if len(self._distribution_cache) >= self._CACHE_LIMIT:
                self._distribution_cache.clear()
            self._distribution_cache[tail] = distribution
        return distribution

    def _cached_cumulative(self, tail: str, temperature: float) -> np.ndarray:
        key = (tail, temperature)
        cumulative = self._cumulative_cache.get(key)
        if cumulative is None:
            distribution = apply_temperature(self._cached_distribution(tail), temperature)
            cumulative = np.cumsum(distribution)
            if len(self._cumulative_cache) >= self._CACHE_LIMIT:
                self._cumulative_cache.clear()
            self._cumulative_cache[key] = cumulative
        return cumulative

    def _cached_fallback(self, tail: str) -> str:
        """The character an unknown-symbol draw at *tail* resolves to.

        Mirrors the inline loop :meth:`NgramSamplerState.sample` used to run
        on every degenerate draw — the most likely real character of the
        tail's distribution, or a space when the vocabulary has none — but
        computes it once per tail instead of re-argsorting per character.
        """
        character = self._fallback_cache.get(tail)
        if character is None:
            distribution = self._cached_distribution(tail)
            character = " "
            for candidate in np.argsort(distribution)[::-1]:
                real = self.vocabulary.character(int(candidate))
                if real:
                    character = real
                    break
            if len(self._fallback_cache) >= self._CACHE_LIMIT:
                self._fallback_cache.clear()
            self._fallback_cache[tail] = character
        return character

    def make_sampler(self, context: str = "") -> "NgramSamplerState":
        """A stateful sampler primed with *context*.

        Avoids re-deriving the back-off distribution for contexts already
        visited this process — in normalized OpenCL the same few thousand
        contexts recur across all candidates, so sampling becomes a memo
        lookup plus one binary search per character.
        """
        if not self._trained:
            raise ModelError("model has not been trained")
        return NgramSamplerState(self, context)

    def make_batch_sampler(self, context: str = "", batch_size: int = 1) -> "NgramBatchSamplerState":
        """A sampler advancing *batch_size* independent chains together.

        The lanes share one vectorized draw per step (cumulative rows
        gathered into an ``(N, vocab)`` matrix, one comparison-count for
        every lane's index) while staying bit-identical to running each
        chain through :class:`NgramSamplerState` alone, so
        :meth:`KernelSampler.sample_many` and the wavefront driver can use
        it with one independently-seeded RNG per chain (the parallel sample
        streams) without changing any sampled byte.
        """
        if not self._trained:
            raise ModelError("model has not been trained")
        return NgramBatchSamplerState(self, context, batch_size)

    # ------------------------------------------------------------------
    # Serialization.
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Serialize the model to a JSON-compatible dictionary."""
        levels = []
        for level in self._counts:
            levels.append({context: dict(counter) for context, counter in level.items()})
        return {
            "kind": "ngram",
            "order": self.order,
            "backoff_factor": self.backoff_factor,
            "vocabulary": self.vocabulary.to_dict(),
            "counts": levels,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "NgramLanguageModel":
        model = cls(order=payload["order"], backoff_factor=payload["backoff_factor"])
        model.vocabulary = CharacterVocabulary.from_dict(payload["vocabulary"])
        model._counts = []
        for level in payload["counts"]:
            restored: dict[str, Counter] = defaultdict(Counter)
            for context, counter in level.items():
                restored[context] = Counter(counter)
            model._counts.append(restored)
        model._trained = True
        return model


class NgramSamplerState:
    """Incremental sampling state over a trained n-gram model."""

    def __init__(self, model: NgramLanguageModel, context: str = ""):
        self._model = model
        self._tail = model._tail_of(context)

    def feed(self, text: str) -> None:
        self._tail = self._model._tail_of(self._tail + text)

    def next_distribution(self) -> np.ndarray:
        return self._model._cached_distribution(self._tail)

    def sample(self, rng: random.Random, temperature: float = 1.0) -> str:
        model = self._model
        cumulative = model._cached_cumulative(self._tail, temperature)
        draw = rng.random() * cumulative[-1]
        index = int(np.searchsorted(cumulative, draw, side="right"))
        index = min(index, model.vocabulary.size - 1)
        character = model.vocabulary.character(index)
        if not character:
            # Unknown symbol sampled: fall back to the most likely real
            # character (mirrors LanguageModel.sample_next), memoized per
            # tail so the degenerate path stops re-argsorting per draw.
            character = model._cached_fallback(self._tail)
        self.feed(character)
        return character


class NgramBatchSamplerState:
    """NumPy-lane batch sampler: N chains advanced through vectorized draws.

    Each lane is just a context-tail string; per step the lanes' cached
    cumulative distributions are gathered as rows of one ``(N, vocab)``
    matrix (lanes sharing a tail share a row — the tail-grouping happens in
    the ``(tail, temperature) -> row`` table) and every lane's draw resolves
    through one vectorized comparison-count, replacing the old Python loop
    over :class:`NgramSamplerState` lanes with per-lane ``searchsorted``
    calls.  Bit-identity with the scalar path is by construction: the draw
    is the same ``rng.random() * cumulative[-1]`` product of the same
    doubles, and counting ``cumulative <= draw`` per row *is*
    ``np.searchsorted(cumulative, draw, side="right")`` on a nondecreasing
    row, clamped identically.
    """

    #: Bound on the per-state row table (distinct tails seen while
    #: sampling), mirroring the model-level memo bound.
    _ROW_LIMIT = 65_536

    def __init__(self, model: NgramLanguageModel, context: str, batch_size: int):
        if batch_size < 1:
            raise ModelError("batch size must be positive")
        self._model = model
        self._initial_tail = model._tail_of(context)
        #: `_tail_of` inlined for the hot loop: slicing with [-max_context:]
        #: equals `_tail_of` for every length once max_context >= 1.
        self._max_context = max(model.order - 1, 1)
        self._characters = [
            model.vocabulary.character(index) for index in range(model.vocabulary.size)
        ]
        #: Tail-grouping state, rebuilt whenever the sampling temperature
        #: changes: each distinct tail owns one row of the growing
        #: cumulative matrix, lanes carry row *ids* (lanes sharing a tail
        #: share a row), and ``_transitions`` short-circuits the
        #: tail-string update — ``row * vocab + sampled_index -> next row``
        #: — so steady-state steps never touch a string key at all.
        self._row_temperature: float | None = None
        self._row_ids: dict[str, int] = {}
        self._row_tails: list[str] = []
        self._rows = np.empty((0, model.vocabulary.size), dtype=float)
        #: ``_transitions[row, sampled_index] -> next row`` (-1 = not yet
        #: registered), gathered for all lanes in one fancy-indexing read.
        self._transitions = np.empty((0, model.vocabulary.size), dtype=np.int32)
        self._lane_rows: list[int] = []
        self._lane_tails = [self._initial_tail] * batch_size

    @property
    def batch_size(self) -> int:
        return len(self._lane_tails)

    def feed(self, text: str) -> None:
        if not text:
            return
        max_context = self._max_context
        self._lane_tails = [
            (tail + text)[-max_context:] for tail in self._current_tails()
        ]
        self._lane_rows = []

    def _current_tails(self) -> list[str]:
        if self._lane_rows:
            return [self._row_tails[row] for row in self._lane_rows]
        return self._lane_tails

    def _row_for(self, tail: str) -> int:
        row = self._row_ids.get(tail)
        if row is None:
            cumulative = self._model._cached_cumulative(tail, self._row_temperature)
            if len(self._row_tails) == len(self._rows):
                capacity = max(64, 2 * len(self._rows))
                grown = np.empty((capacity, cumulative.size), dtype=float)
                grown[: len(self._row_tails)] = self._rows[: len(self._row_tails)]
                self._rows = grown
                grown_transitions = np.full(
                    (capacity, cumulative.size), -1, dtype=np.int32
                )
                grown_transitions[: len(self._row_tails)] = self._transitions[
                    : len(self._row_tails)
                ]
                self._transitions = grown_transitions
            row = len(self._row_tails)
            self._rows[row] = cumulative
            self._row_ids[tail] = row
            self._row_tails.append(tail)
        return row

    def _reset_rows(self, temperature: float) -> None:
        """Flush the row/transition tables (temperature switch or growth cap)."""
        self._lane_tails = self._current_tails()
        self._lane_rows = []
        self._row_ids.clear()
        self._row_tails = []
        self._transitions.fill(-1)
        self._row_temperature = temperature

    def sample(self, rng, temperature: float = 1.0) -> list[str]:
        """One character per lane: *rng* is a shared :class:`random.Random`
        (lanes draw from it in position order, exactly as the old per-lane
        loop consumed it) or one generator per lane."""
        lanes = len(self._lane_tails)
        if isinstance(rng, random.Random):
            draws = [rng.random() for _ in range(lanes)]
        else:
            per_lane = list(rng)
            if len(per_lane) != lanes:
                raise ModelError(
                    f"expected {lanes} per-chain rngs, got {len(per_lane)}"
                )
            draws = [source.random() for source in per_lane]
        if temperature != self._row_temperature or len(self._row_tails) >= self._ROW_LIMIT:
            self._reset_rows(temperature)
        lane_rows = self._lane_rows
        if not lane_rows:
            # Resolve row ids before indexing: _row_for may replace
            # self._rows with a grown copy, and `a[b]` evaluates `a` first.
            lane_rows = [self._row_for(tail) for tail in self._lane_tails]
            self._lane_rows = lane_rows
        rows = self._rows[lane_rows]
        scaled = np.asarray(draws) * rows[:, -1]
        indices = np.minimum(
            (rows <= scaled[:, None]).sum(axis=1), len(self._characters) - 1
        ).tolist()
        vocabulary_characters = self._characters
        characters = [vocabulary_characters[index] for index in indices]
        next_rows = self._transitions[lane_rows, indices].tolist()
        # A -1 marks an unregistered transition: the row/index pair's first
        # visit, or an unknown-symbol draw — whose slot deliberately stays
        # -1, since resolving it requires the fallback substitution below.
        if -1 in next_rows:
            max_context = self._max_context
            row_tails = self._row_tails
            for lane, next_row in enumerate(next_rows):
                if next_row >= 0:
                    continue
                row = lane_rows[lane]
                character = characters[lane]
                if character:
                    next_row = self._row_for((row_tails[row] + character)[-max_context:])
                    self._transitions[row, indices[lane]] = next_row
                else:
                    # Unknown symbol: same memoized fallback the scalar
                    # path uses, then transition on the resolved character.
                    character = self._model._cached_fallback(row_tails[row])
                    characters[lane] = character
                    next_row = self._row_for((row_tails[row] + character)[-max_context:])
                next_rows[lane] = next_row
        self._lane_rows = next_rows
        return characters

    def compact(self, keep: list[int]) -> None:
        """Retain only the lanes at positions *keep* (in order)."""
        if self._lane_rows:
            self._lane_rows = [self._lane_rows[position] for position in keep]
            self._lane_tails = [self._row_tails[row] for row in self._lane_rows]
        else:
            self._lane_tails = [self._lane_tails[position] for position in keep]

    def reset_lane(self, position: int) -> None:
        """Rewind one lane to the constructor context (wavefront refill)."""
        if self._lane_rows:
            self._lane_rows[position] = self._row_for(self._initial_tail)
            self._lane_tails[position] = self._initial_tail
        else:
            self._lane_tails[position] = self._initial_tail
