"""Common interface shared by the language-model backends.

The synthesizer (Algorithm 1) only needs two operations from a model:
*train on a corpus text* and *predict a distribution over the next
character given the text so far*.  Both the numpy LSTM and the back-off
n-gram model implement this interface, so the rest of the pipeline is
backend-agnostic — exactly the property that lets the experiment harness
use the cheap backend while the LSTM remains available for fidelity.
"""

from __future__ import annotations

import abc
import math
import random

import numpy as np

from repro.model.vocabulary import CharacterVocabulary


class LanguageModel(abc.ABC):
    """A character-level generative model of OpenCL source code."""

    vocabulary: CharacterVocabulary

    @abc.abstractmethod
    def fit(self, text: str) -> "TrainingSummary":
        """Train the model on the corpus *text*."""

    @abc.abstractmethod
    def next_distribution(self, context: str) -> np.ndarray:
        """Probability distribution over the next character given *context*.

        Returns an array of shape ``(vocabulary.size,)`` summing to 1.
        """

    # ------------------------------------------------------------------
    # Shared behaviour.
    # ------------------------------------------------------------------

    def sample_next(
        self, context: str, rng: random.Random, temperature: float = 1.0
    ) -> str:
        """Sample the next character given *context*."""
        distribution = self.next_distribution(context)
        distribution = apply_temperature(distribution, temperature)
        index = rng.choices(range(len(distribution)), weights=distribution.tolist(), k=1)[0]
        character = self.vocabulary.character(index)
        if character:
            return character
        # Unknown symbol sampled: fall back to the most likely real character.
        order = np.argsort(distribution)[::-1]
        for candidate in order:
            character = self.vocabulary.character(int(candidate))
            if character:
                return character
        return " "

    def log_likelihood(self, text: str) -> float:
        """Total log-likelihood of *text* under the model (natural log)."""
        total = 0.0
        for position in range(1, len(text)):
            distribution = self.next_distribution(text[:position])
            index = self.vocabulary.index(text[position])
            total += math.log(max(float(distribution[index]), 1e-12))
        return total

    def perplexity(self, text: str) -> float:
        """Per-character perplexity of *text* under the model."""
        if len(text) < 2:
            return float("inf")
        return math.exp(-self.log_likelihood(text) / (len(text) - 1))


class TrainingSummary:
    """Loss trajectory and bookkeeping from one training run."""

    def __init__(self, losses: list[float], epochs: int, parameters: int):
        self.losses = losses
        self.epochs = epochs
        self.parameters = parameters

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("inf")

    @property
    def initial_loss(self) -> float:
        return self.losses[0] if self.losses else float("inf")

    @property
    def improved(self) -> bool:
        return self.final_loss < self.initial_loss

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TrainingSummary(epochs={self.epochs}, parameters={self.parameters}, "
            f"loss={self.initial_loss:.3f}->{self.final_loss:.3f})"
        )


def apply_temperature(distribution: np.ndarray, temperature: float) -> np.ndarray:
    """Sharpen (<1) or flatten (>1) a probability distribution."""
    if temperature == 1.0:
        return distribution
    temperature = max(temperature, 1e-3)
    logits = np.log(np.maximum(distribution, 1e-12)) / temperature
    logits -= logits.max()
    out = np.exp(logits)
    return out / out.sum()
