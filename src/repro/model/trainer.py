"""High-level training orchestration: corpus → trained language model.

Wraps backend selection, corpus-to-text conversion, training and optional
checkpointing behind one call, mirroring the ``clgen train`` command of the
original tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.corpus.corpus import Corpus
from repro.errors import ModelError
from repro.model.backend import LanguageModel, TrainingSummary
from repro.model.checkpoint import save_model
from repro.model.lstm import LSTMConfig, LSTMLanguageModel
from repro.model.ngram import NgramLanguageModel


@dataclass
class TrainerConfig:
    """Configuration for one training run."""

    backend: str = "ngram"  # "ngram" | "lstm"
    ngram_order: int = 10
    lstm: LSTMConfig | None = None
    shuffle_seed: int = 0
    checkpoint_path: str | None = None


@dataclass
class TrainedModel:
    """A trained model plus its training summary."""

    model: LanguageModel
    summary: TrainingSummary
    corpus_characters: int
    checkpoint_path: Path | None = None


class ModelTrainer:
    """Trains a language model over a :class:`Corpus`."""

    def __init__(self, config: TrainerConfig | None = None):
        self.config = config or TrainerConfig()

    def build_model(self) -> LanguageModel:
        """Instantiate the configured (untrained) backend."""
        if self.config.backend == "ngram":
            return NgramLanguageModel(order=self.config.ngram_order)
        if self.config.backend == "lstm":
            return LSTMLanguageModel(self.config.lstm or LSTMConfig())
        raise ModelError(f"unknown language model backend {self.config.backend!r}")

    def train(self, corpus: Corpus) -> TrainedModel:
        """Train on *corpus* and (optionally) write a checkpoint."""
        if corpus.size == 0:
            raise ModelError("cannot train on an empty corpus")
        text = corpus.training_text(shuffle_seed=self.config.shuffle_seed)
        model = self.build_model()
        summary = model.fit(text)
        checkpoint_path = None
        if self.config.checkpoint_path:
            checkpoint_path = save_model(model, self.config.checkpoint_path)
        return TrainedModel(
            model=model,
            summary=summary,
            corpus_characters=len(text),
            checkpoint_path=checkpoint_path,
        )


def train_model(
    corpus: Corpus,
    backend: str = "ngram",
    ngram_order: int = 10,
    lstm_config: LSTMConfig | None = None,
    checkpoint_path: str | None = None,
) -> TrainedModel:
    """Convenience wrapper around :class:`ModelTrainer`."""
    config = TrainerConfig(
        backend=backend,
        ngram_order=ngram_order,
        lstm=lstm_config,
        checkpoint_path=checkpoint_path,
    )
    return ModelTrainer(config).train(corpus)
