"""Shared runtime value semantics for the two kernel execution engines.

The tree-walking :mod:`repro.execution.interpreter` and the closure-based
:mod:`repro.execution.compiler` must agree bit-for-bit on every scalar,
vector and pointer operation — the differential test suite asserts identical
buffer contents and :class:`ExecutionStats` across both engines.  Keeping
the operator semantics in one module makes that agreement structural rather
than coincidental.
"""

from __future__ import annotations

import math

from repro.clc.types import PointerType, VectorType
from repro.errors import KernelRuntimeError
from repro.execution.memory import Buffer
from repro.execution.values import VectorValue


#: Sentinel yielded by work-item coroutines at work-group barriers.
BARRIER = object()


class ReturnSignal(Exception):
    """Raised to unwind a ``return`` statement."""

    def __init__(self, value=None):
        self.value = value


class BreakSignal(Exception):
    """Raised to unwind a ``break`` statement."""


class ContinueSignal(Exception):
    """Raised to unwind a ``continue`` statement."""


#: Identifiers resolved as built-in constants when not bound in the
#: environment (OpenCL limits/math constants plus C spellings).
CONSTANTS = {
    "CLK_LOCAL_MEM_FENCE": 1,
    "CLK_GLOBAL_MEM_FENCE": 2,
    "M_PI": 3.141592653589793,
    "M_PI_F": 3.1415927,
    "M_E": 2.718281828459045,
    "M_E_F": 2.7182817,
    "MAXFLOAT": 3.402823e38,
    "FLT_MAX": 3.402823e38,
    "FLT_MIN": 1.175494e-38,
    "FLT_EPSILON": 1.192093e-07,
    "DBL_MAX": 1.7976931348623157e308,
    "DBL_MIN": 2.2250738585072014e-308,
    "INFINITY": float("inf"),
    "HUGE_VALF": float("inf"),
    "NAN": float("nan"),
    "INT_MAX": 2**31 - 1,
    "INT_MIN": -(2**31),
    "UINT_MAX": 2**32 - 1,
    "LONG_MAX": 2**63 - 1,
    "LONG_MIN": -(2**63),
    "ULONG_MAX": 2**64 - 1,
    "CHAR_MAX": 127,
    "CHAR_MIN": -128,
    "true": 1,
    "false": 0,
    "NULL": 0,
}

_FLOAT_KINDS = ("float", "double", "half")
_SCALAR_KINDS = ("float", "double", "int", "uint", "long", "ulong", "char",
                 "uchar", "short", "ushort", "half", "size_t", "bool")
_INT_KINDS = ("int", "uint", "long", "ulong", "short", "ushort", "char",
              "uchar", "size_t", "bool")

_TYPE_SIZES = {"char": 1, "uchar": 1, "short": 2, "ushort": 2, "half": 2, "int": 4,
               "uint": 4, "float": 4, "long": 8, "ulong": 8, "double": 8, "size_t": 8}


def truthy(value) -> bool:
    """C truthiness over runtime values (vectors: any non-zero lane)."""
    if isinstance(value, VectorValue):
        return any(v != 0 for v in value.values)
    if isinstance(value, Buffer):
        return True
    return bool(value)


def as_index(value) -> int:
    """Collapse a runtime value to a buffer index."""
    if isinstance(value, VectorValue):
        return int(value.values[0]) if value.values else 0
    if isinstance(value, float):
        return int(value)
    if isinstance(value, Buffer):
        return 0
    return int(value)


def apply_binary(op: str, left, right):
    """Evaluate binary operator *op* over already-evaluated operands."""
    if isinstance(left, Buffer) or isinstance(right, Buffer):
        # Pointer arithmetic: keep the buffer, ignore the offset (accesses
        # are clamped anyway).  Comparisons on pointers return 0/1.
        if op in ("==", "!="):
            return 1 if (left is right) == (op == "==") else 0
        return left if isinstance(left, Buffer) else right

    if isinstance(left, VectorValue) or isinstance(right, VectorValue):
        return apply_vector_binary(op, left, right)

    if op in ("==", "!=", "<", ">", "<=", ">="):
        result = {
            "==": left == right,
            "!=": left != right,
            "<": left < right,
            ">": left > right,
            "<=": left <= right,
            ">=": left >= right,
        }[op]
        return 1 if result else 0

    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            if isinstance(left, float) or isinstance(right, float):
                return float("inf") if left > 0 else float("-inf") if left < 0 else float("nan")
            return 0
        if isinstance(left, int) and isinstance(right, int):
            return int(left / right)
        return left / right
    if op == "%":
        if right == 0:
            return 0
        if isinstance(left, int) and isinstance(right, int):
            return left - int(left / right) * right
        return math.fmod(left, right)
    if op == "&":
        return int(left) & int(right)
    if op == "|":
        return int(left) | int(right)
    if op == "^":
        return int(left) ^ int(right)
    if op == "<<":
        return int(left) << (int(right) % 64)
    if op == ">>":
        return int(left) >> (int(right) % 64)
    raise KernelRuntimeError(f"unsupported binary operator {op!r}")


def apply_vector_binary(op: str, left, right):
    """Element-wise binary operator with scalar broadcasting."""
    vector = left if isinstance(left, VectorValue) else right
    width = vector.width
    kind = vector.element_kind
    left_values = left.values if isinstance(left, VectorValue) else [left] * width
    right_values = right.values if isinstance(right, VectorValue) else [right] * width
    results = [apply_binary(op, a, b) for a, b in zip(left_values, right_values)]
    if op in ("==", "!=", "<", ">", "<=", ">="):
        return VectorValue("int", [int(bool(r)) for r in results])
    return VectorValue(kind, results)


def element_kind_of(declarator) -> tuple[str, int]:
    """Element kind and vector width implied by a declarator's type."""
    declared = declarator.declared_type
    if isinstance(declared, PointerType):
        declared = declared.pointee
    if isinstance(declared, VectorType):
        return declared.element.kind, declared.width
    text = str(declared) if declared is not None else "float"
    return (text if text in _SCALAR_KINDS else "float", 1)


def coerce_declared(declarator, value):
    """Coerce an initializer value to a declarator's declared scalar type."""
    declared = declarator.declared_type
    if isinstance(declared, VectorType):
        if isinstance(value, VectorValue):
            return value
        return VectorValue.broadcast(declared.element.kind, declared.width, value or 0)
    if isinstance(declared, PointerType) or isinstance(value, (Buffer, VectorValue)):
        return value
    text = str(declared) if declared is not None else "int"
    if text in _FLOAT_KINDS:
        return float(value or 0)
    if text in _INT_KINDS:
        if isinstance(value, float):
            return int(value)
        return int(value or 0)
    return value


def eval_sizeof(type_name: str) -> int:
    """``sizeof`` over the OpenCL scalar/vector type spelling *type_name*."""
    name = type_name.rstrip("*")
    if type_name.endswith("*"):
        return 8
    for base_name, size in _TYPE_SIZES.items():
        if name.startswith(base_name):
            suffix = name[len(base_name):]
            if suffix.isdigit():
                return size * int(suffix)
            if not suffix:
                return size
    return 4


def lookup_constant_or_zero(name: str):
    """Fallback resolution for identifiers unbound at runtime.

    Built-in OpenCL constants resolve to their value; anything else behaves
    like an uninitialised register (should have been caught statically).
    """
    return CONSTANTS.get(name, 0)


def store_to_identifier(env: dict, name: str, value) -> None:
    """Assign *value* to *name*, preserving the slot's int/float flavour."""
    existing = env.get(name)
    if isinstance(existing, float) and isinstance(value, int):
        value = float(value)
    elif isinstance(existing, int) and isinstance(value, float) and not isinstance(existing, bool):
        value = int(value)
    env[name] = value


def apply_atomic(operation: str, old, operand):
    """New cell value for atomic *operation* (cmpxchg handled by callers)."""
    if operation == "add":
        return old + operand
    if operation == "sub":
        return old - operand
    if operation == "inc":
        return old + 1
    if operation == "dec":
        return old - 1
    if operation == "xchg":
        return operand
    if operation == "min":
        return min(old, operand)
    if operation == "max":
        return max(old, operand)
    if operation == "and":
        return int(old) & int(operand)
    if operation == "or":
        return int(old) | int(operand)
    if operation == "xor":
        return int(old) ^ int(operand)
    return old


def collect_memory_stats(stats, pool, group_locals: dict) -> None:
    """Fold per-buffer access counters into *stats* (shared by both engines)."""
    for buffer in pool.buffers.values():
        if buffer.address_space == "global":
            stats.global_reads += buffer.stats.reads
            stats.global_writes += buffer.stats.writes
        elif buffer.address_space == "local":
            stats.local_accesses += buffer.stats.reads + buffer.stats.writes
        else:
            stats.private_accesses += buffer.stats.reads + buffer.stats.writes
        stats.out_of_bounds_accesses += buffer.stats.out_of_bounds
    for buffer in group_locals.values():
        if isinstance(buffer, Buffer):
            stats.local_accesses += buffer.stats.reads + buffer.stats.writes
