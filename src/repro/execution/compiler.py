"""A compile-once, execute-many engine for OpenCL kernels.

The tree-walking :class:`~repro.execution.interpreter.KernelInterpreter`
re-dispatches on AST node types (an ``isinstance`` chain) for every node of
every work-item of every execution.  This module lowers the kernel AST to
nested Python closures **once**; executing the kernel then runs specialized
code with all compile-time decisions (operator, callee kind, declared types,
vector widths, constants) already resolved.

The engine is a drop-in replacement: it produces bit-identical buffer
contents and :class:`~repro.execution.interpreter.ExecutionStats` to the
legacy interpreter (asserted by the differential test suite), including the
barrier-coroutine semantics — statements containing work-group barriers
compile to generator closures that yield at ``barrier()`` so work-items of a
group still interleave co-operatively.  Statements that cannot reach a
barrier compile to plain closures, which is the common case and avoids all
generator overhead in the inner NDRange loop.

Step accounting is deferred: each closure bumps a per-work-item counter
(also used for the timeout budget), and the per-item totals are summed into
``ExecutionStats.dynamic_operations`` when the item finishes, instead of
touching the stats object once per AST node.
"""

from __future__ import annotations

from repro.clc import ast_nodes as ast
from repro.clc.builtins import SYNC_FUNCTIONS, WORK_ITEM_FUNCTIONS
from repro.clc.types import AddressSpace, PointerType, VectorType
from repro.errors import ExecutionError, KernelRuntimeError, KernelTimeoutError
from repro.execution.builtins_impl import evaluate_builtin
from repro.execution.interpreter import ExecutionResult, ExecutionStats
from repro.execution.memory import Buffer, MemoryPool
from repro.execution.ndrange import NDRange
from repro.execution.ops import (
    BARRIER,
    BreakSignal,
    CONSTANTS,
    ContinueSignal,
    ReturnSignal,
    apply_atomic,
    apply_binary,
    as_index,
    collect_memory_stats,
    element_kind_of,
    eval_sizeof,
    store_to_identifier,
    truthy,
)
from repro.execution.values import VectorValue, convert_scalar

_MISSING = object()

_NUMERIC = (int, float)


def _fast_binary(op: str):
    """A binary-operator implementation with a scalar fast path.

    The fast path must only cover cases where plain Python arithmetic gives
    the same answer as :func:`repro.execution.ops.apply_binary`; everything
    else falls back to the shared implementation so both engines agree.
    """
    if op == "+":
        def impl(l, r):
            if isinstance(l, _NUMERIC) and isinstance(r, _NUMERIC):
                return l + r
            return apply_binary("+", l, r)
    elif op == "-":
        def impl(l, r):
            if isinstance(l, _NUMERIC) and isinstance(r, _NUMERIC):
                return l - r
            return apply_binary("-", l, r)
    elif op == "*":
        def impl(l, r):
            if isinstance(l, _NUMERIC) and isinstance(r, _NUMERIC):
                return l * r
            return apply_binary("*", l, r)
    elif op in ("==", "!=", "<", ">", "<=", ">="):
        compare = {
            "==": lambda l, r: l == r,
            "!=": lambda l, r: l != r,
            "<": lambda l, r: l < r,
            ">": lambda l, r: l > r,
            "<=": lambda l, r: l <= r,
            ">=": lambda l, r: l >= r,
        }[op]
        def impl(l, r):
            if isinstance(l, _NUMERIC) and isinstance(r, _NUMERIC):
                return 1 if compare(l, r) else 0
            return apply_binary(op, l, r)
    else:
        def impl(l, r):
            return apply_binary(op, l, r)
    return impl


#: Work-item query accessors, specialized per function name at compile time.
_WORK_ITEM_GETTERS = {
    "get_global_id": lambda nd, item, d: item.global_id[d],
    "get_local_id": lambda nd, item, d: item.local_id[d],
    "get_group_id": lambda nd, item, d: item.group_id[d],
    "get_global_size": lambda nd, item, d: nd.global_size[d],
    "get_local_size": lambda nd, item, d: nd.effective_local_size[d],
    "get_num_groups": lambda nd, item, d: nd.num_groups[d],
    "get_work_dim": lambda nd, item, d: nd.work_dim,
    "get_global_offset": lambda nd, item, d: 0,
}


class _Item:
    """Per-work-item execution context (slotted: created per item per run)."""

    __slots__ = ("global_id", "local_id", "group_id", "env", "steps", "call_depth")

    def __init__(self, global_id, local_id, group_id, env):
        self.global_id = global_id
        self.local_id = local_id
        self.group_id = group_id
        self.env = env
        self.steps = 0
        self.call_depth = 0


class _Runtime:
    """Per-execution state shared by all compiled closures."""

    __slots__ = (
        "stats",
        "ndrange",
        "branch_outcomes",
        "extra_ops",
        "group_locals",
        "group_index",
        "globals_env",
    )

    def __init__(self):
        self.stats = None
        self.ndrange = None
        self.branch_outcomes = {}
        self.extra_ops = 0
        self.group_locals = {}
        self.group_index = 0
        self.globals_env = {}


class CompiledKernel:
    """One kernel of a translation unit, lowered to closures.

    Compilation happens once in the constructor; :meth:`execute` can then be
    called any number of times (the instance holds no per-execution state).
    """

    def __init__(
        self,
        unit: ast.TranslationUnit,
        kernel_name: str | None = None,
        max_steps_per_item: int = 50_000,
    ):
        # Deliberately NOT keeping a reference to `unit`: the compilation
        # cache keys compiled kernels by unit identity with a weakref reaper,
        # which only works if the compiled kernel does not keep the unit
        # alive.  Closures capture the AST subtrees they need.
        kernels = unit.kernels
        if not kernels:
            raise ExecutionError("translation unit contains no kernels")
        if kernel_name is None:
            self._kernel = kernels[0]
        else:
            self._kernel = unit.kernel(kernel_name)
        self._functions = {f.name: f for f in unit.functions if f.body is not None}
        self._max_steps = max_steps_per_item
        self._branch_site_count = 0
        #: name -> (param_names, body_fn); populated lazily as call sites are
        #: compiled so unreferenced helpers cost nothing.
        self._helper_impls: dict[str, tuple[tuple[str, ...], object]] = {}
        self._helpers_in_progress: set[str] = set()

        #: (name, initializer_fn | None) per global declaration, in order.
        self._global_inits = []
        for declaration in unit.globals:
            declarator = declaration.declarator
            if declarator is None:
                continue
            init_fn = None
            if declarator.initializer is not None:
                init_fn = self._compile_expression(declarator.initializer)
            self._global_inits.append((declarator.name, init_fn))

        #: (name, is_pointer) per kernel parameter, in order.
        self._param_plan = [
            (p.name, isinstance(p.declared_type, PointerType)) for p in self._kernel.parameters
        ]

        self._body_fn, self._body_is_gen = self._compile_statement(
            self._kernel.body, in_helper=False
        )
        if self._body_fn is None:  # kernel body is a lone EmptyStmt
            self._body_fn = lambda rt, item: None
            self._body_is_gen = False

    @property
    def kernel(self) -> ast.FunctionDecl:
        return self._kernel

    @property
    def max_steps_per_item(self) -> int:
        return self._max_steps

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def execute(
        self,
        pool: MemoryPool,
        scalar_args: dict[str, object],
        ndrange: NDRange,
    ) -> ExecutionResult:
        """Run the compiled kernel; same contract as the interpreter."""
        stats = ExecutionStats()
        rt = _Runtime()
        rt.stats = stats
        rt.ndrange = ndrange

        # Globals are re-initialised per execution, like the interpreter.
        globals_env: dict = {}
        rt.globals_env = globals_env
        total_steps = 0
        for name, init_fn in self._global_inits:
            value = 0
            if init_fn is not None:
                dummy = _Item((0,), (0,), (0,), dict(globals_env))
                try:
                    value = init_fn(rt, dummy)
                except Exception:
                    value = 0
                total_steps += dummy.steps
            globals_env[name] = value

        for buffer in pool.buffers.values():
            buffer.stats.reads = 0
            buffer.stats.writes = 0
            buffer.stats.out_of_bounds = 0

        base_env = dict(globals_env)
        for name, is_pointer in self._param_plan:
            if is_pointer:
                buffer = pool.get(name)
                if buffer is None:
                    raise ExecutionError(f"no buffer bound for pointer argument {name!r}")
                base_env[name] = buffer
            else:
                base_env[name] = scalar_args[name] if name in scalar_args else 0

        local_ids = list(ndrange.local_ids())
        body_fn = self._body_fn
        body_is_gen = self._body_is_gen

        for group_index, group_id in enumerate(ndrange.group_ids()):
            stats.work_groups += 1
            rt.group_locals = {}
            rt.group_index = group_index

            items = []
            for local_id in local_ids:
                global_id = ndrange.global_id(group_id, local_id)
                if not ndrange.in_range(global_id):
                    continue
                items.append(_Item(global_id, local_id, group_id, dict(base_env)))
                stats.work_items += 1

            if body_is_gen:
                active = [self._run_item_gen(rt, item, body_fn) for item in items]
                while active:
                    still_active = []
                    for runner in active:
                        try:
                            signal = next(runner)
                            while signal is not BARRIER:
                                signal = next(runner)
                            still_active.append(runner)
                        except StopIteration:
                            pass
                    if still_active:
                        stats.barriers_hit += 1
                    active = still_active
            else:
                for item in items:
                    try:
                        body_fn(rt, item)
                    except (ReturnSignal, BreakSignal, ContinueSignal):
                        pass

            for item in items:
                total_steps += item.steps

        stats.dynamic_operations = total_steps + rt.extra_ops
        collect_memory_stats(stats, pool, rt.group_locals)
        stats.branch_sites = len(rt.branch_outcomes)
        stats.divergent_branch_sites = sum(
            1 for outcomes in rt.branch_outcomes.values() if len(outcomes) > 1
        )
        return ExecutionResult(kernel_name=self._kernel.name, pool=pool, stats=stats)

    @staticmethod
    def _run_item_gen(rt, item, body_fn):
        try:
            yield from body_fn(rt, item)
        except (ReturnSignal, BreakSignal, ContinueSignal):
            pass

    # ------------------------------------------------------------------
    # Shared compile-time helpers.
    # ------------------------------------------------------------------

    def _timeout(self, item) -> None:
        raise KernelTimeoutError(
            f"work-item {item.global_id} exceeded {self._max_steps} steps "
            f"in kernel {self._kernel.name!r}"
        )

    def _next_branch_site(self) -> int:
        site = self._branch_site_count
        self._branch_site_count += 1
        return site

    # ------------------------------------------------------------------
    # Statement compilation.
    #
    # Each statement compiles to ``(fn, is_gen)``.  ``fn`` is ``None`` for
    # empty statements.  When ``is_gen`` is true, ``fn(rt, item)`` returns a
    # generator yielding BARRIER; otherwise it is a plain callable.  Inside
    # helper functions (``in_helper``) barriers are no-ops (the scheduler
    # never sees them), so everything compiles to plain callables.
    # ------------------------------------------------------------------

    def _compile_statement(self, statement, in_helper: bool):
        if statement is None or isinstance(statement, ast.EmptyStmt):
            return None, False
        handler = _STATEMENT_COMPILERS.get(type(statement))
        if handler is None:
            type_name = type(statement).__name__
            max_steps = self._max_steps
            timeout = self._timeout

            def unknown(rt, item):
                item.steps = s = item.steps + 1
                if s > max_steps:
                    timeout(item)
                raise KernelRuntimeError(f"cannot execute statement {type_name}")

            return unknown, False
        return handler(self, statement, in_helper)

    def _compile_compound(self, statement: ast.CompoundStmt, in_helper: bool):
        children = [self._compile_statement(child, in_helper) for child in statement.statements]
        children = [(fn, gen) for fn, gen in children if fn is not None]
        max_steps = self._max_steps
        timeout = self._timeout
        if not any(gen for _, gen in children):
            fns = [fn for fn, _ in children]

            def run(rt, item):
                item.steps = s = item.steps + 1
                if s > max_steps:
                    timeout(item)
                for fn in fns:
                    fn(rt, item)

            return run, False

        def run_gen(rt, item):
            item.steps = s = item.steps + 1
            if s > max_steps:
                timeout(item)
            for fn, gen in children:
                if gen:
                    yield from fn(rt, item)
                else:
                    fn(rt, item)

        return run_gen, True

    def _compile_decl(self, statement: ast.DeclStmt, in_helper: bool):
        actions = [self._compile_declarator(d) for d in statement.declarators]
        max_steps = self._max_steps
        timeout = self._timeout

        def run(rt, item):
            item.steps = s = item.steps + 1
            if s > max_steps:
                timeout(item)
            for action in actions:
                action(rt, item)

        return run, False

    def _compile_declarator(self, declarator: ast.Declarator):
        name = declarator.name
        declared = declarator.declared_type
        is_local = declarator.address_space is AddressSpace.LOCAL or (
            isinstance(declared, PointerType)
            and declared.address_space is AddressSpace.LOCAL
            and declarator.array_size is not None
        )
        if is_local:
            size_fn = (
                self._compile_expression(declarator.array_size)
                if declarator.array_size is not None
                else None
            )
            kind, width = element_kind_of(declarator)

            def local_action(rt, item):
                buffer = rt.group_locals.get(name)
                if buffer is None:
                    size = 64
                    if size_fn is not None:
                        size = int(size_fn(rt, item) or 64)
                    buffer = Buffer(name, max(size, 1), kind, width, address_space="local")
                    rt.group_locals[name] = buffer
                item.env[name] = buffer

            return local_action

        if declarator.array_size is not None:
            size_fn = self._compile_expression(declarator.array_size)
            kind, width = element_kind_of(declarator)

            def array_action(rt, item):
                size = int(size_fn(rt, item) or 0)
                item.env[name] = Buffer(name, max(size, 1), kind, width, address_space="private")

            return array_action

        init_fn = (
            self._compile_expression(declarator.initializer)
            if declarator.initializer is not None
            else None
        )
        coerce = _compile_coercion(declared)

        def scalar_action(rt, item):
            value = init_fn(rt, item) if init_fn is not None else 0
            item.env[name] = coerce(value)

        return scalar_action

    def _compile_expr_stmt(self, statement: ast.ExprStmt, in_helper: bool):
        max_steps = self._max_steps
        timeout = self._timeout
        expression = statement.expression
        if expression is None:

            def run_empty(rt, item):
                item.steps = s = item.steps + 1
                if s > max_steps:
                    timeout(item)

            return run_empty, False

        if isinstance(expression, ast.Call) and expression.callee in SYNC_FUNCTIONS:
            # Statement-level barrier: arguments are not evaluated.
            if in_helper:
                # Helpers cannot contain scheduler-visible barriers; the
                # interpreter drains their yields, which degenerates to a
                # stats-only no-op.
                def run_helper_barrier(rt, item):
                    item.steps = s = item.steps + 1
                    if s > max_steps:
                        timeout(item)
                    rt.extra_ops += 1

                return run_helper_barrier, False

            def run_barrier(rt, item):
                item.steps = s = item.steps + 1
                if s > max_steps:
                    timeout(item)
                rt.extra_ops += 1
                yield BARRIER

            return run_barrier, True

        expr_fn = self._compile_expression(expression)

        def run(rt, item):
            item.steps = s = item.steps + 1
            if s > max_steps:
                timeout(item)
            expr_fn(rt, item)

        return run, False

    def _compile_if(self, statement: ast.IfStmt, in_helper: bool):
        condition_fn = self._compile_expression(statement.condition)
        then_fn, then_gen = self._compile_statement(statement.then_branch, in_helper)
        has_else = statement.else_branch is not None
        else_fn, else_gen = self._compile_statement(statement.else_branch, in_helper)
        site = self._next_branch_site()
        max_steps = self._max_steps
        timeout = self._timeout

        if not (then_gen or else_gen):

            def run(rt, item):
                item.steps = s = item.steps + 1
                if s > max_steps:
                    timeout(item)
                outcome = truthy(condition_fn(rt, item))
                rt.stats.branch_evaluations += 1
                key = (site, rt.group_index)
                outcomes = rt.branch_outcomes.get(key)
                if outcomes is None:
                    rt.branch_outcomes[key] = {outcome}
                else:
                    outcomes.add(outcome)
                if outcome:
                    if then_fn is not None:
                        then_fn(rt, item)
                elif has_else:
                    if else_fn is not None:
                        else_fn(rt, item)

            return run, False

        def run_gen(rt, item):
            item.steps = s = item.steps + 1
            if s > max_steps:
                timeout(item)
            outcome = truthy(condition_fn(rt, item))
            rt.stats.branch_evaluations += 1
            key = (site, rt.group_index)
            outcomes = rt.branch_outcomes.get(key)
            if outcomes is None:
                rt.branch_outcomes[key] = {outcome}
            else:
                outcomes.add(outcome)
            if outcome:
                if then_fn is not None:
                    if then_gen:
                        yield from then_fn(rt, item)
                    else:
                        then_fn(rt, item)
            elif has_else:
                if else_fn is not None:
                    if else_gen:
                        yield from else_fn(rt, item)
                    else:
                        else_fn(rt, item)

        return run_gen, True

    def _compile_for(self, statement: ast.ForStmt, in_helper: bool):
        init_fn, init_gen = self._compile_statement(statement.init, in_helper)
        condition_fn = (
            self._compile_expression(statement.condition)
            if statement.condition is not None
            else None
        )
        increment_fn = (
            self._compile_expression(statement.increment)
            if statement.increment is not None
            else None
        )
        body_fn, body_gen = self._compile_statement(statement.body, in_helper)
        max_steps = self._max_steps
        timeout = self._timeout

        def run_init(rt, item):
            if init_fn is not None:
                if init_gen:
                    # The interpreter drains barrier yields from loop inits.
                    for _ in init_fn(rt, item):
                        pass
                else:
                    init_fn(rt, item)

        if not body_gen:

            def run(rt, item):
                item.steps = s = item.steps + 1
                if s > max_steps:
                    timeout(item)
                run_init(rt, item)
                stats = rt.stats
                while True:
                    if condition_fn is not None:
                        condition = truthy(condition_fn(rt, item))
                        stats.branch_evaluations += 1
                        if not condition:
                            break
                    if body_fn is not None:
                        try:
                            body_fn(rt, item)
                        except BreakSignal:
                            break
                        except ContinueSignal:
                            pass
                    if increment_fn is not None:
                        increment_fn(rt, item)

            return run, False

        def run_gen(rt, item):
            item.steps = s = item.steps + 1
            if s > max_steps:
                timeout(item)
            run_init(rt, item)
            stats = rt.stats
            while True:
                if condition_fn is not None:
                    condition = truthy(condition_fn(rt, item))
                    stats.branch_evaluations += 1
                    if not condition:
                        break
                try:
                    yield from body_fn(rt, item)
                except BreakSignal:
                    break
                except ContinueSignal:
                    pass
                if increment_fn is not None:
                    increment_fn(rt, item)

        return run_gen, True

    def _compile_while(self, statement: ast.WhileStmt, in_helper: bool):
        condition_fn = self._compile_expression(statement.condition)
        body_fn, body_gen = self._compile_statement(statement.body, in_helper)
        max_steps = self._max_steps
        timeout = self._timeout

        if not body_gen:

            def run(rt, item):
                item.steps = s = item.steps + 1
                if s > max_steps:
                    timeout(item)
                stats = rt.stats
                while True:
                    condition = truthy(condition_fn(rt, item))
                    stats.branch_evaluations += 1
                    if not condition:
                        break
                    if body_fn is not None:
                        try:
                            body_fn(rt, item)
                        except BreakSignal:
                            break
                        except ContinueSignal:
                            continue

            return run, False

        def run_gen(rt, item):
            item.steps = s = item.steps + 1
            if s > max_steps:
                timeout(item)
            stats = rt.stats
            while True:
                condition = truthy(condition_fn(rt, item))
                stats.branch_evaluations += 1
                if not condition:
                    break
                try:
                    yield from body_fn(rt, item)
                except BreakSignal:
                    break
                except ContinueSignal:
                    continue

        return run_gen, True

    def _compile_do_while(self, statement: ast.DoWhileStmt, in_helper: bool):
        condition_fn = self._compile_expression(statement.condition)
        body_fn, body_gen = self._compile_statement(statement.body, in_helper)
        max_steps = self._max_steps
        timeout = self._timeout

        if not body_gen:

            def run(rt, item):
                item.steps = s = item.steps + 1
                if s > max_steps:
                    timeout(item)
                stats = rt.stats
                while True:
                    if body_fn is not None:
                        try:
                            body_fn(rt, item)
                        except BreakSignal:
                            break
                        except ContinueSignal:
                            pass
                    condition = truthy(condition_fn(rt, item))
                    stats.branch_evaluations += 1
                    if not condition:
                        break

            return run, False

        def run_gen(rt, item):
            item.steps = s = item.steps + 1
            if s > max_steps:
                timeout(item)
            stats = rt.stats
            while True:
                try:
                    yield from body_fn(rt, item)
                except BreakSignal:
                    break
                except ContinueSignal:
                    pass
                condition = truthy(condition_fn(rt, item))
                stats.branch_evaluations += 1
                if not condition:
                    break

        return run_gen, True

    def _compile_switch(self, statement: ast.SwitchStmt, in_helper: bool):
        condition_fn = self._compile_expression(statement.condition)
        cases = []
        any_gen = False
        for case in statement.cases:
            value_fn = (
                self._compile_expression(case.value) if case.value is not None else None
            )
            children = [self._compile_statement(child, in_helper) for child in case.body]
            children = [(fn, gen) for fn, gen in children if fn is not None]
            any_gen = any_gen or any(gen for _, gen in children)
            cases.append((value_fn, children))
        max_steps = self._max_steps
        timeout = self._timeout

        if not any_gen:

            def run(rt, item):
                item.steps = s = item.steps + 1
                if s > max_steps:
                    timeout(item)
                value = condition_fn(rt, item)
                matched = False
                try:
                    for value_fn, children in cases:
                        if not matched:
                            if value_fn is None:
                                matched = True
                            else:
                                matched = value == value_fn(rt, item)
                        if matched:
                            for fn, _ in children:
                                fn(rt, item)
                except BreakSignal:
                    pass

            return run, False

        def run_gen(rt, item):
            item.steps = s = item.steps + 1
            if s > max_steps:
                timeout(item)
            value = condition_fn(rt, item)
            matched = False
            try:
                for value_fn, children in cases:
                    if not matched:
                        if value_fn is None:
                            matched = True
                        else:
                            matched = value == value_fn(rt, item)
                    if matched:
                        for fn, gen in children:
                            if gen:
                                yield from fn(rt, item)
                            else:
                                fn(rt, item)
            except BreakSignal:
                pass

        return run_gen, True

    def _compile_return(self, statement: ast.ReturnStmt, in_helper: bool):
        value_fn = (
            self._compile_expression(statement.value) if statement.value is not None else None
        )
        max_steps = self._max_steps
        timeout = self._timeout

        def run(rt, item):
            item.steps = s = item.steps + 1
            if s > max_steps:
                timeout(item)
            raise ReturnSignal(value_fn(rt, item) if value_fn is not None else None)

        return run, False

    def _compile_break(self, statement: ast.BreakStmt, in_helper: bool):
        max_steps = self._max_steps
        timeout = self._timeout

        def run(rt, item):
            item.steps = s = item.steps + 1
            if s > max_steps:
                timeout(item)
            raise BreakSignal()

        return run, False

    def _compile_continue(self, statement: ast.ContinueStmt, in_helper: bool):
        max_steps = self._max_steps
        timeout = self._timeout

        def run(rt, item):
            item.steps = s = item.steps + 1
            if s > max_steps:
                timeout(item)
            raise ContinueSignal()

        return run, False

    # ------------------------------------------------------------------
    # Expression compilation: each expression compiles to ``fn(rt, item)``.
    # ------------------------------------------------------------------

    def _compile_expression(self, expression):
        handler = _EXPRESSION_COMPILERS.get(type(expression))
        if handler is None:
            type_name = type(expression).__name__
            max_steps = self._max_steps
            timeout = self._timeout

            def unknown(rt, item):
                item.steps = s = item.steps + 1
                if s > max_steps:
                    timeout(item)
                raise KernelRuntimeError(f"cannot evaluate expression {type_name}")

            return unknown
        return handler(self, expression)

    def _compile_constant(self, value):
        max_steps = self._max_steps
        timeout = self._timeout

        def fn(rt, item):
            item.steps = s = item.steps + 1
            if s > max_steps:
                timeout(item)
            return value

        return fn

    def _compile_int_literal(self, expression: ast.IntLiteral):
        return self._compile_constant(expression.value)

    def _compile_float_literal(self, expression: ast.FloatLiteral):
        return self._compile_constant(expression.value)

    def _compile_char_literal(self, expression: ast.CharLiteral):
        text = expression.value.strip("'")
        return self._compile_constant(ord(text[0]) if text else 0)

    def _compile_string_literal(self, expression: ast.StringLiteral):
        return self._compile_constant(0)

    def _compile_sizeof(self, expression: ast.SizeOf):
        return self._compile_constant(eval_sizeof(expression.target_type_name))

    def _compile_identifier(self, expression: ast.Identifier):
        name = expression.name
        fallback = CONSTANTS.get(name, 0)
        max_steps = self._max_steps
        timeout = self._timeout

        def fn(rt, item):
            item.steps = s = item.steps + 1
            if s > max_steps:
                timeout(item)
            value = item.env.get(name, _MISSING)
            if value is not _MISSING:
                return value
            group_locals = rt.group_locals
            if name in group_locals:
                return group_locals[name]
            return fallback

        return fn

    def _compile_binary(self, expression: ast.BinaryOp):
        op = expression.op
        left_fn = self._compile_expression(expression.left)
        right_fn = self._compile_expression(expression.right)
        max_steps = self._max_steps
        timeout = self._timeout

        if op == "&&":

            def fn_and(rt, item):
                item.steps = s = item.steps + 1
                if s > max_steps:
                    timeout(item)
                if not truthy(left_fn(rt, item)):
                    return 0
                return 1 if truthy(right_fn(rt, item)) else 0

            return fn_and

        if op == "||":

            def fn_or(rt, item):
                item.steps = s = item.steps + 1
                if s > max_steps:
                    timeout(item)
                if truthy(left_fn(rt, item)):
                    return 1
                return 1 if truthy(right_fn(rt, item)) else 0

            return fn_or

        if op == ",":

            def fn_comma(rt, item):
                item.steps = s = item.steps + 1
                if s > max_steps:
                    timeout(item)
                left_fn(rt, item)
                return right_fn(rt, item)

            return fn_comma

        combine = _fast_binary(op)

        def fn(rt, item):
            item.steps = s = item.steps + 1
            if s > max_steps:
                timeout(item)
            return combine(left_fn(rt, item), right_fn(rt, item))

        return fn

    def _compile_unary(self, expression: ast.UnaryOp):
        op = expression.op
        max_steps = self._max_steps
        timeout = self._timeout

        if op in ("++", "--"):
            operand_fn = self._compile_expression(expression.operand)
            store_fn = self._compile_store(expression.operand)
            combine = _fast_binary("+" if op == "++" else "-")

            def fn_incdec(rt, item):
                item.steps = s = item.steps + 1
                if s > max_steps:
                    timeout(item)
                updated = combine(operand_fn(rt, item), 1)
                store_fn(rt, item, updated)
                return updated

            return fn_incdec

        if op == "*":
            operand_fn = self._compile_expression(expression.operand)

            def fn_deref(rt, item):
                item.steps = s = item.steps + 1
                if s > max_steps:
                    timeout(item)
                pointer = operand_fn(rt, item)
                if isinstance(pointer, Buffer):
                    return pointer.load(0)
                return pointer

            return fn_deref

        if op == "&":
            location_fn = self._compile_location(expression.operand)
            operand_fn = self._compile_expression(expression.operand)

            def fn_addr(rt, item):
                item.steps = s = item.steps + 1
                if s > max_steps:
                    timeout(item)
                location = location_fn(rt, item)
                if location is not None:
                    return location
                return operand_fn(rt, item)

            return fn_addr

        operand_fn = self._compile_expression(expression.operand)

        if op == "-":

            def fn_neg(rt, item):
                item.steps = s = item.steps + 1
                if s > max_steps:
                    timeout(item)
                operand = operand_fn(rt, item)
                return -operand if not isinstance(operand, Buffer) else operand

            return fn_neg

        if op == "+":

            def fn_pos(rt, item):
                item.steps = s = item.steps + 1
                if s > max_steps:
                    timeout(item)
                return operand_fn(rt, item)

            return fn_pos

        if op == "!":

            def fn_not(rt, item):
                item.steps = s = item.steps + 1
                if s > max_steps:
                    timeout(item)
                return 0 if truthy(operand_fn(rt, item)) else 1

            return fn_not

        if op == "~":

            def fn_invert(rt, item):
                item.steps = s = item.steps + 1
                if s > max_steps:
                    timeout(item)
                operand = operand_fn(rt, item)
                if isinstance(operand, VectorValue):
                    return operand.map(lambda v: ~int(v))
                return ~int(operand)

            return fn_invert

        def fn_unsupported(rt, item):
            item.steps = s = item.steps + 1
            if s > max_steps:
                timeout(item)
            operand_fn(rt, item)
            raise KernelRuntimeError(f"unsupported unary operator {op!r}")

        return fn_unsupported

    def _compile_postfix(self, expression: ast.PostfixOp):
        operand_fn = self._compile_expression(expression.operand)
        store_fn = self._compile_store(expression.operand)
        combine = _fast_binary("+" if expression.op == "++" else "-")
        max_steps = self._max_steps
        timeout = self._timeout

        def fn(rt, item):
            item.steps = s = item.steps + 1
            if s > max_steps:
                timeout(item)
            current = operand_fn(rt, item)
            store_fn(rt, item, combine(current, 1))
            return current

        return fn

    def _compile_assignment(self, expression: ast.Assignment):
        value_fn = self._compile_expression(expression.value)
        store_fn = self._compile_store(expression.target)
        max_steps = self._max_steps
        timeout = self._timeout

        if expression.op == "=":

            def fn_assign(rt, item):
                item.steps = s = item.steps + 1
                if s > max_steps:
                    timeout(item)
                value = value_fn(rt, item)
                store_fn(rt, item, value)
                return value

            return fn_assign

        target_fn = self._compile_expression(expression.target)
        combine = _fast_binary(expression.op[:-1])

        def fn_compound(rt, item):
            item.steps = s = item.steps + 1
            if s > max_steps:
                timeout(item)
            value = value_fn(rt, item)
            value = combine(target_fn(rt, item), value)
            store_fn(rt, item, value)
            return value

        return fn_compound

    def _compile_ternary(self, expression: ast.TernaryOp):
        condition_fn = self._compile_expression(expression.condition)
        true_fn = self._compile_expression(expression.if_true)
        false_fn = self._compile_expression(expression.if_false)
        max_steps = self._max_steps
        timeout = self._timeout

        def fn(rt, item):
            item.steps = s = item.steps + 1
            if s > max_steps:
                timeout(item)
            if truthy(condition_fn(rt, item)):
                return true_fn(rt, item)
            return false_fn(rt, item)

        return fn

    def _compile_index(self, expression: ast.Index):
        base_fn = self._compile_expression(expression.base)
        index_fn = self._compile_expression(expression.index)
        max_steps = self._max_steps
        timeout = self._timeout

        def fn(rt, item):
            item.steps = s = item.steps + 1
            if s > max_steps:
                timeout(item)
            base = base_fn(rt, item)
            index = index_fn(rt, item)
            if isinstance(base, Buffer):
                return base.load(as_index(index))
            if isinstance(base, VectorValue):
                return base.values[as_index(index) % (base.width or 1)]
            if isinstance(base, list):
                position = as_index(index)
                if 0 <= position < len(base):
                    return base[position]
                return 0
            return 0

        return fn

    def _compile_member(self, expression: ast.Member):
        base_fn = self._compile_expression(expression.base)
        member = expression.member
        max_steps = self._max_steps
        timeout = self._timeout

        def fn(rt, item):
            item.steps = s = item.steps + 1
            if s > max_steps:
                timeout(item)
            base = base_fn(rt, item)
            if isinstance(base, VectorValue):
                try:
                    return base.get_member(member)
                except ValueError:
                    return 0
            if isinstance(base, dict):
                return base.get(member, 0)
            return 0

        return fn

    def _compile_cast(self, expression: ast.Cast):
        operand_fn = self._compile_expression(expression.operand)
        target = expression.target_type
        max_steps = self._max_steps
        timeout = self._timeout

        if isinstance(target, VectorType):
            kind = target.element.kind
            width = target.width

            def fn_vector(rt, item):
                item.steps = s = item.steps + 1
                if s > max_steps:
                    timeout(item)
                value = operand_fn(rt, item)
                if isinstance(value, Buffer):
                    return value
                if isinstance(value, VectorValue):
                    return VectorValue(
                        kind, [convert_scalar(kind, v) for v in value.values[:width]]
                    )
                return VectorValue.broadcast(kind, width, value)

            return fn_vector

        if target is not None and not isinstance(target, PointerType) and hasattr(target, "kind"):
            kind = target.kind

            def fn_scalar(rt, item):
                item.steps = s = item.steps + 1
                if s > max_steps:
                    timeout(item)
                value = operand_fn(rt, item)
                if isinstance(value, Buffer):
                    return value
                return convert_scalar(kind, value)

            return fn_scalar

        def fn_passthrough(rt, item):
            item.steps = s = item.steps + 1
            if s > max_steps:
                timeout(item)
            return operand_fn(rt, item)

        return fn_passthrough

    def _compile_vector_literal(self, expression: ast.VectorLiteral):
        target = expression.target_type
        assert isinstance(target, VectorType)
        kind = target.element.kind
        width = target.width
        element_fns = [self._compile_expression(element) for element in expression.elements]
        max_steps = self._max_steps
        timeout = self._timeout

        def fn(rt, item):
            item.steps = s = item.steps + 1
            if s > max_steps:
                timeout(item)
            components = [element_fn(rt, item) for element_fn in element_fns]
            return VectorValue.from_components(kind, width, components)

        return fn

    def _compile_initializer_list(self, expression: ast.InitializerList):
        element_fns = [self._compile_expression(element) for element in expression.elements]
        max_steps = self._max_steps
        timeout = self._timeout

        def fn(rt, item):
            item.steps = s = item.steps + 1
            if s > max_steps:
                timeout(item)
            return [element_fn(rt, item) for element_fn in element_fns]

        return fn

    # ------------------------------------------------------------------
    # Calls.
    # ------------------------------------------------------------------

    def _compile_call(self, expression: ast.Call):
        name = expression.callee
        max_steps = self._max_steps
        timeout = self._timeout

        if name in WORK_ITEM_FUNCTIONS:
            dimension_fn = (
                self._compile_expression(expression.arguments[0])
                if expression.arguments
                else None
            )
            getter = _WORK_ITEM_GETTERS.get(name)
            if getter is None:
                return self._compile_constant(0)

            def fn_query(rt, item):
                item.steps = s = item.steps + 1
                if s > max_steps:
                    timeout(item)
                dimension = as_index(dimension_fn(rt, item)) if dimension_fn is not None else 0
                ndrange = rt.ndrange
                work_dim = ndrange.work_dim
                if dimension < 0:
                    dimension = 0
                elif dimension >= work_dim:
                    dimension = work_dim - 1
                return getter(ndrange, item, dimension)

            return fn_query

        if name in SYNC_FUNCTIONS:
            # Barriers in expression position are no-ops (statement-level
            # barriers are recognised by the statement compiler instead).
            argument_fns = [self._compile_expression(a) for a in expression.arguments]

            def fn_sync(rt, item):
                item.steps = s = item.steps + 1
                if s > max_steps:
                    timeout(item)
                for argument_fn in argument_fns:
                    argument_fn(rt, item)
                return 0

            return fn_sync

        if name.startswith(("atomic_", "atom_")):
            return self._compile_atomic(name, expression)

        if name.startswith("vload"):
            return self._compile_vload(name, expression)
        if name.startswith("vstore"):
            return self._compile_vstore(name, expression)

        argument_fns = [self._compile_expression(a) for a in expression.arguments]

        if name in self._functions:
            return self._compile_user_call(name, argument_fns)

        def fn_builtin(rt, item):
            item.steps = s = item.steps + 1
            if s > max_steps:
                timeout(item)
            arguments = [argument_fn(rt, item) for argument_fn in argument_fns]
            try:
                return evaluate_builtin(name, arguments)
            except KeyError:
                # Unknown call (e.g. undeclared function in lenient mode).
                return 0

        return fn_builtin

    def _compile_user_call(self, name: str, argument_fns: list):
        from repro.execution.interpreter import MAX_CALL_DEPTH

        self._ensure_helper_compiled(name)
        impls = self._helper_impls
        max_steps = self._max_steps
        timeout = self._timeout
        kernel_name = self._kernel.name

        def fn(rt, item):
            item.steps = s = item.steps + 1
            if s > max_steps:
                timeout(item)
            arguments = [argument_fn(rt, item) for argument_fn in argument_fns]
            rt.stats.helper_calls += 1
            # Same guard (and depth) as the interpreter's user-call path, so
            # a recursive kernel is excluded identically by every engine.
            item.call_depth = depth = item.call_depth + 1
            if depth > MAX_CALL_DEPTH:
                raise ExecutionError(
                    f"call depth exceeded {MAX_CALL_DEPTH} in kernel "
                    f"{kernel_name!r} (recursion is not valid OpenCL C)"
                )
            parameter_names, body_fn = impls[name]
            saved_env = item.env
            call_env = dict(rt.globals_env)
            for parameter_name, argument in zip(parameter_names, arguments):
                call_env[parameter_name] = argument
            item.env = call_env
            result = None
            try:
                try:
                    if body_fn is not None:
                        body_fn(rt, item)
                except ReturnSignal as returned:
                    result = returned.value
            finally:
                item.env = saved_env
                item.call_depth -= 1
            return result

        return fn

    def _ensure_helper_compiled(self, name: str) -> None:
        if name in self._helper_impls or name in self._helpers_in_progress:
            return
        self._helpers_in_progress.add(name)
        try:
            function = self._functions[name]
            parameter_names = tuple(p.name for p in function.parameters)
            # Helper bodies never yield to the scheduler: the interpreter
            # drains their generators, so barriers degrade to stats no-ops.
            body_fn, _ = self._compile_statement(function.body, in_helper=True)
            self._helper_impls[name] = (parameter_names, body_fn)
        finally:
            self._helpers_in_progress.discard(name)

    def _compile_atomic(self, name: str, expression: ast.Call):
        max_steps = self._max_steps
        timeout = self._timeout
        if not expression.arguments:
            return self._compile_constant(0)

        first = expression.arguments[0]
        if isinstance(first, ast.UnaryOp) and first.op == "&":
            first = first.operand
        location_fn = self._compile_location(first)
        operand_fn = (
            self._compile_expression(expression.arguments[1])
            if len(expression.arguments) > 1
            else None
        )
        operation = name.replace("atomic_", "").replace("atom_", "")

        if operation == "cmpxchg":
            value_fn = (
                self._compile_expression(expression.arguments[2])
                if len(expression.arguments) > 2
                else None
            )

            def fn_cmpxchg(rt, item):
                item.steps = s = item.steps + 1
                if s > max_steps:
                    timeout(item)
                location = location_fn(rt, item)
                operand = operand_fn(rt, item) if operand_fn is not None else 1
                if location is None:
                    return 0
                buffer, index = location
                old = buffer.load(index)
                value = value_fn(rt, item) if value_fn is not None else old
                buffer.store(index, value if old == operand else old)
                return old

            return fn_cmpxchg

        def fn(rt, item):
            item.steps = s = item.steps + 1
            if s > max_steps:
                timeout(item)
            location = location_fn(rt, item)
            operand = operand_fn(rt, item) if operand_fn is not None else 1
            if location is None:
                return 0
            buffer, index = location
            old = buffer.load(index)
            buffer.store(index, apply_atomic(operation, old, operand))
            return old

        return fn

    def _compile_vload(self, name: str, expression: ast.Call):
        max_steps = self._max_steps
        timeout = self._timeout
        try:
            width = int(name.replace("vload", "") or 1)
        except ValueError:

            def fn_bad(rt, item):
                item.steps = s = item.steps + 1
                if s > max_steps:
                    timeout(item)
                raise ValueError(f"invalid literal for int() with base 10: {name.replace('vload', '')!r}")

            return fn_bad
        offset_fn = (
            self._compile_expression(expression.arguments[0]) if expression.arguments else None
        )
        pointer_fn = (
            self._compile_expression(expression.arguments[1])
            if len(expression.arguments) > 1
            else None
        )

        def fn(rt, item):
            item.steps = s = item.steps + 1
            if s > max_steps:
                timeout(item)
            offset = as_index(offset_fn(rt, item)) if offset_fn is not None else 0
            pointer = pointer_fn(rt, item) if pointer_fn is not None else None
            if isinstance(pointer, Buffer):
                values = [pointer.load(offset * width + i) for i in range(width)]
                kind = pointer.element_kind
                return VectorValue(
                    kind, [float(v) if kind in ("float", "double") else v for v in values]
                )
            return VectorValue.broadcast("float", width, 0.0)

        return fn

    def _compile_vstore(self, name: str, expression: ast.Call):
        max_steps = self._max_steps
        timeout = self._timeout
        if len(expression.arguments) < 3:
            return self._compile_constant(0)
        try:
            width = int(name.replace("vstore", "") or 1)
        except ValueError:

            def fn_bad(rt, item):
                item.steps = s = item.steps + 1
                if s > max_steps:
                    timeout(item)
                raise ValueError(f"invalid literal for int() with base 10: {name.replace('vstore', '')!r}")

            return fn_bad
        value_fn = self._compile_expression(expression.arguments[0])
        offset_fn = self._compile_expression(expression.arguments[1])
        pointer_fn = self._compile_expression(expression.arguments[2])

        def fn(rt, item):
            item.steps = s = item.steps + 1
            if s > max_steps:
                timeout(item)
            value = value_fn(rt, item)
            offset = as_index(offset_fn(rt, item))
            pointer = pointer_fn(rt, item)
            if isinstance(pointer, Buffer):
                values = value.values if isinstance(value, VectorValue) else [value] * width
                for position, element in enumerate(values[:width]):
                    pointer.store(offset * width + position, element)
            return 0

        return fn

    # ------------------------------------------------------------------
    # L-values.
    # ------------------------------------------------------------------

    def _compile_location(self, expression):
        """Compile an lvalue to a ``fn(rt, item) -> (Buffer, index) | None``."""
        if isinstance(expression, ast.Index):
            base_fn = self._compile_expression(expression.base)
            index_fn = self._compile_expression(expression.index)

            def fn_index(rt, item):
                base = base_fn(rt, item)
                index = index_fn(rt, item)
                if isinstance(base, Buffer):
                    return (base, as_index(index))
                return None

            return fn_index

        if isinstance(expression, ast.Identifier):
            name = expression.name

            def fn_identifier(rt, item):
                value = item.env.get(name)
                if isinstance(value, Buffer):
                    return (value, 0)
                return None

            return fn_identifier

        return lambda rt, item: None

    def _compile_store(self, target):
        """Compile an lvalue to a ``fn(rt, item, value)`` store closure."""
        if isinstance(target, ast.Identifier):
            name = target.name

            def store_identifier(rt, item, value):
                store_to_identifier(item.env, name, value)

            return store_identifier

        if isinstance(target, ast.Index):
            base_fn = self._compile_expression(target.base)
            index_fn = self._compile_expression(target.index)
            base_name = target.base.name if isinstance(target.base, ast.Identifier) else None

            def store_index(rt, item, value):
                base = base_fn(rt, item)
                index = index_fn(rt, item)
                if isinstance(base, Buffer):
                    base.store(as_index(index), value)
                elif isinstance(base, VectorValue) and base_name is not None:
                    item.env[base_name] = base.with_member(f"s{int(index):x}", value)

            return store_index

        if isinstance(target, ast.Member):
            base_fn = self._compile_expression(target.base)
            inner_store = self._compile_store(target.base)
            member = target.member

            def store_member(rt, item, value):
                base = base_fn(rt, item)
                if isinstance(base, VectorValue):
                    inner_store(rt, item, base.with_member(member, value))

            return store_member

        if isinstance(target, ast.UnaryOp) and target.op == "*":
            pointer_fn = self._compile_expression(target.operand)

            def store_deref(rt, item, value):
                pointer = pointer_fn(rt, item)
                if isinstance(pointer, Buffer):
                    pointer.store(0, value)
                elif (
                    isinstance(pointer, tuple)
                    and len(pointer) == 2
                    and isinstance(pointer[0], Buffer)
                ):
                    pointer[0].store(pointer[1], value)

            return store_deref

        if isinstance(target, ast.Cast):
            return self._compile_store(target.operand)

        # Silently drop stores to unsupported lvalues (struct fields etc.).
        def store_noop(rt, item, value):
            return None

        return store_noop


_STATEMENT_COMPILERS = {
    ast.CompoundStmt: CompiledKernel._compile_compound,
    ast.DeclStmt: CompiledKernel._compile_decl,
    ast.ExprStmt: CompiledKernel._compile_expr_stmt,
    ast.IfStmt: CompiledKernel._compile_if,
    ast.ForStmt: CompiledKernel._compile_for,
    ast.WhileStmt: CompiledKernel._compile_while,
    ast.DoWhileStmt: CompiledKernel._compile_do_while,
    ast.SwitchStmt: CompiledKernel._compile_switch,
    ast.ReturnStmt: CompiledKernel._compile_return,
    ast.BreakStmt: CompiledKernel._compile_break,
    ast.ContinueStmt: CompiledKernel._compile_continue,
}

_EXPRESSION_COMPILERS = {
    ast.IntLiteral: CompiledKernel._compile_int_literal,
    ast.FloatLiteral: CompiledKernel._compile_float_literal,
    ast.CharLiteral: CompiledKernel._compile_char_literal,
    ast.StringLiteral: CompiledKernel._compile_string_literal,
    ast.Identifier: CompiledKernel._compile_identifier,
    ast.BinaryOp: CompiledKernel._compile_binary,
    ast.UnaryOp: CompiledKernel._compile_unary,
    ast.PostfixOp: CompiledKernel._compile_postfix,
    ast.Assignment: CompiledKernel._compile_assignment,
    ast.TernaryOp: CompiledKernel._compile_ternary,
    ast.Call: CompiledKernel._compile_call,
    ast.Index: CompiledKernel._compile_index,
    ast.Member: CompiledKernel._compile_member,
    ast.Cast: CompiledKernel._compile_cast,
    ast.VectorLiteral: CompiledKernel._compile_vector_literal,
    ast.SizeOf: CompiledKernel._compile_sizeof,
    ast.InitializerList: CompiledKernel._compile_initializer_list,
}


def _compile_coercion(declared):
    """Compile-time specialization of :func:`repro.execution.ops.coerce_declared`."""
    if isinstance(declared, VectorType):
        kind = declared.element.kind
        width = declared.width

        def coerce_vector(value):
            if isinstance(value, VectorValue):
                return value
            return VectorValue.broadcast(kind, width, value or 0)

        return coerce_vector

    if isinstance(declared, PointerType):
        return lambda value: value

    text = str(declared) if declared is not None else "int"
    if text in ("float", "double", "half"):

        def coerce_float(value):
            if isinstance(value, (Buffer, VectorValue)):
                return value
            return float(value or 0)

        return coerce_float

    if text in ("int", "uint", "long", "ulong", "short", "ushort", "char", "uchar",
                "size_t", "bool"):

        def coerce_int(value):
            if isinstance(value, (Buffer, VectorValue)):
                return value
            if isinstance(value, float):
                return int(value)
            return int(value or 0)

        return coerce_int

    return lambda value: value


def compile_kernel(
    unit: ast.TranslationUnit,
    kernel_name: str | None = None,
    max_steps_per_item: int = 50_000,
) -> CompiledKernel:
    """Compile *kernel_name* (or the first kernel) of *unit* to closures."""
    return CompiledKernel(unit, kernel_name, max_steps_per_item)
