"""Vectorized lockstep (SIMT) execution of OpenCL kernels.

The closure engine (:mod:`repro.execution.compiler`) executes one work-item
at a time; this module lowers a kernel to closures that advance **all**
work-items of an NDRange in lockstep, with every runtime scalar held as a
``(n_items,)`` NumPy lane array and boolean divergence masks selecting the
active lanes through ``if``/``for``/``while``/``switch``.  Loads and stores
become masked gathers/scatters against :class:`LockstepBuffer` views of the
memory pool.

The tier is a *bit-identical* stand-in for the scalar engines — equal
buffer contents and :class:`ExecutionStats` on every kernel it accepts,
asserted by the three-way differential test suite.  That guarantee is kept
structural through three mechanisms:

* **Static rejection** (:class:`NotVectorizable`): kernels using atomics,
  OpenCL vector types, ``vload``/``vstore``, address-of, or recursion
  compile to ``None`` and run on the closure engine.  These are precisely
  the constructs whose scheduling or values cannot be reproduced by a
  lockstep pass.
* **Dynamic bailout** (:class:`~repro.errors.LockstepBailout`): cross-lane
  memory hazards, int64 overflow, per-lane int/float type divergence and
  step-budget overruns abort the lockstep pass *before the memory pool is
  touched* (all work happens on ndarray copies); the router then re-executes
  on the closure engine.
* **Exact accounting**: step counts, branch evaluations, divergence sites,
  helper-call and memory-access counters are maintained per lane/mask in
  exactly the places the scalar engines bump them.

Kernels without barriers or ``__local`` memory run the entire NDRange as
one lane vector.  Kernels **with** them run in *group-sequential* mode:
work-groups execute one after another (exactly the scalar engines' group
order) with the group's work-items as the lane vector, and a statement-level
``barrier()`` becomes a hazard-epoch boundary — the scalar engines advance
every work-item of the group to the barrier before any proceeds, so
pre-barrier writes are committed state for post-barrier reads and the
per-cell writer/reader trackers reset.  Barriers must be convergent (reached
by every live lane of the group); divergent barrier masks bail out to the
closure engine, whose generator scheduler handles them.

Private (per-item) arrays execute as ``(n_items, size)`` matrices.  Their
access counters are deliberately *not* folded into the stats — the scalar
engines only collect statistics from pool buffers and group locals, and
item-environment buffers never reach either.
"""

from __future__ import annotations

import numpy as np

from repro.clc import ast_nodes as ast
from repro.clc.builtins import SYNC_FUNCTIONS, WORK_ITEM_FUNCTIONS
from repro.clc.types import AddressSpace, PointerType, VectorType
from repro.errors import ExecutionError, LockstepBailout
from repro.execution.builtins_impl import evaluate_builtin_lockstep
from repro.execution.interpreter import ExecutionResult, ExecutionStats
from repro.execution.memory import Buffer, LockstepBuffer, MemoryPool
from repro.execution.ndrange import NDRange
from repro.execution.ops import CONSTANTS, collect_memory_stats, element_kind_of, eval_sizeof
from repro.execution.values import VectorValue
from repro.execution.vec_ops import (
    FLOAT_KIND,
    INT_KIND,
    binary,
    convert,
    invert,
    logical_not,
    mask_and,
    mask_andnot,
    mask_any,
    mask_count,
    mask_minus,
    mask_or,
    merge,
    negate,
    select,
    to_array,
    to_float_data,
    to_int_data,
    truthy,
)

_MISSING = object()

_FLOAT_TYPE_KINDS = ("float", "double", "half")
_INT_TYPE_KINDS = ("int", "uint", "long", "ulong", "short", "ushort", "char",
                   "uchar", "size_t", "bool")


class NotVectorizable(Exception):
    """The kernel uses a construct outside the lockstep-executable subset."""


class VectorizerStats:
    """Process-wide counters for engine-selection observability."""

    def __init__(self):
        self.kernels_vectorized = 0
        self.kernels_rejected = 0
        self.kernels_specialized = 0
        self.executions = 0
        self.bailouts = 0
        self.last_rejection: str = ""
        self.last_bailout: str = ""

    def reset(self) -> None:
        self.__init__()


VECTORIZER_STATS = VectorizerStats()


# ---------------------------------------------------------------------------
# Runtime containers.
# ---------------------------------------------------------------------------


class _PrivateLanes:
    """A per-work-item private array, one row per lane.

    Mirrors the clamping of :class:`Buffer` but keeps no access statistics:
    the scalar engines never fold item-environment buffers into
    ``ExecutionStats`` either.
    """

    __slots__ = ("size", "is_float", "data")

    def __init__(self, n: int, size: int, element_kind: str):
        self.size = max(size, 1)
        self.is_float = element_kind in _FLOAT_TYPE_KINDS
        dtype = np.float64 if self.is_float else np.int64
        self.data = np.zeros((n, self.size), dtype=dtype)

    def reset_rows(self, mask) -> None:
        if mask is None:
            self.data[:] = 0
        else:
            self.data[mask] = 0

    def _cells(self, index_data, mask, lane_ids):
        rows = lane_ids if mask is None else lane_ids[mask]
        if np.ndim(index_data) == 0:
            cols = np.full(rows.size, int(index_data), dtype=np.int64)
        else:
            cols = index_data if mask is None else index_data[mask]
        return rows, np.clip(cols, 0, self.size - 1)

    def load(self, index_data, mask, n: int, lane_ids):
        kind = FLOAT_KIND if self.is_float else INT_KIND
        rows, cols = self._cells(index_data, mask, lane_ids)
        if mask is None:
            return (kind, self.data[rows, cols])
        out = np.zeros(n, dtype=self.data.dtype)
        out[mask] = self.data[rows, cols]
        return (kind, out)

    def store(self, index_data, value_data, mask, n: int, lane_ids) -> None:
        rows, cols = self._cells(index_data, mask, lane_ids)
        try:
            if mask is None:
                self.data[rows, cols] = value_data
            else:
                self.data[rows, cols] = (
                    value_data[mask] if np.ndim(value_data) else value_data
                )
        except OverflowError as error:
            # Uniform Python ints beyond int64 need arbitrary precision.
            raise LockstepBailout("stored value exceeds int64") from error


_POINTERISH = (LockstepBuffer, _PrivateLanes)


class _PartialBinding:
    """A variable bound on only some lanes (declared in a divergent branch).

    Lanes outside ``bound`` behave like the scalar engines' *unbound*
    lookup (builtin-constant fallback); the conflict between bound and
    fallback kinds is resolved lazily at the first genuinely mixed read,
    where it bails out if irreconcilable.
    """

    __slots__ = ("value", "bound")

    def __init__(self, value, bound):
        self.value = value  # (kind, data) lane value
        self.bound = bound  # bool ndarray


class _Holder:
    """Accumulates lanes leaving a loop/switch via break or continue."""

    __slots__ = ("m",)

    def __init__(self):
        self.m = False

    def add(self, mask) -> None:
        self.m = mask_or(self.m, mask)

    def take(self):
        taken = self.m
        self.m = False
        return taken


class _ReturnFrame:
    """Collects per-lane return masks and values for one function body."""

    __slots__ = ("mask", "none_mask", "value", "n")

    def __init__(self, n: int):
        self.mask = False
        self.none_mask = False
        self.value = None
        self.n = n

    def add(self, mask, value) -> None:
        self.mask = mask_or(self.mask, mask)
        if value is None:
            self.none_mask = mask_or(self.none_mask, mask)
            return
        if self.value is None:
            self.value = value
            return
        if isinstance(value, _POINTERISH) or isinstance(self.value, _POINTERISH):
            if value is not self.value:
                raise LockstepBailout("divergent pointer return values")
            return
        self.value = merge(mask, value, self.value, self.n)

    def resolve(self, call_mask, result_used: bool):
        if not result_used:
            return (INT_KIND, 0)
        if self.mask is False or self.none_mask is not False:
            raise LockstepBailout("helper return value is None on some lanes")
        if mask_any(mask_minus(call_mask, self.mask)):
            raise LockstepBailout("helper fell off the end on some lanes")
        return self.value


class _Ctx:
    """Per-execution lockstep state shared by all compiled closures."""

    __slots__ = (
        "n", "lane_ids", "steps", "steps_flat", "extra_steps", "extra_ops",
        "max_steps", "stats", "env", "globals_env", "gids", "lids", "grpids",
        "group_of", "groups_with_lanes", "n_groups", "global_size",
        "local_size", "num_groups", "work_dim", "branch_sites",
        "return_stack", "break_stack", "cont_stack", "finished",
        "buffer_views", "group_locals",
    )

    def __init__(self, n: int, max_steps: int, stats: ExecutionStats):
        self.n = n
        self.lane_ids = np.arange(n, dtype=np.int64)
        self.steps = None  # lazily allocated per-lane step counters
        self.steps_flat = 0  # bumps applied to every lane (full-mask path)
        self.extra_steps = 0  # global-initializer steps (not on any lane's budget)
        self.extra_ops = 0  # statement-barrier bookkeeping ops (mirror rt.extra_ops)
        self.max_steps = max_steps
        self.stats = stats
        self.env: dict = {}
        self.globals_env: dict = {}
        self.gids: list = []
        self.lids: list = []
        self.grpids: list = []
        self.group_of = None
        self.groups_with_lanes = None
        self.n_groups = 0
        self.global_size = ()
        self.local_size = ()
        self.num_groups = ()
        self.work_dim = 1
        self.branch_sites: dict = {}
        self.return_stack: list = []
        self.break_stack: list = []
        self.cont_stack: list = []
        #: Lanes that finished outside the return frame (top-level break).
        self.finished = False
        #: Every live LockstepBuffer view — barrier epoch resets walk this.
        self.buffer_views: list = []
        #: name -> (Buffer, LockstepBuffer) for __local declarations of the
        #: current group (mirrors the scalar engines' per-group group_locals).
        self.group_locals: dict = {}

    # ------------------------------------------------------------------

    def bump(self, mask) -> None:
        if mask is None:
            self.steps_flat += 1
        else:
            if self.steps is None:
                self.steps = np.zeros(self.n, dtype=np.int64)
            self.steps += mask

    def steps_upper_bound(self) -> int:
        bound = self.steps_flat
        if self.steps is not None:
            bound += int(self.steps.max())
        return bound

    def check_budget(self) -> None:
        if self.steps_upper_bound() > self.max_steps:
            raise LockstepBailout("step budget exceeded (possible timeout)")

    def record_branch(self, site: int, mask, cond) -> None:
        entry = self.branch_sites.get(site)
        if entry is None:
            entry = (
                np.zeros(self.n_groups, dtype=bool),
                np.zeros(self.n_groups, dtype=bool),
            )
            self.branch_sites[site] = entry
        seen_true, seen_false = entry
        if isinstance(cond, (bool, np.bool_)):
            target = seen_true if cond else seen_false
            self._mark_groups(target, mask)
        else:
            true_mask = mask_and(mask, cond)
            false_mask = mask_andnot(mask, cond)
            if true_mask is not False:
                self._mark_groups(seen_true, true_mask)
            if false_mask is not False:
                self._mark_groups(seen_false, false_mask)

    def _mark_groups(self, target: np.ndarray, mask) -> None:
        if mask is None:
            target |= self.groups_with_lanes
        else:
            target |= np.bincount(
                self.group_of[mask], minlength=self.n_groups
            ).astype(bool)


def _first_lane_mask(mask, n: int) -> np.ndarray:
    """A mask selecting only the first active lane of *mask*."""
    first = np.zeros(n, dtype=bool)
    first[0 if mask is None else int(np.argmax(mask))] = True
    return first


def _truthy_of(value):
    """C truthiness of any lockstep runtime value (pointers are truthy)."""
    if isinstance(value, _POINTERISH):
        return True
    kind, data = value
    return truthy(kind, data)


def _binary_values(op: str, left, right, mask):
    """apply_binary over lockstep values, including the pointer rules."""
    if type(left) is tuple and type(right) is tuple:
        return binary(op, left, right, mask)
    if op in ("==", "!="):
        return (INT_KIND, 1 if (left is right) == (op == "==") else 0)
    return left if isinstance(left, _POINTERISH) else right


def _as_index_of(value, mask):
    """Mirror ops.as_index: pointers collapse to index 0."""
    if isinstance(value, _POINTERISH):
        return 0
    kind, data = value
    return to_int_data(kind, data, mask)


# ---------------------------------------------------------------------------
# Lane layout (interpreter iteration order), cached per NDRange.
# ---------------------------------------------------------------------------

_LANE_LAYOUT_CACHE: dict[NDRange, tuple] = {}


def _lane_layout(ndrange: NDRange):
    cached = _LANE_LAYOUT_CACHE.get(ndrange)
    if cached is not None:
        return cached
    gids_cols: list[list[int]] = [[] for _ in range(ndrange.work_dim)]
    lids_cols: list[list[int]] = [[] for _ in range(ndrange.work_dim)]
    grp_cols: list[list[int]] = [[] for _ in range(ndrange.work_dim)]
    group_of: list[int] = []
    local_ids = list(ndrange.local_ids())
    n_groups = 0
    for group_index, group_id in enumerate(ndrange.group_ids()):
        n_groups += 1
        for local_id in local_ids:
            global_id = ndrange.global_id(group_id, local_id)
            if not ndrange.in_range(global_id):
                continue
            for dim in range(ndrange.work_dim):
                gids_cols[dim].append(global_id[dim])
                lids_cols[dim].append(local_id[dim])
                grp_cols[dim].append(group_id[dim])
            group_of.append(group_index)
    layout = (
        [np.array(col, dtype=np.int64) for col in gids_cols],
        [np.array(col, dtype=np.int64) for col in lids_cols],
        [np.array(col, dtype=np.int64) for col in grp_cols],
        np.array(group_of, dtype=np.int64),
        n_groups,
    )
    if len(_LANE_LAYOUT_CACHE) > 128:
        _LANE_LAYOUT_CACHE.clear()
    _LANE_LAYOUT_CACHE[ndrange] = layout
    return layout


# ---------------------------------------------------------------------------
# The compiler.
# ---------------------------------------------------------------------------


class VectorizedKernel:
    """One kernel lowered to lockstep NumPy closures.

    Construction raises :class:`NotVectorizable` when the kernel falls
    outside the lockstep subset; use :func:`try_vectorize` for the
    ``None``-on-rejection convenience wrapper.
    """

    def __init__(
        self,
        unit: ast.TranslationUnit,
        kernel_name: str | None = None,
        max_steps_per_item: int = 50_000,
        specialization=None,
    ):
        kernels = unit.kernels
        if not kernels:
            raise ExecutionError("translation unit contains no kernels")
        #: Analyzer-guided fast-path gates (``repro.analysis.specialize.
        #: SpecializationFacts``) — ``None`` compiles the generic tier.
        self._spec = specialization
        self._uniform = bool(specialization is not None and specialization.uniform_control)
        self._kernel = kernels[0] if kernel_name is None else unit.kernel(kernel_name)
        self._functions = {f.name: f for f in unit.functions if f.body is not None}
        self._max_steps = max_steps_per_item
        self._site_count = 0
        self._helper_impls: dict[str, tuple[tuple[str, ...], object]] = {}
        self._helpers_in_progress: set[str] = set()
        #: Static nesting depth of break/continue targets at the point being
        #: compiled, within the current function body.  A break/continue
        #: with no target in its own function unwinds *through the call* in
        #: the scalar engines — unrepresentable in lockstep, so those
        #: compile to bailouts (see _compile_break/_compile_continue).
        self._break_depth = 0
        self._continue_depth = 0
        #: Set after a dynamic bailout: the hazards that trigger one are a
        #: property of the kernel's access pattern far more than of the
        #: payload, so later executions skip straight to the closure engine
        #: instead of re-running the doomed lockstep pass.
        self._disabled = False
        #: Kernels with barriers or __local memory execute group-by-group
        #: (set during compilation when either construct is seen).
        self._needs_groups = False

        #: (name, is_pointer) per kernel parameter, in order.
        self._param_plan = []
        for parameter in self._kernel.parameters:
            declared = parameter.declared_type
            if isinstance(declared, PointerType):
                if isinstance(declared.pointee, VectorType):
                    raise NotVectorizable("vector-element pointer parameter")
                if declared.address_space is AddressSpace.LOCAL:
                    self._needs_groups = True
                self._param_plan.append((parameter.name, True))
            else:
                if isinstance(declared, VectorType):
                    raise NotVectorizable("vector-typed scalar parameter")
                self._param_plan.append((parameter.name, False))

        #: (name, initializer_fn | None) per global declaration, in order.
        self._global_inits = []
        for declaration in unit.globals:
            declarator = declaration.declarator
            if declarator is None:
                continue
            init_fn = None
            if declarator.initializer is not None:
                init_fn = self._compile_expression(declarator.initializer)
            self._global_inits.append((declarator.name, init_fn))

        self._body_fn = self._compile_statement(self._kernel.body)
        if specialization is not None and self._needs_groups:
            # The specialized premises (flat lane vector, no barrier epochs)
            # do not hold in group-sequential mode; the analyzer never marks
            # such kernels eligible, so this is a defensive consistency check.
            raise NotVectorizable("specialized tier does not run group-sequential kernels")

    @property
    def kernel(self) -> ast.FunctionDecl:
        return self._kernel

    @property
    def max_steps_per_item(self) -> int:
        return self._max_steps

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def execute(
        self,
        pool: MemoryPool,
        scalar_args: dict[str, object],
        ndrange: NDRange,
        arena=None,
    ) -> ExecutionResult:
        """Run the kernel in lockstep; same contract as the other engines.

        Raises :class:`~repro.errors.LockstepBailout` — with the memory pool
        untouched — whenever completing the pass could diverge from the
        scalar engines; the router falls back to the closure engine (or, for
        a specialized instance, to the generic lockstep tier first).

        *arena* is an optional :class:`~repro.execution.memory.LaneArena`
        recycling the per-execution NumPy scratch arrays.
        """
        if self._disabled:
            raise LockstepBailout("disabled after a prior bailout")
        VECTORIZER_STATS.executions += 1
        try:
            with np.errstate(all="ignore"):
                return self._execute(pool, scalar_args, ndrange, arena)
        except LockstepBailout as bailout:
            self._disabled = True
            VECTORIZER_STATS.bailouts += 1
            VECTORIZER_STATS.last_bailout = str(bailout)
            raise

    def _execute(self, pool, scalar_args, ndrange, arena=None) -> ExecutionResult:
        gids, lids, grpids, group_of, n_groups = _lane_layout(ndrange)
        n = int(group_of.size)

        stats = ExecutionStats()
        stats.work_groups = n_groups
        stats.work_items = n

        globals_env, extra_steps = self._init_globals(stats)

        spec = self._spec
        lockstep_buffers: dict[str, LockstepBuffer] = {}
        for name, buffer in pool.buffers.items():
            if buffer.address_space == "local" and not self._needs_groups:
                raise LockstepBailout("unexpected __local buffer in lockstep pool")
            if spec is not None:
                lockstep_buffers[name] = LockstepBuffer(
                    buffer,
                    track_hazards=name not in spec.hazard_free,
                    affine=name in spec.affine_streams,
                    arena=arena,
                )
            else:
                lockstep_buffers[name] = LockstepBuffer(buffer, arena=arena)
        views = list(lockstep_buffers.values())

        try:
            return self._run_lanes(
                pool, scalar_args, ndrange, stats, globals_env, extra_steps,
                lockstep_buffers, views, gids, lids, grpids, group_of, n_groups, n,
            )
        finally:
            # Hand the per-execution scratch arrays back to the arena on
            # every exit — commit() has already copied data out on success,
            # and bailed-out views are garbage by contract.
            for view in views:
                view.recycle()

    def _run_lanes(
        self, pool, scalar_args, ndrange, stats, globals_env, extra_steps,
        lockstep_buffers, views, gids, lids, grpids, group_of, n_groups, n,
    ) -> ExecutionResult:
        base_env: dict = dict(globals_env)
        for name, is_pointer in self._param_plan:
            if is_pointer:
                view = lockstep_buffers.get(name)
                if view is None:
                    raise ExecutionError(f"no buffer bound for pointer argument {name!r}")
                base_env[name] = view
            else:
                value = scalar_args[name] if name in scalar_args else 0
                if isinstance(value, VectorValue):
                    raise LockstepBailout("vector-valued scalar argument")
                if isinstance(value, float):
                    base_env[name] = (FLOAT_KIND, value)
                elif isinstance(value, int):
                    base_env[name] = (INT_KIND, int(value))
                else:
                    raise LockstepBailout(f"unsupported scalar argument type {type(value).__name__}")

        branch_sites: dict = {}
        total_steps = extra_steps
        last_group_locals: dict = {}
        flat_groups_with_lanes = None

        def prepare(ctx):
            ctx.global_size = ndrange.global_size
            ctx.local_size = ndrange.effective_local_size
            ctx.num_groups = ndrange.num_groups
            ctx.work_dim = ndrange.work_dim
            ctx.n_groups = n_groups
            ctx.branch_sites = branch_sites
            ctx.globals_env = globals_env
            ctx.env = dict(base_env)

        if not self._needs_groups:
            # One lockstep pass over the whole NDRange.
            ctx = _Ctx(n, self._max_steps, stats)
            prepare(ctx)
            ctx.gids, ctx.lids, ctx.grpids = gids, lids, grpids
            ctx.group_of = group_of
            flat_groups_with_lanes = np.bincount(group_of, minlength=n_groups).astype(bool)
            ctx.groups_with_lanes = flat_groups_with_lanes
            ctx.buffer_views = views
            ctx.return_stack.append(_ReturnFrame(n))
            if self._body_fn is not None:
                self._body_fn(ctx, None)
            ctx.check_budget()
            total_steps += ctx.steps_flat * n + ctx.extra_ops
            if ctx.steps is not None:
                total_steps += int(ctx.steps.sum())
        else:
            # Group-sequential mode: work-groups run one after another (the
            # scalar engines' order), so barrier epochs and __local reuse
            # across groups behave exactly like the generator scheduler.
            boundaries = np.searchsorted(group_of, np.arange(n_groups + 1))
            group_index_row = np.arange(n_groups)
            for group in range(n_groups):
                begin, end = int(boundaries[group]), int(boundaries[group + 1])
                count = end - begin
                if count == 0:
                    continue
                ctx = _Ctx(count, self._max_steps, stats)
                prepare(ctx)
                ctx.gids = [column[begin:end] for column in gids]
                ctx.lids = [column[begin:end] for column in lids]
                ctx.grpids = [column[begin:end] for column in grpids]
                ctx.group_of = group_of[begin:end]
                ctx.groups_with_lanes = group_index_row == group
                # Prior groups' writes are committed state for this group.
                for view in views:
                    view.writer = None
                    view.reader_max = None
                ctx.buffer_views = list(views)
                ctx.return_stack.append(_ReturnFrame(count))
                if self._body_fn is not None:
                    self._body_fn(ctx, None)
                ctx.check_budget()
                total_steps += ctx.steps_flat * count + ctx.extra_ops
                if ctx.steps is not None:
                    total_steps += int(ctx.steps.sum())
                last_group_locals = ctx.group_locals

        # Success: commit ndarray views and counters back into the pool
        # (every pool buffer has a view, so commit() replaces all stats).
        for view in views:
            view.commit()
        group_locals: dict = {}
        for name, (buffer, view) in last_group_locals.items():
            view.commit()
            group_locals[name] = buffer

        stats.dynamic_operations = total_steps
        collect_memory_stats(stats, pool, group_locals)
        if self._uniform:
            # Mask-elided branch sites carry scalar [saw_true, saw_false]
            # flags; each marked flag stands for the full groups-with-lanes
            # pattern the generic tier would have OR'd in (masks are always
            # None under proven-uniform control), so the sums are identical.
            live_groups = int(flat_groups_with_lanes.sum())
            stats.branch_sites = sum(
                live_groups for saw_true, saw_false in branch_sites.values()
                if saw_true or saw_false
            )
            stats.divergent_branch_sites = sum(
                live_groups for saw_true, saw_false in branch_sites.values()
                if saw_true and saw_false
            )
        else:
            stats.branch_sites = sum(
                int((seen_true | seen_false).sum())
                for seen_true, seen_false in branch_sites.values()
            )
            stats.divergent_branch_sites = sum(
                int((seen_true & seen_false).sum())
                for seen_true, seen_false in branch_sites.values()
            )
        return ExecutionResult(kernel_name=self._kernel.name, pool=pool, stats=stats)

    def _init_globals(self, stats: ExecutionStats) -> tuple[dict, int]:
        """Globals re-initialise per execution, like the scalar engines.

        Each initializer is evaluated once (not per lane) in a one-lane
        sub-context whose steps feed ``dynamic_operations`` but no lane's
        budget — mirroring the interpreter's dummy work-item.
        """
        globals_env: dict = {}
        extra_steps = 0
        for name, init_fn in self._global_inits:
            value = (INT_KIND, 0)
            if init_fn is not None:
                mini = _Ctx(1, self._max_steps, stats)
                mini.gids = [np.zeros(1, dtype=np.int64)]
                mini.lids = [np.zeros(1, dtype=np.int64)]
                mini.grpids = [np.zeros(1, dtype=np.int64)]
                mini.group_of = np.zeros(1, dtype=np.int64)
                mini.n_groups = 1
                mini.groups_with_lanes = np.ones(1, dtype=bool)
                mini.global_size = (1,)
                mini.local_size = (1,)
                mini.num_groups = (1,)
                mini.env = dict(globals_env)
                mini.globals_env = globals_env
                mini.return_stack.append(_ReturnFrame(1))
                try:
                    value = init_fn(mini, None)
                except LockstepBailout:
                    raise
                except Exception:
                    value = (INT_KIND, 0)
                extra_steps += mini.steps_flat + (
                    int(mini.steps.sum()) if mini.steps is not None else 0
                )
            if isinstance(value, _POINTERISH):
                raise LockstepBailout("pointer-valued global initializer")
            kind, data = value
            if isinstance(data, np.ndarray):
                data = data[0].item()
            globals_env[name] = (kind, data)
        return globals_env, extra_steps

    # ------------------------------------------------------------------
    # Statement compilation: each compiles to ``fn(ctx, mask) -> mask`` that
    # returns the lanes still falling through (break/continue/return lanes
    # are recorded in the enclosing frames).  ``None`` for empty statements.
    # Callers never invoke a statement with an empty mask.
    # ------------------------------------------------------------------

    def _compile_statement(self, statement, in_helper: bool = False):
        if statement is None or isinstance(statement, ast.EmptyStmt):
            return None
        handler = _STATEMENT_COMPILERS.get(type(statement))
        if handler is None:
            raise NotVectorizable(f"statement {type(statement).__name__}")
        return handler(self, statement, in_helper)

    def _compile_compound(self, statement: ast.CompoundStmt, in_helper: bool):
        children = [self._compile_statement(child, in_helper) for child in statement.statements]
        children = [fn for fn in children if fn is not None]

        def run(ctx, mask):
            ctx.bump(mask)
            for fn in children:
                mask = fn(ctx, mask)
                if not mask_any(mask):
                    return False
            return mask

        return run

    def _compile_decl(self, statement: ast.DeclStmt, in_helper: bool):
        actions = [self._compile_declarator(d) for d in statement.declarators]

        def run(ctx, mask):
            ctx.bump(mask)
            for action in actions:
                action(ctx, mask)
            return mask

        return run

    def _compile_declarator(self, declarator: ast.Declarator):
        name = declarator.name
        declared = declarator.declared_type
        if declarator.address_space is AddressSpace.LOCAL or (
            isinstance(declared, PointerType)
            and declared.address_space is AddressSpace.LOCAL
            and declarator.array_size is not None
        ):
            return self._compile_local_declarator(declarator)
        if isinstance(declared, VectorType):
            raise NotVectorizable("vector-typed declaration")

        if declarator.array_size is not None:
            kind, width = element_kind_of(declarator)
            if width > 1:
                raise NotVectorizable("vector-element private array")
            size_fn = self._compile_expression(declarator.array_size)

            def array_action(ctx, mask):
                size_value = size_fn(ctx, mask)
                size_data = _as_index_of(size_value, mask) if not isinstance(
                    size_value, _POINTERISH
                ) else 0
                if isinstance(size_data, np.ndarray):
                    active = size_data if mask is None else size_data[mask]
                    if active.size and (active != active[0]).any():
                        raise LockstepBailout("lane-divergent private array size")
                    size = int(active[0]) if active.size else 0
                else:
                    size = int(size_data)
                existing = ctx.env.get(name)
                if mask is None:
                    ctx.env[name] = _PrivateLanes(ctx.n, size, kind)
                elif (
                    isinstance(existing, _PrivateLanes)
                    and existing.size == max(size, 1)
                ):
                    existing.reset_rows(mask)
                else:
                    raise LockstepBailout("divergent private-array declaration")

            return array_action

        init_fn = (
            self._compile_expression(declarator.initializer)
            if declarator.initializer is not None
            else None
        )
        coerce = _compile_decl_coercion(declared)

        def scalar_action(ctx, mask):
            value = init_fn(ctx, mask) if init_fn is not None else (INT_KIND, 0)
            value = coerce(value, mask)
            _declare_into_env(ctx, name, value, mask)

        return scalar_action

    def _compile_local_declarator(self, declarator: ast.Declarator):
        """A ``__local`` declaration: one group-shared buffer per group.

        Mirrors the scalar engines' ``group_locals``: the buffer is created
        by the *first* work-item to execute the declaration in each group
        (only that lane pays the size-expression steps), and every item
        binds the shared buffer into its environment.
        """
        self._needs_groups = True
        kind, width = element_kind_of(declarator)
        if width > 1:
            raise NotVectorizable("vector-element __local array")
        name = declarator.name
        size_fn = (
            self._compile_expression(declarator.array_size)
            if declarator.array_size is not None
            else None
        )

        def local_action(ctx, mask):
            entry = ctx.group_locals.get(name)
            if entry is None:
                size = 64
                if size_fn is not None:
                    first = _first_lane_mask(mask, ctx.n)
                    value = size_fn(ctx, first)
                    if isinstance(value, _POINTERISH):
                        raise LockstepBailout("pointer-sized __local array")
                    data = value[1]
                    if isinstance(data, np.ndarray):
                        data = data[int(np.argmax(first))].item()
                    size = int(data or 64)
                buffer = Buffer(name, max(size, 1), kind, width, address_space="local")
                view = LockstepBuffer(buffer)
                ctx.group_locals[name] = (buffer, view)
                ctx.buffer_views.append(view)
            else:
                view = entry[1]
            existing = ctx.env.get(name)
            if existing is view:
                return
            if mask is None or existing is None:
                # Unbound lanes resolve through group_locals in the scalar
                # engines, so binding the shared view for every lane is exact.
                ctx.env[name] = view
            else:
                raise LockstepBailout("divergent __local rebinding")

        return local_action

    def _compile_expr_stmt(self, statement: ast.ExprStmt, in_helper: bool):
        expression = statement.expression
        if expression is None:

            def run_empty(ctx, mask):
                ctx.bump(mask)
                return mask

            return run_empty

        if isinstance(expression, ast.Call) and expression.callee in SYNC_FUNCTIONS:
            if in_helper:
                # The scalar engines drain helper generators, so a barrier in
                # a helper degrades to two step bumps with no synchronisation.
                def run_helper_barrier(ctx, mask):
                    ctx.bump(mask)
                    ctx.extra_ops += mask_count(mask, ctx.n)
                    return mask

                return run_helper_barrier

            self._needs_groups = True

            def run_barrier(ctx, mask):
                ctx.bump(mask)
                ctx.extra_ops += mask_count(mask, ctx.n)
                # Every live lane of the group must reach this barrier: the
                # generator scheduler can pair lanes waiting at *different*
                # barriers, which one lockstep pass cannot reproduce.
                live = mask_minus(None, mask_or(ctx.return_stack[0].mask, ctx.finished))
                if mask_minus(live, mask) is not False:
                    raise LockstepBailout("divergent work-group barrier")
                ctx.stats.barriers_hit += 1
                # Pre-barrier writes are committed: reset the hazard epochs.
                for view in ctx.buffer_views:
                    view.writer = None
                    view.reader_max = None
                return mask

            return run_barrier

        expr_fn = self._compile_expression(expression, result_used=False)

        def run(ctx, mask):
            ctx.bump(mask)
            expr_fn(ctx, mask)
            return mask

        return run

    def _compile_if(self, statement: ast.IfStmt, in_helper: bool):
        condition_fn = self._compile_expression(statement.condition)
        then_fn = self._compile_statement(statement.then_branch, in_helper)
        has_else = statement.else_branch is not None
        else_fn = self._compile_statement(statement.else_branch, in_helper)
        site = self._site_count
        self._site_count += 1

        if self._uniform:
            # Mask elision: the divergence pass proved every condition
            # lane-uniform, so the outcome must be a scalar bool and the
            # branch runs whole-lane (mask stays None) with no mask algebra
            # and no per-group branch-site marking.  An array outcome
            # contradicts the proof — bail out and rerun the generic tier.
            def run_uniform(ctx, mask):
                ctx.bump(mask)
                outcome = _truthy_of(condition_fn(ctx, mask))
                ctx.stats.branch_evaluations += mask_count(mask, ctx.n)
                if not isinstance(outcome, (bool, np.bool_)):
                    raise LockstepBailout("uniform-control misprediction")
                flags = ctx.branch_sites.get(site)
                if flags is None:
                    flags = [False, False]
                    ctx.branch_sites[site] = flags
                if outcome:
                    flags[0] = True
                    return then_fn(ctx, mask) if then_fn is not None else mask
                flags[1] = True
                if has_else:
                    return else_fn(ctx, mask) if else_fn is not None else mask
                return mask

            return run_uniform

        def run(ctx, mask):
            ctx.bump(mask)
            outcome = _truthy_of(condition_fn(ctx, mask))
            ctx.stats.branch_evaluations += mask_count(mask, ctx.n)
            ctx.record_branch(site, mask, outcome)
            then_mask = mask_and(mask, outcome)
            else_mask = mask_andnot(mask, outcome)
            survivors = False
            if mask_any(then_mask):
                survivors = then_fn(ctx, then_mask) if then_fn is not None else then_mask
            if has_else:
                if mask_any(else_mask):
                    else_out = else_fn(ctx, else_mask) if else_fn is not None else else_mask
                    survivors = mask_or(survivors, else_out)
            else:
                survivors = mask_or(survivors, else_mask)
            return survivors

        return run

    def _compile_for(self, statement: ast.ForStmt, in_helper: bool):
        init_fn = self._compile_statement(statement.init, in_helper)
        condition_fn = (
            self._compile_expression(statement.condition)
            if statement.condition is not None
            else None
        )
        increment_fn = (
            self._compile_expression(statement.increment, result_used=False)
            if statement.increment is not None
            else None
        )
        self._break_depth += 1
        self._continue_depth += 1
        body_fn = self._compile_statement(statement.body, in_helper)
        self._break_depth -= 1
        self._continue_depth -= 1
        uniform = self._uniform

        def run(ctx, mask):
            ctx.bump(mask)
            live = init_fn(ctx, mask) if init_fn is not None else mask
            break_holder = _Holder()
            continue_holder = _Holder()
            ctx.break_stack.append(break_holder)
            ctx.cont_stack.append(continue_holder)
            try:
                exited = False
                while mask_any(live):
                    ctx.check_budget()
                    if condition_fn is not None:
                        outcome = _truthy_of(condition_fn(ctx, live))
                        ctx.stats.branch_evaluations += mask_count(live, ctx.n)
                        if uniform and not isinstance(outcome, (bool, np.bool_)):
                            raise LockstepBailout("uniform-control misprediction")
                        exited = mask_or(exited, mask_andnot(live, outcome))
                        live = mask_and(live, outcome)
                        if not mask_any(live):
                            break
                    if body_fn is not None:
                        live = body_fn(ctx, live)
                    live = mask_or(live, continue_holder.take())
                    if increment_fn is not None and mask_any(live):
                        increment_fn(ctx, live)
                return mask_or(exited, break_holder.take())
            finally:
                ctx.break_stack.pop()
                ctx.cont_stack.pop()

        return run

    def _compile_while(self, statement: ast.WhileStmt, in_helper: bool):
        condition_fn = self._compile_expression(statement.condition)
        self._break_depth += 1
        self._continue_depth += 1
        body_fn = self._compile_statement(statement.body, in_helper)
        self._break_depth -= 1
        self._continue_depth -= 1
        uniform = self._uniform

        def run(ctx, mask):
            ctx.bump(mask)
            break_holder = _Holder()
            continue_holder = _Holder()
            ctx.break_stack.append(break_holder)
            ctx.cont_stack.append(continue_holder)
            try:
                live = mask
                exited = False
                while mask_any(live):
                    ctx.check_budget()
                    outcome = _truthy_of(condition_fn(ctx, live))
                    ctx.stats.branch_evaluations += mask_count(live, ctx.n)
                    if uniform and not isinstance(outcome, (bool, np.bool_)):
                        raise LockstepBailout("uniform-control misprediction")
                    exited = mask_or(exited, mask_andnot(live, outcome))
                    live = mask_and(live, outcome)
                    if not mask_any(live):
                        break
                    if body_fn is not None:
                        live = body_fn(ctx, live)
                    live = mask_or(live, continue_holder.take())
                return mask_or(exited, break_holder.take())
            finally:
                ctx.break_stack.pop()
                ctx.cont_stack.pop()

        return run

    def _compile_do_while(self, statement: ast.DoWhileStmt, in_helper: bool):
        condition_fn = self._compile_expression(statement.condition)
        self._break_depth += 1
        self._continue_depth += 1
        body_fn = self._compile_statement(statement.body, in_helper)
        self._break_depth -= 1
        self._continue_depth -= 1
        uniform = self._uniform

        def run(ctx, mask):
            ctx.bump(mask)
            break_holder = _Holder()
            continue_holder = _Holder()
            ctx.break_stack.append(break_holder)
            ctx.cont_stack.append(continue_holder)
            try:
                live = mask
                exited = False
                while mask_any(live):
                    ctx.check_budget()
                    if body_fn is not None:
                        live = body_fn(ctx, live)
                    live = mask_or(live, continue_holder.take())
                    if not mask_any(live):
                        break
                    outcome = _truthy_of(condition_fn(ctx, live))
                    ctx.stats.branch_evaluations += mask_count(live, ctx.n)
                    if uniform and not isinstance(outcome, (bool, np.bool_)):
                        raise LockstepBailout("uniform-control misprediction")
                    exited = mask_or(exited, mask_andnot(live, outcome))
                    live = mask_and(live, outcome)
                return mask_or(exited, break_holder.take())
            finally:
                ctx.break_stack.pop()
                ctx.cont_stack.pop()

        return run

    def _compile_switch(self, statement: ast.SwitchStmt, in_helper: bool):
        condition_fn = self._compile_expression(statement.condition)
        cases = []
        self._break_depth += 1
        for case in statement.cases:
            value_fn = self._compile_expression(case.value) if case.value is not None else None
            children = [self._compile_statement(child, in_helper) for child in case.body]
            cases.append((value_fn, [fn for fn in children if fn is not None]))
        self._break_depth -= 1
        uniform = self._uniform

        def run(ctx, mask):
            ctx.bump(mask)
            value = condition_fn(ctx, mask)
            break_holder = _Holder()
            ctx.break_stack.append(break_holder)
            try:
                pending = mask  # lanes not yet matched
                flowing = False  # lanes executing case bodies (fallthrough)
                for value_fn, children in cases:
                    if value_fn is None:
                        matched = pending
                        pending = False
                    elif mask_any(pending):
                        case_value = value_fn(ctx, pending)
                        equal = _binary_values("==", value, case_value, pending)
                        outcome = _truthy_of(equal)
                        if uniform and not isinstance(outcome, (bool, np.bool_)):
                            raise LockstepBailout("uniform-control misprediction")
                        matched = mask_and(pending, outcome)
                        pending = mask_andnot(pending, outcome)
                    else:
                        matched = False
                    flowing = mask_or(flowing, matched)
                    for fn in children:
                        if not mask_any(flowing):
                            break
                        flowing = fn(ctx, flowing)
                survivors = mask_or(flowing, pending)
                return mask_or(survivors, break_holder.take())
            finally:
                ctx.break_stack.pop()

        return run

    def _compile_return(self, statement: ast.ReturnStmt, in_helper: bool):
        value_fn = (
            self._compile_expression(statement.value) if statement.value is not None else None
        )

        def run(ctx, mask):
            ctx.bump(mask)
            value = value_fn(ctx, mask) if value_fn is not None else None
            ctx.return_stack[-1].add(mask, value)
            return False

        return run

    def _compile_break(self, statement: ast.BreakStmt, in_helper: bool):
        if in_helper and self._break_depth == 0:
            # The scalar engines let the BreakSignal unwind *through the
            # call* into the caller's loop — mid-expression control flow one
            # lockstep pass cannot reproduce.
            def run_escaping(ctx, mask):
                ctx.bump(mask)
                raise LockstepBailout("break unwinding out of a helper call")

            return run_escaping

        def run(ctx, mask):
            ctx.bump(mask)
            if ctx.break_stack:
                ctx.break_stack[-1].add(mask)
            else:
                # No enclosing loop/switch: the scalar engines end the item.
                ctx.finished = mask_or(ctx.finished, mask)
            return False

        return run

    def _compile_continue(self, statement: ast.ContinueStmt, in_helper: bool):
        if in_helper and self._continue_depth == 0:
            def run_escaping(ctx, mask):
                ctx.bump(mask)
                raise LockstepBailout("continue unwinding out of a helper call")

            return run_escaping

        def run(ctx, mask):
            ctx.bump(mask)
            if ctx.cont_stack:
                ctx.cont_stack[-1].add(mask)
            else:
                ctx.finished = mask_or(ctx.finished, mask)
            return False

        return run

    # ------------------------------------------------------------------
    # Expression compilation: ``fn(ctx, mask) -> lane value``.
    # ------------------------------------------------------------------

    def _compile_expression(self, expression, result_used: bool = True):
        handler = _EXPRESSION_COMPILERS.get(type(expression))
        if handler is None:
            raise NotVectorizable(f"expression {type(expression).__name__}")
        if handler is VectorizedKernel._compile_call:
            return handler(self, expression, result_used)
        return handler(self, expression)

    def _compile_constant(self, kind, value):
        constant = (kind, value)

        def fn(ctx, mask):
            ctx.bump(mask)
            return constant

        return fn

    def _compile_int_literal(self, expression: ast.IntLiteral):
        return self._compile_constant(INT_KIND, expression.value)

    def _compile_float_literal(self, expression: ast.FloatLiteral):
        return self._compile_constant(FLOAT_KIND, expression.value)

    def _compile_char_literal(self, expression: ast.CharLiteral):
        text = expression.value.strip("'")
        return self._compile_constant(INT_KIND, ord(text[0]) if text else 0)

    def _compile_string_literal(self, expression: ast.StringLiteral):
        return self._compile_constant(INT_KIND, 0)

    def _compile_sizeof(self, expression: ast.SizeOf):
        return self._compile_constant(INT_KIND, eval_sizeof(expression.target_type_name))

    def _compile_identifier(self, expression: ast.Identifier):
        name = expression.name
        fallback_value = CONSTANTS.get(name, 0)
        fallback = (
            FLOAT_KIND if isinstance(fallback_value, float) else INT_KIND,
            fallback_value,
        )

        def fn(ctx, mask):
            ctx.bump(mask)
            value = ctx.env.get(name, _MISSING)
            if value is _MISSING:
                return fallback
            if isinstance(value, _PartialBinding):
                return _resolve_partial(ctx, value, fallback, mask)
            return value

        return fn

    def _compile_binary(self, expression: ast.BinaryOp):
        op = expression.op
        left_fn = self._compile_expression(expression.left)
        right_fn = self._compile_expression(expression.right)

        if op == "&&":

            def fn_and(ctx, mask):
                ctx.bump(mask)
                left_outcome = _truthy_of(left_fn(ctx, mask))
                if left_outcome is True:
                    right_outcome = _truthy_of(right_fn(ctx, mask))
                elif left_outcome is False:
                    return (INT_KIND, 0)
                else:
                    right_mask = mask_and(mask, left_outcome)
                    if not mask_any(right_mask):
                        return (INT_KIND, 0)
                    right_outcome = _truthy_of(right_fn(ctx, right_mask))
                return _combine_logical(left_outcome, right_outcome, "and")

            return fn_and

        if op == "||":

            def fn_or(ctx, mask):
                ctx.bump(mask)
                left_outcome = _truthy_of(left_fn(ctx, mask))
                if left_outcome is True:
                    return (INT_KIND, 1)
                if left_outcome is False:
                    right_outcome = _truthy_of(right_fn(ctx, mask))
                else:
                    right_mask = mask_andnot(mask, left_outcome)
                    if not mask_any(right_mask):
                        right_outcome = False
                    else:
                        right_outcome = _truthy_of(right_fn(ctx, right_mask))
                return _combine_logical(left_outcome, right_outcome, "or")

            return fn_or

        if op == ",":

            def fn_comma(ctx, mask):
                ctx.bump(mask)
                left_fn(ctx, mask)
                return right_fn(ctx, mask)

            return fn_comma

        def fn(ctx, mask):
            ctx.bump(mask)
            return _binary_values(op, left_fn(ctx, mask), right_fn(ctx, mask), mask)

        return fn

    def _compile_unary(self, expression: ast.UnaryOp):
        op = expression.op
        if op == "&":
            raise NotVectorizable("address-of operator")

        if op in ("++", "--"):
            operand_fn = self._compile_expression(expression.operand)
            store_fn = self._compile_store(expression.operand)
            arith = "+" if op == "++" else "-"

            def fn_incdec(ctx, mask):
                ctx.bump(mask)
                updated = _binary_values(arith, operand_fn(ctx, mask), (INT_KIND, 1), mask)
                store_fn(ctx, mask, updated)
                return updated

            return fn_incdec

        operand_fn = self._compile_expression(expression.operand)

        if op == "*":

            def fn_deref(ctx, mask):
                ctx.bump(mask)
                pointer = operand_fn(ctx, mask)
                if isinstance(pointer, _POINTERISH):
                    return pointer.load(0, mask, ctx.n, ctx.lane_ids)
                return pointer

            return fn_deref

        if op == "-":

            def fn_neg(ctx, mask):
                ctx.bump(mask)
                operand = operand_fn(ctx, mask)
                if isinstance(operand, _POINTERISH):
                    return operand
                return negate(operand, mask)

            return fn_neg

        if op == "+":

            def fn_pos(ctx, mask):
                ctx.bump(mask)
                return operand_fn(ctx, mask)

            return fn_pos

        if op == "!":

            def fn_not(ctx, mask):
                ctx.bump(mask)
                operand = operand_fn(ctx, mask)
                if isinstance(operand, _POINTERISH):
                    return (INT_KIND, 0)
                return logical_not(operand)

            return fn_not

        if op == "~":

            def fn_invert(ctx, mask):
                ctx.bump(mask)
                operand = operand_fn(ctx, mask)
                if isinstance(operand, _POINTERISH):
                    raise LockstepBailout("bitwise-not of a pointer")
                return invert(operand, mask)

            return fn_invert

        raise NotVectorizable(f"unary operator {op!r}")

    def _compile_postfix(self, expression: ast.PostfixOp):
        operand_fn = self._compile_expression(expression.operand)
        store_fn = self._compile_store(expression.operand)
        arith = "+" if expression.op == "++" else "-"

        def fn(ctx, mask):
            ctx.bump(mask)
            current = operand_fn(ctx, mask)
            store_fn(ctx, mask, _binary_values(arith, current, (INT_KIND, 1), mask))
            return current

        return fn

    def _compile_assignment(self, expression: ast.Assignment):
        value_fn = self._compile_expression(expression.value)
        store_fn = self._compile_store(expression.target)

        if expression.op == "=":

            def fn_assign(ctx, mask):
                ctx.bump(mask)
                value = value_fn(ctx, mask)
                store_fn(ctx, mask, value)
                return value

            return fn_assign

        target_fn = self._compile_expression(expression.target)
        operator = expression.op[:-1]

        def fn_compound(ctx, mask):
            ctx.bump(mask)
            value = value_fn(ctx, mask)
            value = _binary_values(operator, target_fn(ctx, mask), value, mask)
            store_fn(ctx, mask, value)
            return value

        return fn_compound

    def _compile_ternary(self, expression: ast.TernaryOp):
        condition_fn = self._compile_expression(expression.condition)
        true_fn = self._compile_expression(expression.if_true)
        false_fn = self._compile_expression(expression.if_false)

        def fn(ctx, mask):
            ctx.bump(mask)
            outcome = _truthy_of(condition_fn(ctx, mask))
            if outcome is True:
                return true_fn(ctx, mask)
            if outcome is False:
                return false_fn(ctx, mask)
            true_mask = mask_and(mask, outcome)
            false_mask = mask_andnot(mask, outcome)
            if not mask_any(true_mask):
                return false_fn(ctx, false_mask)
            if not mask_any(false_mask):
                return true_fn(ctx, true_mask)
            when_true = true_fn(ctx, true_mask)
            when_false = false_fn(ctx, false_mask)
            if isinstance(when_true, _POINTERISH) or isinstance(when_false, _POINTERISH):
                if when_true is when_false:
                    return when_true
                raise LockstepBailout("divergent pointer-valued ternary")
            return select(outcome, when_true, when_false, ctx.n)

        return fn

    def _compile_index(self, expression: ast.Index):
        base_fn = self._compile_expression(expression.base)
        index_fn = self._compile_expression(expression.index)

        def fn(ctx, mask):
            ctx.bump(mask)
            base = base_fn(ctx, mask)
            index = index_fn(ctx, mask)
            if isinstance(base, _POINTERISH):
                return base.load(_as_index_of(index, mask), mask, ctx.n, ctx.lane_ids)
            # Indexing a scalar value yields 0 in the scalar engines.
            return (INT_KIND, 0)

        return fn

    def _compile_cast(self, expression: ast.Cast):
        operand_fn = self._compile_expression(expression.operand)
        target = expression.target_type
        if isinstance(target, VectorType):
            raise NotVectorizable("vector cast")

        if target is not None and not isinstance(target, PointerType) and hasattr(target, "kind"):
            kind = target.kind

            def fn_scalar(ctx, mask):
                ctx.bump(mask)
                value = operand_fn(ctx, mask)
                if isinstance(value, _POINTERISH):
                    return value
                return convert(kind, value, mask)

            return fn_scalar

        def fn_passthrough(ctx, mask):
            ctx.bump(mask)
            return operand_fn(ctx, mask)

        return fn_passthrough

    # ------------------------------------------------------------------
    # Calls.
    # ------------------------------------------------------------------

    def _compile_call(self, expression: ast.Call, result_used: bool = True):
        name = expression.callee

        if name in WORK_ITEM_FUNCTIONS:
            return self._compile_work_item_query(name, expression)

        if name in SYNC_FUNCTIONS:
            # Expression-position sync calls: arguments evaluated, result 0.
            argument_fns = [self._compile_expression(a) for a in expression.arguments]

            def fn_sync(ctx, mask):
                ctx.bump(mask)
                for argument_fn in argument_fns:
                    argument_fn(ctx, mask)
                return (INT_KIND, 0)

            return fn_sync

        if name.startswith(("atomic_", "atom_")):
            return self._compile_atomic(name, expression, result_used)
        if name.startswith(("vload", "vstore")):
            raise NotVectorizable("vector load/store")

        argument_fns = [self._compile_expression(a) for a in expression.arguments]

        if name in self._functions:
            return self._compile_user_call(name, argument_fns, result_used)

        def fn_builtin(ctx, mask):
            ctx.bump(mask)
            arguments = []
            for argument_fn in argument_fns:
                value = argument_fn(ctx, mask)
                # Mirror builtins_impl._scalarize: a pointer argument
                # collapses to its first element (per lane for private arrays).
                if isinstance(value, _PrivateLanes):
                    value = (
                        FLOAT_KIND if value.is_float else INT_KIND,
                        value.data[:, 0].copy(),
                    )
                elif isinstance(value, LockstepBuffer):
                    scalar = value.first_element(mask, ctx.lane_ids)
                    value = (
                        FLOAT_KIND if isinstance(scalar, float) else INT_KIND,
                        scalar,
                    )
                arguments.append(value)
            try:
                return evaluate_builtin_lockstep(name, arguments, mask, ctx.n)
            except KeyError:
                return (INT_KIND, 0)

        return fn_builtin

    def _compile_work_item_query(self, name: str, expression: ast.Call):
        dimension_fn = (
            self._compile_expression(expression.arguments[0])
            if expression.arguments
            else None
        )
        id_attr = {"get_global_id": "gids", "get_local_id": "lids", "get_group_id": "grpids"}.get(name)
        size_attr = {
            "get_global_size": "global_size",
            "get_local_size": "local_size",
            "get_num_groups": "num_groups",
        }.get(name)
        if id_attr is None and size_attr is None and name not in (
            "get_work_dim", "get_global_offset"
        ):
            return self._compile_constant(INT_KIND, 0)

        def fn(ctx, mask):
            ctx.bump(mask)
            if dimension_fn is not None:
                dimension = _as_index_of(dimension_fn(ctx, mask), mask)
            else:
                dimension = 0
            if name == "get_work_dim":
                return (INT_KIND, ctx.work_dim)
            if name == "get_global_offset":
                return (INT_KIND, 0)
            work_dim = ctx.work_dim
            if isinstance(dimension, np.ndarray):
                dimension = np.clip(dimension, 0, work_dim - 1)
                if id_attr is not None:
                    stacked = np.stack(getattr(ctx, id_attr))
                    return (INT_KIND, stacked[dimension, ctx.lane_ids])
                sizes = np.asarray(getattr(ctx, size_attr), dtype=np.int64)
                return (INT_KIND, sizes[dimension])
            dimension = 0 if dimension < 0 else (work_dim - 1 if dimension >= work_dim else dimension)
            if id_attr is not None:
                return (INT_KIND, getattr(ctx, id_attr)[dimension])
            return (INT_KIND, getattr(ctx, size_attr)[dimension])

        return fn

    _ORDER_INDEPENDENT_ATOMICS = (
        "add", "sub", "inc", "dec", "min", "max", "and", "or", "xor", "xchg",
    )

    def _compile_atomic(self, name: str, expression: ast.Call, result_used: bool):
        """Result-discarded atomics whose lane-order application is exact.

        The scalar engines run the per-item read-modify-writes in ascending
        lane order; ``np.ufunc.at`` applies duplicate indices in exactly
        that order, so the final cell values match bit for bit.  Atomics
        whose *result* is consumed would need the per-lane intermediate
        values — those kernels stay on the closure engine.
        """
        if result_used:
            raise NotVectorizable("atomic operation with a used result")
        operation = name.replace("atomic_", "").replace("atom_", "")
        if operation not in self._ORDER_INDEPENDENT_ATOMICS:
            raise NotVectorizable(f"order-dependent atomic {operation!r}")
        if not expression.arguments:
            return self._compile_constant(INT_KIND, 0)

        first = expression.arguments[0]
        if isinstance(first, ast.UnaryOp) and first.op == "&":
            first = first.operand
        # Location resolution mirrors the scalar engines: only Index and
        # Identifier lvalues resolve (the Identifier peek is not a counted
        # evaluation), anything else degrades to a no-op returning 0.
        base_fn = index_fn = None
        identifier_name = None
        if isinstance(first, ast.Index):
            base_fn = self._compile_expression(first.base)
            index_fn = self._compile_expression(first.index)
        elif isinstance(first, ast.Identifier):
            identifier_name = first.name
        operand_fn = (
            self._compile_expression(expression.arguments[1])
            if len(expression.arguments) > 1
            else None
        )

        def fn(ctx, mask):
            ctx.bump(mask)
            target = None
            index = (INT_KIND, 0)
            if base_fn is not None:
                base = base_fn(ctx, mask)
                index = index_fn(ctx, mask)
                if isinstance(base, _POINTERISH):
                    target = base
            elif identifier_name is not None:
                value = ctx.env.get(identifier_name)
                if isinstance(value, _POINTERISH):
                    target = value
            operand = operand_fn(ctx, mask) if operand_fn is not None else (INT_KIND, 1)
            if target is None:
                return (INT_KIND, 0)
            if isinstance(target, _PrivateLanes):
                raise LockstepBailout("atomic on a private array")
            if isinstance(operand, _POINTERISH):
                raise LockstepBailout("pointer operand to an atomic")
            target.atomic_update(
                operation, _as_index_of(index, mask), operand, mask, ctx.n, ctx.lane_ids
            )
            return (INT_KIND, 0)

        return fn

    def _compile_user_call(self, name: str, argument_fns: list, result_used: bool):
        self._ensure_helper_compiled(name)
        impls = self._helper_impls

        def fn(ctx, mask):
            ctx.bump(mask)
            arguments = [argument_fn(ctx, mask) for argument_fn in argument_fns]
            ctx.stats.helper_calls += mask_count(mask, ctx.n)
            parameter_names, body_fn = impls[name]
            saved_env = ctx.env
            call_env = dict(ctx.globals_env)
            for parameter_name, argument in zip(parameter_names, arguments):
                call_env[parameter_name] = argument
            ctx.env = call_env
            frame = _ReturnFrame(ctx.n)
            ctx.return_stack.append(frame)
            try:
                if body_fn is not None:
                    body_fn(ctx, mask)
            finally:
                ctx.env = saved_env
                ctx.return_stack.pop()
            return frame.resolve(mask, result_used)

        return fn

    def _ensure_helper_compiled(self, name: str) -> None:
        if name in self._helper_impls:
            return
        if name in self._helpers_in_progress:
            raise NotVectorizable("recursive helper function")
        self._helpers_in_progress.add(name)
        saved_depths = (self._break_depth, self._continue_depth)
        self._break_depth = 0
        self._continue_depth = 0
        try:
            function = self._functions[name]
            parameter_names = tuple(p.name for p in function.parameters)
            body_fn = self._compile_statement(function.body, in_helper=True)
            self._helper_impls[name] = (parameter_names, body_fn)
        finally:
            self._break_depth, self._continue_depth = saved_depths
            self._helpers_in_progress.discard(name)

    # ------------------------------------------------------------------
    # L-value stores: ``fn(ctx, mask, value)``.
    # ------------------------------------------------------------------

    def _compile_store(self, target):
        if isinstance(target, ast.Identifier):
            name = target.name

            def store_identifier(ctx, mask, value):
                _store_into_env(ctx, name, value, mask)

            return store_identifier

        if isinstance(target, ast.Index):
            base_fn = self._compile_expression(target.base)
            index_fn = self._compile_expression(target.index)

            def store_index(ctx, mask, value):
                base = base_fn(ctx, mask)
                index = index_fn(ctx, mask)
                if isinstance(base, _POINTERISH):
                    _store_to_pointer(ctx, base, _as_index_of(index, mask), value, mask)
                # Stores through scalar bases are dropped, like the engines.

            return store_index

        if isinstance(target, ast.UnaryOp) and target.op == "*":
            pointer_fn = self._compile_expression(target.operand)

            def store_deref(ctx, mask, value):
                pointer = pointer_fn(ctx, mask)
                if isinstance(pointer, _POINTERISH):
                    _store_to_pointer(ctx, pointer, 0, value, mask)

            return store_deref

        if isinstance(target, ast.Cast):
            return self._compile_store(target.operand)

        if isinstance(target, ast.Member):
            raise NotVectorizable("vector member store")

        def store_noop(ctx, mask, value):
            return None

        return store_noop


# ---------------------------------------------------------------------------
# Environment plumbing (mirrors ops.store_to_identifier + unbound fallback).
# ---------------------------------------------------------------------------


def _resolve_partial(ctx, binding: _PartialBinding, fallback, mask):
    unbound = mask_andnot(mask, binding.bound)
    if not mask_any(unbound):
        return binding.value
    bound_active = mask_and(mask, binding.bound)
    if not mask_any(bound_active):
        return fallback
    kind, data = binding.value
    fallback_kind, fallback_data = fallback
    if kind != fallback_kind:
        raise LockstepBailout("partially-bound variable read with mixed kinds")
    return (
        kind,
        np.where(
            binding.bound,
            to_array(kind, data, ctx.n),
            to_array(fallback_kind, fallback_data, ctx.n),
        ),
    )


def _store_into_env(ctx, name: str, value, mask) -> None:
    """Masked assignment with the slot-flavour rules of store_to_identifier."""
    existing = ctx.env.get(name, _MISSING)
    if isinstance(value, _POINTERISH):
        if existing is value:
            return
        if mask is None:
            ctx.env[name] = value
            return
        raise LockstepBailout("per-lane pointer rebinding")
    if isinstance(existing, tuple):
        existing_kind = existing[0]
        value_kind = value[0]
        if existing_kind == FLOAT_KIND and value_kind == INT_KIND:
            value = (FLOAT_KIND, to_float_data(INT_KIND, value[1]))
        elif existing_kind == INT_KIND and value_kind == FLOAT_KIND:
            value = (INT_KIND, to_int_data(FLOAT_KIND, value[1], mask))
        ctx.env[name] = merge(mask, value, existing, ctx.n)
        return
    if existing is _MISSING:
        if mask is None:
            ctx.env[name] = value
        else:
            ctx.env[name] = _PartialBinding(value, np.array(mask))
        return
    if isinstance(existing, _PartialBinding):
        existing_kind = existing.value[0]
        if mask is None:
            ctx.env[name] = value
            return
        if value[0] != existing_kind:
            raise LockstepBailout("kind-changing store to partially-bound variable")
        merged = merge(mask, value, existing.value, ctx.n)
        bound = existing.bound | mask
        if bound.all():
            ctx.env[name] = merged
        else:
            ctx.env[name] = _PartialBinding(merged, bound)
        return
    # Existing is a pointer/array object: raw rebinding, full mask only.
    if mask is None:
        ctx.env[name] = value
    else:
        raise LockstepBailout("per-lane rebinding of a pointer slot")


def _declare_into_env(ctx, name: str, value, mask) -> None:
    """Masked declaration: replaces the slot kind (no flavour preservation)."""
    if mask is None:
        ctx.env[name] = value
        return
    if isinstance(value, _POINTERISH):
        if ctx.env.get(name) is value:
            return
        raise LockstepBailout("divergent pointer declaration")
    existing = ctx.env.get(name, _MISSING)
    if existing is _MISSING:
        ctx.env[name] = _PartialBinding(value, np.array(mask))
        return
    if isinstance(existing, tuple):
        if existing[0] != value[0]:
            raise LockstepBailout("kind-changing divergent declaration")
        ctx.env[name] = merge(mask, value, existing, ctx.n)
        return
    if isinstance(existing, _PartialBinding):
        if existing.value[0] != value[0]:
            raise LockstepBailout("kind-changing divergent declaration")
        merged = merge(mask, value, existing.value, ctx.n)
        bound = existing.bound | mask
        ctx.env[name] = (
            merged if bound.all() else _PartialBinding(merged, bound)
        )
        return
    raise LockstepBailout("divergent redeclaration of a pointer slot")


def _store_to_pointer(ctx, target, index_data, value, mask) -> None:
    """Coerce *value* to the target's element flavour and scatter."""
    if isinstance(value, _POINTERISH):
        # Buffer._coerce stores the first element of a pointer value; for a
        # private array that is each lane's own element 0.
        if isinstance(value, _PrivateLanes):
            value = (
                FLOAT_KIND if value.is_float else INT_KIND,
                value.data[:, 0].copy(),
            )
        else:
            scalar = value.first_element(mask, ctx.lane_ids)
            value = (FLOAT_KIND if isinstance(scalar, float) else INT_KIND, scalar)
    kind, data = value
    coerced = (
        to_float_data(kind, data) if target.is_float else to_int_data(kind, data, mask)
    )
    target.store(index_data, coerced, mask, ctx.n, ctx.lane_ids)


def _combine_logical(left_outcome, right_outcome, operation: str):
    """0/1 result of ``&&``/``||`` from (possibly array) truthiness values."""
    if operation == "and":
        if right_outcome is True:
            combined = left_outcome
        elif right_outcome is False:
            return (INT_KIND, 0)
        elif left_outcome is True:
            combined = right_outcome
        else:
            combined = left_outcome & right_outcome
    else:  # or
        if right_outcome is False:
            combined = left_outcome
        elif right_outcome is True:
            return (INT_KIND, 1)
        elif left_outcome is False:
            combined = right_outcome
        else:
            combined = left_outcome | right_outcome
    if isinstance(combined, bool):
        return (INT_KIND, 1 if combined else 0)
    return (INT_KIND, combined.astype(np.int64))


def _compile_decl_coercion(declared):
    """Compile-time specialization of ops.coerce_declared for lane values."""
    if isinstance(declared, PointerType):
        return lambda value, mask: value

    text = str(declared) if declared is not None else "int"
    if text in _FLOAT_TYPE_KINDS:

        def coerce_float(value, mask):
            if isinstance(value, _POINTERISH):
                return value
            kind, data = value
            return (FLOAT_KIND, to_float_data(kind, data))

        return coerce_float

    if text in _INT_TYPE_KINDS:

        def coerce_int(value, mask):
            if isinstance(value, _POINTERISH):
                return value
            kind, data = value
            if kind == INT_KIND:
                return value
            return (INT_KIND, to_int_data(kind, data, mask))

        return coerce_int

    return lambda value, mask: value


_STATEMENT_COMPILERS = {
    ast.CompoundStmt: VectorizedKernel._compile_compound,
    ast.DeclStmt: VectorizedKernel._compile_decl,
    ast.ExprStmt: VectorizedKernel._compile_expr_stmt,
    ast.IfStmt: VectorizedKernel._compile_if,
    ast.ForStmt: VectorizedKernel._compile_for,
    ast.WhileStmt: VectorizedKernel._compile_while,
    ast.DoWhileStmt: VectorizedKernel._compile_do_while,
    ast.SwitchStmt: VectorizedKernel._compile_switch,
    ast.ReturnStmt: VectorizedKernel._compile_return,
    ast.BreakStmt: VectorizedKernel._compile_break,
    ast.ContinueStmt: VectorizedKernel._compile_continue,
}

_EXPRESSION_COMPILERS = {
    ast.IntLiteral: VectorizedKernel._compile_int_literal,
    ast.FloatLiteral: VectorizedKernel._compile_float_literal,
    ast.CharLiteral: VectorizedKernel._compile_char_literal,
    ast.StringLiteral: VectorizedKernel._compile_string_literal,
    ast.Identifier: VectorizedKernel._compile_identifier,
    ast.BinaryOp: VectorizedKernel._compile_binary,
    ast.UnaryOp: VectorizedKernel._compile_unary,
    ast.PostfixOp: VectorizedKernel._compile_postfix,
    ast.Assignment: VectorizedKernel._compile_assignment,
    ast.TernaryOp: VectorizedKernel._compile_ternary,
    ast.Call: VectorizedKernel._compile_call,
    ast.Index: VectorizedKernel._compile_index,
    ast.Cast: VectorizedKernel._compile_cast,
    ast.SizeOf: VectorizedKernel._compile_sizeof,
}


def try_vectorize(
    unit: ast.TranslationUnit,
    kernel_name: str | None = None,
    max_steps_per_item: int = 50_000,
) -> VectorizedKernel | None:
    """Compile *unit*'s kernel for the lockstep tier, or ``None`` when the
    kernel is outside the vectorizable subset."""
    try:
        compiled = VectorizedKernel(unit, kernel_name, max_steps_per_item)
    except NotVectorizable as reason:
        VECTORIZER_STATS.kernels_rejected += 1
        VECTORIZER_STATS.last_rejection = str(reason)
        return None
    VECTORIZER_STATS.kernels_vectorized += 1
    return compiled
