"""Analytic device models for the experimental platforms of Table 4.

The paper measures kernels on a Core i7-3820 CPU, an AMD Tahiti 7970 and an
NVIDIA GTX 970.  Since no OpenCL hardware is available to this reproduction,
each device is modelled analytically from its headline characteristics
(throughput, memory bandwidth, PCIe transfer bandwidth, launch overhead) plus
first-order GPU effects — coalescing efficiency, branch divergence and
occupancy — which are exactly the effects the Grewe et al. features were
designed to capture.  The absolute times are not meaningful; the *relative*
CPU/GPU decision boundary is, and that is what the predictive-modeling
experiments consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.execution.interpreter import ExecutionStats


class DeviceType(Enum):
    CPU = "cpu"
    GPU = "gpu"


@dataclass(frozen=True)
class Device:
    """An analytically modelled OpenCL device."""

    name: str
    device_type: DeviceType
    cores: int
    frequency_mhz: float
    peak_gflops: float
    memory_bandwidth_gbs: float
    transfer_bandwidth_gbs: float
    launch_overhead_us: float
    memory_gb: float
    #: Effective fraction of peak throughput achievable by straight-line code.
    compute_efficiency: float = 0.6
    #: Bandwidth fraction achieved by fully uncoalesced access patterns.
    uncoalesced_efficiency: float = 0.15
    #: SIMD/warp width used for the divergence penalty.
    simd_width: int = 32

    @property
    def is_gpu(self) -> bool:
        return self.device_type is DeviceType.GPU

    # ------------------------------------------------------------------
    # Cost model.
    # ------------------------------------------------------------------

    def estimate_runtime(self, profile: "KernelProfile") -> float:
        """Estimated wall-clock execution time in seconds (including transfers)."""
        compute_seconds = self._compute_time(profile)
        memory_seconds = self._memory_time(profile)
        kernel_seconds = max(compute_seconds, memory_seconds)
        if self.is_gpu:
            kernel_seconds *= 1.0 + 1.5 * profile.divergence_fraction
            kernel_seconds += profile.local_traffic_bytes / (self.memory_bandwidth_gbs * 4e9 + 1)
        transfer_seconds = self._transfer_time(profile)
        overhead_seconds = self.launch_overhead_us * 1e-6
        return kernel_seconds + transfer_seconds + overhead_seconds

    def _occupancy(self, profile: "KernelProfile") -> float:
        """How much of the device the launch can keep busy."""
        if not self.is_gpu:
            parallel_capacity = self.cores * 8  # cores × SIMD lanes
            return min(1.0, max(profile.work_items, 1) / parallel_capacity) or 1.0
        resident_capacity = self.cores * 8
        occupancy = min(1.0, max(profile.work_items, 1) / resident_capacity)
        # Small work-groups underutilise compute units.
        if profile.work_group_size and profile.work_group_size < self.simd_width:
            occupancy *= profile.work_group_size / self.simd_width
        return max(occupancy, 1e-3)

    def _compute_time(self, profile: "KernelProfile") -> float:
        effective_gflops = self.peak_gflops * self.compute_efficiency * self._occupancy(profile)
        return profile.total_operations / (effective_gflops * 1e9 + 1)

    def _memory_time(self, profile: "KernelProfile") -> float:
        bandwidth = self.memory_bandwidth_gbs * 1e9
        if self.is_gpu:
            efficiency = (
                profile.coalesced_fraction
                + (1.0 - profile.coalesced_fraction) * self.uncoalesced_efficiency
            )
            bandwidth *= max(efficiency, self.uncoalesced_efficiency)
        else:
            # Caches hide most irregularity on the CPU.
            bandwidth *= 0.8
        return profile.global_traffic_bytes / (bandwidth + 1)

    def _transfer_time(self, profile: "KernelProfile") -> float:
        if not self.is_gpu:
            return 0.0
        bandwidth = self.transfer_bandwidth_gbs * 1e9
        per_transfer_overhead = 10e-6
        transfers = max(profile.transfer_count, 1)
        return profile.transfer_bytes / (bandwidth + 1) + per_transfer_overhead * transfers


@dataclass
class KernelProfile:
    """Everything the cost model needs to know about one kernel execution.

    Typically built from interpreter :class:`ExecutionStats` measured on a
    (possibly reduced) NDRange and then scaled to the full payload size with
    :meth:`scaled`.
    """

    work_items: int
    work_group_size: int
    total_operations: float
    global_traffic_bytes: float
    local_traffic_bytes: float
    coalesced_fraction: float
    divergence_fraction: float
    transfer_bytes: float
    transfer_count: int = 2

    @classmethod
    def from_stats(
        cls,
        stats: ExecutionStats,
        coalesced_fraction: float,
        transfer_bytes: float,
        work_group_size: int,
        element_bytes: int = 4,
        transfer_count: int = 2,
    ) -> "KernelProfile":
        return cls(
            work_items=max(stats.work_items, 1),
            work_group_size=work_group_size,
            total_operations=float(stats.dynamic_operations),
            global_traffic_bytes=float(stats.global_accesses * element_bytes),
            local_traffic_bytes=float(stats.local_accesses * element_bytes),
            coalesced_fraction=coalesced_fraction,
            divergence_fraction=stats.divergence_fraction,
            transfer_bytes=transfer_bytes,
            transfer_count=transfer_count,
        )

    def scaled(self, factor: float) -> "KernelProfile":
        """Scale per-work-item quantities to a payload *factor* times larger."""
        factor = max(factor, 1e-9)
        return KernelProfile(
            work_items=int(self.work_items * factor),
            work_group_size=self.work_group_size,
            total_operations=self.total_operations * factor,
            global_traffic_bytes=self.global_traffic_bytes * factor,
            local_traffic_bytes=self.local_traffic_bytes * factor,
            coalesced_fraction=self.coalesced_fraction,
            divergence_fraction=self.divergence_fraction,
            transfer_bytes=self.transfer_bytes * factor,
            transfer_count=self.transfer_count,
        )


# ---------------------------------------------------------------------------
# The experimental platforms of Table 4.
# ---------------------------------------------------------------------------


def intel_core_i7_3820() -> Device:
    """The host CPU used in both experimental platforms."""
    return Device(
        name="Intel Core i7-3820",
        device_type=DeviceType.CPU,
        cores=4,
        frequency_mhz=3600,
        peak_gflops=105,
        memory_bandwidth_gbs=51.2,
        transfer_bandwidth_gbs=0.0,
        launch_overhead_us=15.0,
        memory_gb=8.0,
        # OpenCL CPU runtimes rarely auto-vectorise irregular kernels, so the
        # sustained fraction of the AVX peak is low.
        compute_efficiency=0.35,
        simd_width=8,
    )


def amd_tahiti_7970() -> Device:
    """The AMD GPU of the first experimental platform."""
    return Device(
        name="AMD Tahiti 7970",
        device_type=DeviceType.GPU,
        cores=2048,
        frequency_mhz=1000,
        peak_gflops=3790,
        memory_bandwidth_gbs=264,
        transfer_bandwidth_gbs=5.0,
        launch_overhead_us=40.0,
        memory_gb=3.0,
        compute_efficiency=0.55,
        # Tahiti's L2 + wide memory bus soften the uncoalesced-access penalty
        # relative to a naive every-access-is-DRAM model.
        uncoalesced_efficiency=0.25,
        simd_width=64,
    )


def nvidia_gtx_970() -> Device:
    """The NVIDIA GPU of the second experimental platform."""
    return Device(
        name="NVIDIA GTX 970",
        device_type=DeviceType.GPU,
        cores=1664,
        frequency_mhz=1050,
        peak_gflops=3900,
        memory_bandwidth_gbs=224,
        # The NVIDIA system sits on a full PCIe 3.0 x16 link and a leaner
        # driver stack, which is why the paper's best static mapping is
        # GPU-only on this platform but CPU-only on the AMD one.
        transfer_bandwidth_gbs=11.0,
        launch_overhead_us=18.0,
        memory_gb=4.0,
        compute_efficiency=0.6,
        uncoalesced_efficiency=0.35,
        simd_width=32,
    )


@dataclass(frozen=True)
class Platform:
    """A CPU + GPU pair, as used in the paper's two experimental systems."""

    name: str
    cpu: Device
    gpu: Device

    def runtimes(self, profile: KernelProfile) -> dict[str, float]:
        """Estimated runtime on each device of the platform."""
        return {"cpu": self.cpu.estimate_runtime(profile), "gpu": self.gpu.estimate_runtime(profile)}

    def oracle_device(self, profile: KernelProfile) -> str:
        """The faster device ("cpu" or "gpu") for this kernel/payload."""
        times = self.runtimes(profile)
        return "cpu" if times["cpu"] <= times["gpu"] else "gpu"

    def speedup_of_mapping(self, profile: KernelProfile, device: str) -> float:
        """Speedup of running on *device* relative to the slower choice."""
        times = self.runtimes(profile)
        other = "gpu" if device == "cpu" else "cpu"
        return times[other] / max(times[device], 1e-12)


def amd_platform() -> Platform:
    """Core i7-3820 + AMD Tahiti 7970 (the paper's first system)."""
    return Platform(name="AMD", cpu=intel_core_i7_3820(), gpu=amd_tahiti_7970())


def nvidia_platform() -> Platform:
    """Core i7-3820 + NVIDIA GTX 970 (the paper's second system)."""
    return Platform(name="NVIDIA", cpu=intel_core_i7_3820(), gpu=nvidia_gtx_970())


def all_platforms() -> list[Platform]:
    return [amd_platform(), nvidia_platform()]
