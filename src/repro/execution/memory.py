"""Simulated OpenCL memory objects.

The host driver allocates :class:`Buffer` objects for pointer kernel
arguments (global and local), the interpreter reads and writes them with
bounds checking, and the dynamic checker compares their contents across
executions.  Out-of-bounds accesses are clamped and recorded rather than
raising by default — real GPUs do not fault on modest overruns, and the
paper's pipeline relies on many slightly-sloppy GitHub kernels still
"running"; strict mode is available for tests.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro.errors import KernelRuntimeError, LockstepBailout
from repro.execution.values import VectorValue, values_equal


@dataclass
class AccessStats:
    """Counts of accesses observed on a buffer during one execution."""

    reads: int = 0
    writes: int = 0
    out_of_bounds: int = 0


class Buffer:
    """A typed, bounds-checked array living in a simulated address space."""

    def __init__(
        self,
        name: str,
        size: int,
        element_kind: str = "float",
        vector_width: int = 1,
        address_space: str = "global",
        fill=0,
        strict: bool = False,
    ):
        if size < 0:
            raise KernelRuntimeError(f"negative buffer size for {name!r}: {size}")
        self.name = name
        self.size = size
        self.element_kind = element_kind
        self.vector_width = vector_width
        self.address_space = address_space
        self.strict = strict
        self.stats = AccessStats()
        if vector_width == 1:
            # Scalars are immutable, so the fill element can be shared.
            self._data: list = [self._make_element(fill)] * size
        else:
            self._data = [self._make_element(fill) for _ in range(size)]

    def _make_element(self, value):
        if self.vector_width > 1:
            if isinstance(value, VectorValue):
                return value
            return VectorValue.broadcast(self.element_kind, self.vector_width, value)
        if self.element_kind in ("float", "double", "half"):
            return float(value)
        return int(value)

    # ------------------------------------------------------------------
    # Element access.
    # ------------------------------------------------------------------

    def _clamp_index(self, index: int) -> int | None:
        if 0 <= index < self.size:
            return int(index)
        self.stats.out_of_bounds += 1
        if self.strict:
            raise KernelRuntimeError(
                f"out-of-bounds access to buffer {self.name!r}: index {index} of {self.size}"
            )
        if self.size == 0:
            return None
        return min(max(int(index), 0), self.size - 1)

    def load(self, index: int):
        """Read the element at *index* (clamped when out of bounds)."""
        self.stats.reads += 1
        clamped = self._clamp_index(int(index))
        if clamped is None:
            return self._make_element(0)
        value = self._data[clamped]
        return copy.copy(value) if isinstance(value, VectorValue) else value

    def store(self, index: int, value) -> None:
        """Write *value* at *index* (clamped when out of bounds)."""
        self.stats.writes += 1
        clamped = self._clamp_index(int(index))
        if clamped is None:
            return
        self._data[clamped] = self._coerce(value)

    def _coerce(self, value):
        if isinstance(value, Buffer):
            # Storing a pointer value into a data buffer (synthesized kernels
            # sometimes do this); store its first element instead of faulting.
            value = value._data[0] if value._data else 0
        if self.vector_width > 1:
            if isinstance(value, VectorValue):
                return value
            return VectorValue.broadcast(self.element_kind, self.vector_width, value)
        if isinstance(value, VectorValue):
            value = value.values[0] if value.values else 0
        if self.element_kind in ("float", "double", "half"):
            return float(value)
        if isinstance(value, float):
            return int(value)
        return int(value)

    # ------------------------------------------------------------------
    # Whole-buffer operations (used by the host driver / dynamic checker).
    # ------------------------------------------------------------------

    def to_list(self) -> list:
        return [copy.copy(v) if isinstance(v, VectorValue) else v for v in self._data]

    def copy_from(self, values: list) -> None:
        self._data = [self._coerce(v) for v in values[: self.size]]
        if len(values) < self.size:
            self._data.extend(self._make_element(0) for _ in range(self.size - len(values)))

    def fill_trusted(self, values: list) -> None:
        """Adopt *values* verbatim: exactly ``size`` elements, pre-coerced.

        The payload generator's fast path — it generates values in the
        buffer's element type already (and :meth:`copy_from`'s per-element
        coercion passes :class:`VectorValue` through untouched), so the
        element-by-element ``_coerce`` would be an identity walk.  The
        caller hands over ownership of the list.
        """
        if len(values) != self.size:
            raise KernelRuntimeError(
                f"trusted fill for {self.name!r}: expected {self.size} values, "
                f"got {len(values)}"
            )
        self._data = values

    def clone(self, name: str | None = None) -> "Buffer":
        """A deep copy of this buffer (fresh access statistics)."""
        out = Buffer(
            name or self.name,
            self.size,
            self.element_kind,
            self.vector_width,
            self.address_space,
            strict=self.strict,
        )
        out.copy_from(self.to_list())
        return out

    def equals(self, other: "Buffer", epsilon: float = 1e-4) -> bool:
        """Approximate content equality (the dynamic checker's comparison)."""
        if self.size != other.size:
            return False
        return all(values_equal(a, b, epsilon) for a, b in zip(self._data, other._data))

    @property
    def size_in_bytes(self) -> int:
        element_bytes = {"char": 1, "uchar": 1, "short": 2, "ushort": 2, "half": 2,
                         "int": 4, "uint": 4, "float": 4,
                         "long": 8, "ulong": 8, "double": 8, "size_t": 8}.get(self.element_kind, 4)
        return self.size * element_bytes * max(1, self.vector_width)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Buffer({self.name!r}, size={self.size}, kind={self.element_kind}"
            f"x{self.vector_width}, space={self.address_space})"
        )


class LaneArena:
    """A free-list pool of lane-sized NumPy scratch arrays.

    The lockstep tier allocates a handful of ``(size,)`` float64/int64
    arrays per kernel execution (buffer images, hazard trackers); across a
    measurement batch the same shapes recur thousands of times.  The host
    driver owns one arena and threads it through ``run_kernel`` so those
    allocations are recycled instead of re-malloc'd.

    Contract: :meth:`take` returns an *uninitialised* array — every caller
    must fully overwrite it before reading, which is what makes reuse
    leak-free across measurements (verified by the arena-reuse tests).
    """

    __slots__ = ("_free", "_cap")

    def __init__(self, max_entries_per_key: int = 16):
        self._free: dict[tuple[int, str], list[np.ndarray]] = {}
        self._cap = max_entries_per_key

    def take(self, size: int, dtype) -> np.ndarray:
        stack = self._free.get((size, np.dtype(dtype).char))
        if stack:
            return stack.pop()
        return np.empty(size, dtype=dtype)

    def release(self, array: np.ndarray | None) -> None:
        if array is None or array.ndim != 1 or array.base is not None:
            return
        stack = self._free.setdefault((array.size, array.dtype.char), [])
        if len(stack) < self._cap:
            stack.append(array)


class LockstepBuffer:
    """A NumPy view of one :class:`Buffer` for the vectorized (SIMT) tier.

    The scalar engines index list-backed :class:`Buffer` objects one element
    at a time; the lockstep tier instead gathers/scatters whole lane vectors
    against an ndarray copy of the data, with the same clamping and access
    accounting.  Nothing touches the source buffer until :meth:`commit` —
    a :class:`~repro.errors.LockstepBailout` mid-execution therefore leaves
    the memory pool pristine for the closure-engine fallback.

    Cross-lane hazards are detected dynamically: the scalar engines run each
    work-item to completion before the next starts, so lane ``L`` observes
    the *final* writes of every lane below ``L`` and none of the writes of
    lanes above it — an ordering one lockstep pass cannot reproduce when
    lanes communicate through a buffer.  Two per-cell trackers make the
    check exact:

    * ``writer`` — the lane that last wrote the cell.  A load (or store) of
      a cell written by a *different* lane bails out.
    * ``reader_max`` — the highest lane that has read the cell.  A store
      bails out when a higher lane already read the cell: in sequential
      order that lane would have observed this write, but in lockstep order
      it read the stale value.

    Lane-private reuse (the overwhelmingly common ``a[gid] = f(a[gid])``
    pattern) passes untouched, and duplicate indices within one scatter
    match sequential order because NumPy fancy assignment is
    last-write-wins in lane order.
    """

    __slots__ = (
        "source", "name", "size", "element_kind", "is_float", "address_space",
        "data", "writer", "reader_max", "reads", "writes", "out_of_bounds",
        "track_hazards", "affine", "_arena",
    )

    def __init__(
        self,
        source: Buffer,
        *,
        track_hazards: bool = True,
        affine: bool = False,
        arena: LaneArena | None = None,
    ):
        if source.vector_width > 1:
            raise LockstepBailout("vector-element buffers are not lockstep-executable")
        if source.strict:
            raise LockstepBailout("strict bounds-checked buffers fall back to scalar engines")
        self.source = source
        self.name = source.name
        self.size = source.size
        self.element_kind = source.element_kind
        self.is_float = source.element_kind in ("float", "double", "half")
        self.address_space = source.address_space
        # The affine strided paths skip hazard bookkeeping entirely, so they
        # are only sound on buffers the race pass proved hazard-free.
        self.track_hazards = track_hazards
        self.affine = affine and not track_hazards
        self._arena = arena
        dtype = np.float64 if self.is_float else np.int64
        try:
            # Scalar buffers hold plain floats/ints (vector elements bailed
            # above), so filling from ``_data`` directly is bit-identical to
            # the historical ``to_list()`` round-trip without the copy.
            if arena is not None:
                data = arena.take(source.size, dtype)
                data[:] = source._data
            else:
                data = np.array(source._data, dtype=dtype)
        except (OverflowError, TypeError, ValueError) as error:
            raise LockstepBailout(f"buffer {source.name!r} not int64/float64 representable") from error
        self.data = data
        self.writer: np.ndarray | None = None  # allocated on first store
        self.reader_max: np.ndarray | None = None  # allocated on first load
        self.reads = 0
        self.writes = 0
        self.out_of_bounds = 0

    def _tracker(self) -> np.ndarray:
        """A fresh ``(size,)`` int64 tracker initialised to -1 (no lane)."""
        if self._arena is not None:
            tracker = self._arena.take(self.size, np.int64)
            tracker.fill(-1)
            return tracker
        return np.full(self.size, -1, dtype=np.int64)

    def recycle(self) -> None:
        """Return this view's arrays to the arena (after commit/bailout)."""
        if self._arena is None:
            return
        self._arena.release(self.data)
        self._arena.release(self.writer)
        self._arena.release(self.reader_max)
        self.data = np.empty(0, dtype=self.data.dtype)
        self.writer = None
        self.reader_max = None

    # ------------------------------------------------------------------

    def first_element(self, mask=None, lane_ids: np.ndarray | None = None):
        """The scalar the engines use when a pointer is abused as a scalar.

        Mirrors ``Buffer.to_list()[0]``: no access statistics — but when
        *lane_ids* is given the peek is hazard-tracked like a load, since
        the value observed sequentially depends on other lanes' writes.
        """
        if self.size == 0:
            return 0
        if lane_ids is not None and self.track_hazards:
            # _record_read checks hazards and tracks readers without touching
            # the read/write counters (to_list() is not a counted access).
            readers = lane_ids if mask is None else lane_ids[mask]
            self._record_read(np.zeros(readers.size, dtype=np.int64), readers)
        value = self.data[0]
        return float(value) if self.is_float else int(value)

    def _clamp(self, indices: np.ndarray, mask) -> np.ndarray:
        """Clamp *indices* like ``Buffer._clamp_index`` and count OOB lanes."""
        in_range = (indices >= 0) & (indices < self.size)
        oob = ~in_range
        if mask is not None:
            oob = oob & mask
        oob_count = int(oob.sum())
        if oob_count:
            self.out_of_bounds += oob_count
        if self.size == 0:
            return indices  # caller handles the empty-buffer case
        return np.clip(indices, 0, self.size - 1)

    def load(self, index_data, mask, n: int, lane_ids: np.ndarray):
        """Masked gather; returns ``(kind, data)`` lane values."""
        kind = "f" if self.is_float else "i"
        count = n if mask is None else int(mask.sum())
        self.reads += count
        if np.ndim(index_data) == 0:
            index = int(index_data)
            if not 0 <= index < self.size:
                self.out_of_bounds += count
                if self.size == 0:
                    return (kind, 0.0 if self.is_float else 0)
                index = min(max(index, 0), self.size - 1)
            if self.track_hazards:
                readers = lane_ids if mask is None else lane_ids[mask]
                self._record_read(np.full(readers.size, index, dtype=np.int64), readers)
            value = self.data[index]
            return (kind, float(value) if self.is_float else int(value))
        if self.affine and mask is None and n > 1:
            strided = self._strided_cells(index_data, lane_ids, n)
            if strided is not None:
                # Must copy: the slice is a view and later stores would
                # alias; the gather below materialises a fresh array too.
                return (kind, strided.copy())
        if mask is None:
            clamped = self._clamp(index_data, None)
            if self.size == 0:
                return (kind, np.zeros(n, dtype=self.data.dtype))
            if self.track_hazards:
                self._record_read(clamped, lane_ids)
            return (kind, self.data[clamped])
        sub_index = index_data[mask]
        in_range = (sub_index >= 0) & (sub_index < self.size)
        oob_count = int((~in_range).sum())
        if oob_count:
            self.out_of_bounds += oob_count
        out = np.zeros(n, dtype=self.data.dtype)
        if self.size == 0:
            return (kind, out)
        clamped = np.clip(sub_index, 0, self.size - 1)
        if self.track_hazards:
            self._record_read(clamped, lane_ids[mask])
        out[mask] = self.data[clamped]
        return (kind, out)

    def _strided_cells(self, index_data: np.ndarray, lane_index: np.ndarray, n: int):
        """The strided view of ``data`` an AFFINE subscript addresses.

        Returns ``None`` when the access is not expressible as an in-bounds
        forward stride (zero/negative strides, OOB endpoints) — the caller
        falls through to the generic gather/scatter, preserving clamping
        and out-of-bounds accounting exactly.  A subscript that *looks*
        strided at the endpoints but deviates in between contradicts the
        analyzer's single-form AFFINE claim: that misprediction raises
        ``LockstepBailout`` and execution re-runs on the generic tier.
        """
        i0 = int(index_data[0])
        stride = int(index_data[1]) - i0
        if stride <= 0 or i0 < 0:
            return None
        last = i0 + stride * (n - 1)
        if last >= self.size:
            return None
        if not np.array_equal(index_data, i0 + stride * lane_index):
            raise LockstepBailout(
                f"affine-subscript misprediction on {self.name!r}"
            )
        return self.data[i0 : last + 1 : stride]

    def _record_read(self, cells: np.ndarray, readers: np.ndarray) -> None:
        """Check the read against past writers and remember the reader."""
        if self.writer is not None:
            owners = self.writer[cells]
            if np.any((owners >= 0) & (owners != readers)):
                raise LockstepBailout(f"cross-lane read-after-write hazard on {self.name!r}")
        if self.reader_max is None:
            self.reader_max = self._tracker()
        # Lane ids ascend within a scatter, so last-write-wins keeps the max
        # even for duplicate cells.
        self.reader_max[cells] = np.maximum(self.reader_max[cells], readers)

    def store(self, index_data, value_data, mask, n: int, lane_ids: np.ndarray) -> None:
        """Masked scatter with hazard tracking; *value_data* is a lane array
        or uniform already coerced to this buffer's element flavour."""
        count = n if mask is None else int(mask.sum())
        self.writes += count
        if self.affine and mask is None and n > 1 and np.ndim(index_data) == 1:
            strided = self._strided_cells(index_data, lane_ids, n)
            if strided is not None:
                try:
                    strided[...] = value_data
                except OverflowError as error:
                    raise LockstepBailout(
                        f"stored value exceeds int64 on {self.name!r}"
                    ) from error
                return
        if mask is None:
            indices = np.asarray(index_data) if np.ndim(index_data) else np.full(n, int(index_data), dtype=np.int64)
            writers = lane_ids
            values = value_data
        else:
            indices = (index_data[mask] if np.ndim(index_data) else
                       np.full(count, int(index_data), dtype=np.int64))
            writers = lane_ids[mask]
            values = value_data[mask] if np.ndim(value_data) else value_data
        in_range = (indices >= 0) & (indices < self.size)
        oob_count = int((~in_range).sum())
        if oob_count:
            self.out_of_bounds += oob_count
        if self.size == 0:
            return
        cells = np.clip(indices, 0, self.size - 1)
        if self.track_hazards:
            if self.writer is None:
                self.writer = self._tracker()
            owners = self.writer[cells]
            if np.any((owners >= 0) & (owners != writers)):
                raise LockstepBailout(f"cross-lane write-after-write hazard on {self.name!r}")
            if self.reader_max is not None and np.any(self.reader_max[cells] > writers):
                # A higher lane already read this cell: sequentially it would
                # have observed this write, but in lockstep it read stale data.
                raise LockstepBailout(f"cross-lane write-after-read hazard on {self.name!r}")
        try:
            self.data[cells] = values
        except OverflowError as error:
            # A uniform Python int beyond int64: the scalar engines store
            # arbitrary-precision values, so fall back to them.
            raise LockstepBailout(f"stored value exceeds int64 on {self.name!r}") from error
        if self.track_hazards:
            self.writer[cells] = writers

    # ------------------------------------------------------------------

    _ATOMIC_UFUNCS = {
        "add": np.add,
        "sub": np.subtract,
        "inc": np.add,
        "dec": np.subtract,
        "min": np.minimum,
        "max": np.maximum,
        "and": np.bitwise_and,
        "or": np.bitwise_or,
        "xor": np.bitwise_xor,
    }

    def atomic_update(self, operation: str, index_data, operand, mask, n: int, lane_ids) -> None:
        """A result-discarded atomic read-modify-write over the active lanes.

        ``np.ufunc.at`` applies duplicate indices sequentially in lane order
        — the exact order the scalar engines execute the per-item atomics —
        so the final cell values are bit-identical for these operations.
        Atomically-touched cells are poisoned with writer lane ``-2``: any
        later plain access by a specific lane is order-dependent and bails.
        """
        kind, operand_data = operand
        count = n if mask is None else int(mask.sum())
        self.reads += count
        self.writes += count
        lanes = lane_ids if mask is None else lane_ids[mask]
        if np.ndim(index_data) == 0:
            indices = np.full(lanes.size, int(index_data), dtype=np.int64)
        else:
            indices = index_data if mask is None else index_data[mask]
        in_range = (indices >= 0) & (indices < self.size)
        oob_count = int((~in_range).sum())
        if oob_count:
            # Both the load and the store halves clamp (and count) the index.
            self.out_of_bounds += 2 * oob_count
        if self.size == 0:
            return
        cells = np.clip(indices, 0, self.size - 1)

        if self.track_hazards:
            if self.writer is not None:
                owners = self.writer[cells]
                if np.any((owners >= 0) & (owners != lanes)):
                    raise LockstepBailout(f"atomic after plain write on {self.name!r}")
            if self.reader_max is not None and np.any(self.reader_max[cells] > lanes):
                raise LockstepBailout(f"atomic after cross-lane read on {self.name!r}")

        if operation in ("inc", "dec"):
            values = np.float64(1.0) if self.is_float else np.int64(1)
        else:
            values = operand_data if mask is None or np.ndim(operand_data) == 0 else operand_data[mask]
            if self.is_float:
                if kind == "i":
                    values = np.asarray(values, dtype=np.float64)
            elif kind == "f":
                # int(old + float_operand) truncates at *every* step of the
                # sequential chain; no order-independent equivalent exists.
                raise LockstepBailout("float-operand atomic on an integer buffer")
            else:
                try:
                    values = np.asarray(values, dtype=np.int64)
                except OverflowError as error:
                    raise LockstepBailout("atomic operand exceeds int64") from error

        if operation == "xchg":
            self.data[cells] = np.asarray(values, dtype=self.data.dtype)
        else:
            ufunc = self._ATOMIC_UFUNCS.get(operation)
            if ufunc is None:
                raise LockstepBailout(f"order-dependent atomic {operation!r}")
            if self.is_float:
                if operation in ("min", "max"):
                    # Python min/max and np.minimum/maximum disagree on NaN
                    # propagation and signed-zero ties.
                    raise LockstepBailout("float atomic min/max")
                if not bool(np.isfinite(self.data).all()) or not bool(
                    np.isfinite(values).all() if np.ndim(values) else np.isfinite(values)
                ):
                    raise LockstepBailout("non-finite float atomic accumulation")
            else:
                if operation in ("add", "sub"):
                    magnitude = float(np.abs(self.data).max()) if self.size else 0.0
                    magnitude += float(np.abs(values).sum()) if np.ndim(values) else abs(float(values)) * lanes.size
                    if magnitude >= 2.0**62:
                        raise LockstepBailout("possible int64 overflow in atomic accumulation")
            ufunc.at(self.data, cells, values)
        if self.track_hazards:
            if self.writer is None:
                self.writer = self._tracker()
            self.writer[cells] = -2

    def commit(self) -> None:
        """Fold data and access counters back into the source buffer."""
        source = self.source
        source._data = self.data.tolist()
        source.stats.reads = self.reads
        source.stats.writes = self.writes
        source.stats.out_of_bounds = self.out_of_bounds


@dataclass
class MemoryPool:
    """All buffers bound for a single kernel execution, keyed by argument name."""

    buffers: dict[str, Buffer] = field(default_factory=dict)

    def allocate(
        self,
        name: str,
        size: int,
        element_kind: str = "float",
        vector_width: int = 1,
        address_space: str = "global",
        fill=0,
    ) -> Buffer:
        buffer = Buffer(name, size, element_kind, vector_width, address_space, fill)
        self.buffers[name] = buffer
        return buffer

    def get(self, name: str) -> Buffer | None:
        return self.buffers.get(name)

    @property
    def global_buffers(self) -> list[Buffer]:
        return [b for b in self.buffers.values() if b.address_space == "global"]

    @property
    def local_buffers(self) -> list[Buffer]:
        return [b for b in self.buffers.values() if b.address_space == "local"]

    @property
    def total_global_bytes(self) -> int:
        return sum(b.size_in_bytes for b in self.global_buffers)
