"""Simulated OpenCL memory objects.

The host driver allocates :class:`Buffer` objects for pointer kernel
arguments (global and local), the interpreter reads and writes them with
bounds checking, and the dynamic checker compares their contents across
executions.  Out-of-bounds accesses are clamped and recorded rather than
raising by default — real GPUs do not fault on modest overruns, and the
paper's pipeline relies on many slightly-sloppy GitHub kernels still
"running"; strict mode is available for tests.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.errors import KernelRuntimeError
from repro.execution.values import VectorValue, values_equal


@dataclass
class AccessStats:
    """Counts of accesses observed on a buffer during one execution."""

    reads: int = 0
    writes: int = 0
    out_of_bounds: int = 0


class Buffer:
    """A typed, bounds-checked array living in a simulated address space."""

    def __init__(
        self,
        name: str,
        size: int,
        element_kind: str = "float",
        vector_width: int = 1,
        address_space: str = "global",
        fill=0,
        strict: bool = False,
    ):
        if size < 0:
            raise KernelRuntimeError(f"negative buffer size for {name!r}: {size}")
        self.name = name
        self.size = size
        self.element_kind = element_kind
        self.vector_width = vector_width
        self.address_space = address_space
        self.strict = strict
        self.stats = AccessStats()
        self._data: list = [self._make_element(fill) for _ in range(size)]

    def _make_element(self, value):
        if self.vector_width > 1:
            if isinstance(value, VectorValue):
                return value
            return VectorValue.broadcast(self.element_kind, self.vector_width, value)
        if self.element_kind in ("float", "double", "half"):
            return float(value)
        return int(value)

    # ------------------------------------------------------------------
    # Element access.
    # ------------------------------------------------------------------

    def _clamp_index(self, index: int) -> int | None:
        if 0 <= index < self.size:
            return int(index)
        self.stats.out_of_bounds += 1
        if self.strict:
            raise KernelRuntimeError(
                f"out-of-bounds access to buffer {self.name!r}: index {index} of {self.size}"
            )
        if self.size == 0:
            return None
        return min(max(int(index), 0), self.size - 1)

    def load(self, index: int):
        """Read the element at *index* (clamped when out of bounds)."""
        self.stats.reads += 1
        clamped = self._clamp_index(int(index))
        if clamped is None:
            return self._make_element(0)
        value = self._data[clamped]
        return copy.copy(value) if isinstance(value, VectorValue) else value

    def store(self, index: int, value) -> None:
        """Write *value* at *index* (clamped when out of bounds)."""
        self.stats.writes += 1
        clamped = self._clamp_index(int(index))
        if clamped is None:
            return
        self._data[clamped] = self._coerce(value)

    def _coerce(self, value):
        if isinstance(value, Buffer):
            # Storing a pointer value into a data buffer (synthesized kernels
            # sometimes do this); store its first element instead of faulting.
            value = value._data[0] if value._data else 0
        if self.vector_width > 1:
            if isinstance(value, VectorValue):
                return value
            return VectorValue.broadcast(self.element_kind, self.vector_width, value)
        if isinstance(value, VectorValue):
            value = value.values[0] if value.values else 0
        if self.element_kind in ("float", "double", "half"):
            return float(value)
        if isinstance(value, float):
            return int(value)
        return int(value)

    # ------------------------------------------------------------------
    # Whole-buffer operations (used by the host driver / dynamic checker).
    # ------------------------------------------------------------------

    def to_list(self) -> list:
        return [copy.copy(v) if isinstance(v, VectorValue) else v for v in self._data]

    def copy_from(self, values: list) -> None:
        self._data = [self._coerce(v) for v in values[: self.size]]
        if len(values) < self.size:
            self._data.extend(self._make_element(0) for _ in range(self.size - len(values)))

    def clone(self, name: str | None = None) -> "Buffer":
        """A deep copy of this buffer (fresh access statistics)."""
        out = Buffer(
            name or self.name,
            self.size,
            self.element_kind,
            self.vector_width,
            self.address_space,
            strict=self.strict,
        )
        out.copy_from(self.to_list())
        return out

    def equals(self, other: "Buffer", epsilon: float = 1e-4) -> bool:
        """Approximate content equality (the dynamic checker's comparison)."""
        if self.size != other.size:
            return False
        return all(values_equal(a, b, epsilon) for a, b in zip(self._data, other._data))

    @property
    def size_in_bytes(self) -> int:
        element_bytes = {"char": 1, "uchar": 1, "short": 2, "ushort": 2, "half": 2,
                         "int": 4, "uint": 4, "float": 4,
                         "long": 8, "ulong": 8, "double": 8, "size_t": 8}.get(self.element_kind, 4)
        return self.size * element_bytes * max(1, self.vector_width)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Buffer({self.name!r}, size={self.size}, kind={self.element_kind}"
            f"x{self.vector_width}, space={self.address_space})"
        )


@dataclass
class MemoryPool:
    """All buffers bound for a single kernel execution, keyed by argument name."""

    buffers: dict[str, Buffer] = field(default_factory=dict)

    def allocate(
        self,
        name: str,
        size: int,
        element_kind: str = "float",
        vector_width: int = 1,
        address_space: str = "global",
        fill=0,
    ) -> Buffer:
        buffer = Buffer(name, size, element_kind, vector_width, address_space, fill)
        self.buffers[name] = buffer
        return buffer

    def get(self, name: str) -> Buffer | None:
        return self.buffers.get(name)

    @property
    def global_buffers(self) -> list[Buffer]:
        return [b for b in self.buffers.values() if b.address_space == "global"]

    @property
    def local_buffers(self) -> list[Buffer]:
        return [b for b in self.buffers.values() if b.address_space == "local"]

    @property
    def total_global_bytes(self) -> int:
        return sum(b.size_in_bytes for b in self.global_buffers)
