"""Implementations of OpenCL built-in functions for the interpreter.

Math built-ins operate component-wise over :class:`VectorValue` operands and
broadcast scalars, mirroring OpenCL semantics closely enough for the dynamic
checker's purposes (bit-exactness is not a goal — the checker compares with
an epsilon, §5.2 of the paper).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import LockstepBailout
from repro.execution.values import VectorValue, convert_scalar


def _componentwise(func, *args):
    """Apply *func* over scalars, broadcasting across any vector arguments."""
    vectors = [a for a in args if isinstance(a, VectorValue)]
    if not vectors:
        return func(*args)
    width = vectors[0].width
    kind = vectors[0].element_kind
    columns = []
    for arg in args:
        if isinstance(arg, VectorValue):
            columns.append(arg.values)
        else:
            columns.append([arg] * width)
    return VectorValue(kind, [func(*row) for row in zip(*columns)])


def _safe(func, default=0.0):
    def wrapper(*args):
        try:
            result = func(*(float(a) for a in args))
        except (ValueError, OverflowError, ZeroDivisionError):
            return default
        return result

    return wrapper


def _clamp(x, lo, hi):
    return min(max(x, lo), hi)


def _mix(x, y, a):
    return x + (y - x) * a


def _step(edge, x):
    return 0.0 if x < edge else 1.0


def _smoothstep(edge0, edge1, x):
    if edge1 == edge0:
        return 0.0 if x < edge0 else 1.0
    t = _clamp((x - edge0) / (edge1 - edge0), 0.0, 1.0)
    return t * t * (3.0 - 2.0 * t)


def _sign(x):
    if x > 0:
        return 1.0
    if x < 0:
        return -1.0
    return 0.0


def _mad(a, b, c):
    return a * b + c


def _divide(a, b):
    return a / b if b != 0 else (math.inf if a > 0 else -math.inf if a < 0 else math.nan)


def _recip(a):
    return 1.0 / a if a != 0 else math.inf


#: Scalar implementations applied component-wise.
_SCALAR_FUNCS = {
    "sqrt": _safe(lambda x: math.sqrt(abs(x))),
    "native_sqrt": _safe(lambda x: math.sqrt(abs(x))),
    "half_sqrt": _safe(lambda x: math.sqrt(abs(x))),
    "rsqrt": _safe(lambda x: 1.0 / math.sqrt(abs(x)) if x != 0 else math.inf),
    "native_rsqrt": _safe(lambda x: 1.0 / math.sqrt(abs(x)) if x != 0 else math.inf),
    "cbrt": _safe(lambda x: math.copysign(abs(x) ** (1.0 / 3.0), x)),
    "sin": _safe(math.sin),
    "native_sin": _safe(math.sin),
    "cos": _safe(math.cos),
    "native_cos": _safe(math.cos),
    "tan": _safe(math.tan),
    "asin": _safe(lambda x: math.asin(_clamp(x, -1.0, 1.0))),
    "acos": _safe(lambda x: math.acos(_clamp(x, -1.0, 1.0))),
    "atan": _safe(math.atan),
    "atan2": _safe(math.atan2),
    "sinh": _safe(math.sinh),
    "cosh": _safe(math.cosh),
    "tanh": _safe(math.tanh),
    "exp": _safe(math.exp),
    "exp2": _safe(lambda x: 2.0**x),
    "exp10": _safe(lambda x: 10.0**x),
    "native_exp": _safe(math.exp),
    "half_exp": _safe(math.exp),
    "log": _safe(lambda x: math.log(x) if x > 0 else -math.inf),
    "log2": _safe(lambda x: math.log2(x) if x > 0 else -math.inf),
    "log10": _safe(lambda x: math.log10(x) if x > 0 else -math.inf),
    "native_log": _safe(lambda x: math.log(x) if x > 0 else -math.inf),
    "half_log": _safe(lambda x: math.log(x) if x > 0 else -math.inf),
    "pow": _safe(lambda x, y: math.copysign(abs(x) ** y, 1.0 if x >= 0 else -1.0)),
    "pown": _safe(lambda x, y: x**int(y)),
    "powr": _safe(lambda x, y: abs(x) ** y),
    "fabs": _safe(abs),
    "floor": _safe(math.floor),
    "ceil": _safe(math.ceil),
    "round": _safe(round),
    "trunc": _safe(math.trunc),
    "rint": _safe(round),
    "fmod": _safe(lambda x, y: math.fmod(x, y) if y != 0 else 0.0),
    "hypot": _safe(math.hypot),
    "copysign": _safe(math.copysign),
    "sign": _safe(_sign),
    "fma": _safe(_mad),
    "mad": _safe(_mad),
    "fmin": _safe(min),
    "fmax": _safe(max),
    "native_divide": _safe(_divide),
    "native_recip": _safe(_recip),
    "degrees": _safe(math.degrees),
    "radians": _safe(math.radians),
    "erf": _safe(math.erf),
    "erfc": _safe(math.erfc),
    "tgamma": _safe(lambda x: math.gamma(x) if x > 0 else 1.0),
    "lgamma": _safe(lambda x: math.lgamma(abs(x)) if x != 0 else 0.0),
    "mix": _safe(_mix),
    "step": _safe(_step),
    "smoothstep": _safe(_smoothstep),
    "clamp": _safe(_clamp),
}

#: Integer-flavoured built-ins (still applied component-wise).
_INTEGER_FUNCS = {
    "abs": lambda x: abs(int(x)) if not isinstance(x, float) else abs(x),
    "abs_diff": lambda x, y: abs(int(x) - int(y)),
    "add_sat": lambda x, y: int(x) + int(y),
    "sub_sat": lambda x, y: int(x) - int(y),
    "hadd": lambda x, y: (int(x) + int(y)) >> 1,
    "rhadd": lambda x, y: (int(x) + int(y) + 1) >> 1,
    "clz": lambda x: max(0, 32 - int(abs(int(x))).bit_length()),
    "popcount": lambda x: bin(int(x) & 0xFFFFFFFF).count("1"),
    "rotate": lambda x, n: ((int(x) << (int(n) % 32)) | (int(x) >> (32 - int(n) % 32))) & 0xFFFFFFFF,
    "mad24": lambda a, b, c: int(a) * int(b) + int(c),
    "mul24": lambda a, b: int(a) * int(b),
    "mad_hi": lambda a, b, c: ((int(a) * int(b)) >> 32) + int(c),
    "mul_hi": lambda a, b: (int(a) * int(b)) >> 32,
    "min": min,
    "max": max,
}

_RELATIONAL_FUNCS = {
    "isnan": lambda x: 1 if isinstance(x, float) and math.isnan(x) else 0,
    "isinf": lambda x: 1 if isinstance(x, float) and math.isinf(x) else 0,
    "isfinite": lambda x: 1 if not isinstance(x, float) or math.isfinite(x) else 0,
    "isnormal": lambda x: 1 if isinstance(x, (int, float)) and x != 0 and math.isfinite(float(x)) else 0,
    "signbit": lambda x: 1 if float(x) < 0 else 0,
}


def _dot(a, b):
    if isinstance(a, VectorValue) and isinstance(b, VectorValue):
        return float(sum(x * y for x, y in zip(a.values, b.values)))
    return float(a) * float(b)


def _length(a):
    if isinstance(a, VectorValue):
        return math.sqrt(sum(float(x) * float(x) for x in a.values))
    return abs(float(a))


def _normalize(a):
    if isinstance(a, VectorValue):
        norm = _length(a) or 1.0
        return VectorValue(a.element_kind, [float(x) / norm for x in a.values])
    return _sign(float(a))


def _cross(a, b):
    if isinstance(a, VectorValue) and isinstance(b, VectorValue) and a.width >= 3 and b.width >= 3:
        ax, ay, az = a.values[:3]
        bx, by, bz = b.values[:3]
        values = [ay * bz - az * by, az * bx - ax * bz, ax * by - ay * bx]
        if a.width == 4:
            values.append(0.0)
        return VectorValue(a.element_kind, values)
    return a


def _any(a):
    if isinstance(a, VectorValue):
        return 1 if any(v != 0 for v in a.values) else 0
    return 1 if a != 0 else 0


def _all(a):
    if isinstance(a, VectorValue):
        return 1 if all(v != 0 for v in a.values) else 0
    return 1 if a != 0 else 0


def _select(a, b, c):
    if isinstance(c, VectorValue):
        return _componentwise(lambda x, y, z: y if z else x, a, b, c)
    return b if c else a


def _bitselect(a, b, c):
    return _componentwise(lambda x, y, z: (int(x) & ~int(z)) | (int(y) & int(z)), a, b, c)


_GEOMETRIC_FUNCS = {
    "dot": _dot,
    "length": _length,
    "fast_length": _length,
    "distance": lambda a, b: _length(a - b if isinstance(a, VectorValue) else float(a) - float(b)),
    "normalize": _normalize,
    "fast_normalize": _normalize,
    "cross": _cross,
    "any": _any,
    "all": _all,
    "select": _select,
    "bitselect": _bitselect,
}


def _scalarize(value):
    """Collapse a pointer argument to its first element.

    Sloppy GitHub/synthesized kernels occasionally pass a pointer where a
    scalar is expected (``sqrt(a)`` instead of ``sqrt(a[i])``); real OpenCL
    compilers reject that, but the lenient execution mode must not fault.
    """
    # Local import: memory.py imports values.py, not this module.
    from repro.execution.memory import Buffer

    if isinstance(value, Buffer):
        return value.to_list()[0] if len(value) else 0
    return value


def evaluate_builtin(name: str, args: list):
    """Evaluate the OpenCL built-in *name* over already-evaluated *args*.

    Returns the result value, or raises ``KeyError`` when the built-in is not
    a pure value function (work-item queries, barriers, atomics and
    vload/vstore are handled by the interpreter itself because they need
    execution context).  Type abuse (e.g. pointer arguments to math
    functions) degrades to a zero result rather than faulting, matching the
    lenient semantics of the rest of the simulated runtime.
    """
    try:
        if name in _SCALAR_FUNCS:
            return _componentwise(_SCALAR_FUNCS[name], *map(_scalarize, args))
        if name in _INTEGER_FUNCS:
            return _componentwise(_INTEGER_FUNCS[name], *map(_scalarize, args))
        if name in _RELATIONAL_FUNCS:
            return _componentwise(_RELATIONAL_FUNCS[name], *map(_scalarize, args))
        if name in _GEOMETRIC_FUNCS:
            return _GEOMETRIC_FUNCS[name](*map(_scalarize, args))
        if name == "printf":
            return 0
        if name.startswith("as_") or name.startswith("convert_"):
            return convert_builtin(name, [_scalarize(a) for a in args])
    except TypeError:
        return 0
    raise KeyError(name)


# ---------------------------------------------------------------------------
# Lockstep (SIMT) evaluation for the vectorized execution tier.
# ---------------------------------------------------------------------------

#: Builtins whose NumPy lowering is *provably* bit-identical to the scalar
#: implementation (IEEE-exact operations only).  Everything else — notably
#: the transcendentals, whose libm and NumPy implementations are each
#: correctly rounded only to within an ulp — is applied lane-by-lane with
#: the very same scalar functions the interpreter uses, which keeps the
#: differential guarantee structural instead of empirical.
_LOCKSTEP_EXACT_UNARY = {
    # _safe(sqrt(abs(x))): sqrt is correctly rounded by IEEE 754 everywhere.
    "sqrt": lambda x: np.sqrt(np.abs(x)),
    "native_sqrt": lambda x: np.sqrt(np.abs(x)),
    "half_sqrt": lambda x: np.sqrt(np.abs(x)),
    "fabs": np.abs,
}

#: Ternary fused patterns computed as the same two IEEE operations.
_LOCKSTEP_EXACT_TERNARY = {
    "mad": lambda a, b, c: a * b + c,
    "fma": lambda a, b, c: a * b + c,
}

#: Rounding builtins whose scalar implementation returns a Python *int*;
#: their NumPy float results are exact, so only the int conversion needs
#: guarding (non-finite or beyond-int64 lanes take the per-lane path, which
#: reproduces the _safe()/overflow behaviour of the scalar engines).
_LOCKSTEP_EXACT_TO_INT = {
    "floor": np.floor,
    "ceil": np.ceil,
    "trunc": np.trunc,
}


def evaluate_builtin_lockstep(name: str, args: list, mask, n: int):
    """Evaluate builtin *name* over lane values ``(kind, data)``.

    Returns a ``(kind, data)`` lane value, raises ``KeyError`` for names
    that are not pure value builtins (mirroring :func:`evaluate_builtin`),
    and :class:`~repro.errors.LockstepBailout` when the per-lane results
    cannot be represented as a single-kind lane vector.
    """
    from repro.execution import vec_ops

    if name == "printf":
        return ("i", 0)

    arrays = [data for _, data in args if isinstance(data, np.ndarray)]
    if not arrays:
        # All-uniform arguments: one scalar call through the interpreter's
        # own implementation (exact by construction).
        result = evaluate_builtin(name, [data for _, data in args])
        if isinstance(result, VectorValue):
            raise LockstepBailout(f"builtin {name!r} produced a vector value")
        return ("f" if isinstance(result, float) else "i", result)

    if len(args) == 1 and name in _LOCKSTEP_EXACT_UNARY:
        kind, data = args[0]
        with np.errstate(all="ignore"):
            return ("f", _LOCKSTEP_EXACT_UNARY[name](vec_ops.to_float_data(kind, data)))
    if len(args) == 3 and name in _LOCKSTEP_EXACT_TERNARY:
        columns = [vec_ops.to_float_data(kind, data) for kind, data in args]
        with np.errstate(all="ignore"):
            return ("f", _LOCKSTEP_EXACT_TERNARY[name](*columns))
    if len(args) == 1 and name in _LOCKSTEP_EXACT_TO_INT:
        kind, data = args[0]
        values = vec_ops.to_float_data(kind, data)
        active = values if mask is None else values[mask]
        if bool(np.isfinite(active).all()) and not np.any(np.abs(active) >= 2.0**63):
            with np.errstate(all="ignore"):
                rounded = _LOCKSTEP_EXACT_TO_INT[name](values)
                if mask is not None:
                    rounded = np.where(np.isfinite(rounded), rounded, 0.0)
                return ("i", rounded.astype(np.int64))
        # Non-finite/huge lanes: the scalar _safe() wrapper turns those into
        # float 0.0 — mixed-kind territory, let the per-lane path decide.

    # Generic path: apply the scalar implementation lane by lane on the
    # active lanes, passing plain Python numbers (the exact values the
    # scalar engines would see).
    lanes = np.arange(n) if mask is None else np.flatnonzero(mask)
    columns = []
    for kind, data in args:
        if isinstance(data, np.ndarray):
            columns.append(data[lanes].tolist())
        else:
            columns.append([data] * lanes.size)
    # Resolve the scalar implementation once instead of re-dispatching
    # through evaluate_builtin for every lane.
    implementation = _SCALAR_FUNCS.get(name) or _INTEGER_FUNCS.get(name) or _RELATIONAL_FUNCS.get(name)
    if implementation is not None:
        try:
            if len(columns) == 1:
                results = [implementation(value) for value in columns[0]]
            else:
                results = [implementation(*row) for row in zip(*columns)]
        except TypeError:
            # Arity/type abuse degrades to 0, like evaluate_builtin.
            results = [0] * lanes.size
    else:
        results = [evaluate_builtin(name, list(row)) for row in zip(*columns)]
    if not results:
        return ("i", 0)
    kinds = {type(r) for r in results}
    if any(issubclass(t, VectorValue) for t in kinds):
        raise LockstepBailout(f"builtin {name!r} produced a vector value")
    if all(issubclass(t, int) for t in kinds):
        kind, dtype = "i", np.int64
    elif all(issubclass(t, float) for t in kinds):
        kind, dtype = "f", np.float64
    else:
        raise LockstepBailout(f"builtin {name!r} produced mixed int/float lanes")
    try:
        values = np.array(results, dtype=dtype)
    except (OverflowError, ValueError) as error:
        raise LockstepBailout(f"builtin {name!r} result exceeds int64") from error
    if mask is None and lanes.size == n:
        return (kind, values)
    out = np.zeros(n, dtype=dtype)
    out[lanes] = values
    return (kind, out)


_VECTOR_SUFFIXES = ("2", "3", "4", "8", "16")


def convert_builtin(name: str, args: list):
    """Implement ``as_<type>`` and ``convert_<type>[_sat][_rte]`` built-ins."""
    target = name.split("_", 1)[1]
    for suffix in ("_sat", "_rte", "_rtz", "_rtp", "_rtn"):
        target = target.replace(suffix, "")
    width = 1
    for vector_suffix in _VECTOR_SUFFIXES:
        if target.endswith(vector_suffix) and target[: -len(vector_suffix)].isalpha():
            width = int(vector_suffix)
            target = target[: -len(vector_suffix)]
            break
    value = args[0] if args else 0
    if width > 1:
        if isinstance(value, VectorValue):
            return VectorValue(target, [convert_scalar(target, v) for v in value.values[:width]])
        return VectorValue.broadcast(target, width, convert_scalar(target, value))
    return convert_scalar(target, value)
