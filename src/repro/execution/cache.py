"""Content-addressed caching for the compiled kernel engine.

Compilation (AST → closures) costs roughly one tree walk; execution costs
thousands.  The paper's pipeline nevertheless re-executes the *same* kernel
many times — the dynamic checker runs four payloads per candidate, the
experiment harness measures every benchmark across several datasets, and
tests rebuild identical translation units over and over.  This module makes
all of that compile-once:

* :func:`compiled_kernel_for` memoizes :class:`CompiledKernel` instances,
  first by translation-unit identity (cheap, covers the execute-many case)
  and second by a content hash of the printed source (covers structurally
  identical units parsed from the same text).
* :func:`cached_compile_source` memoizes the full ``compile_source``
  frontend by source-text hash, so repeated measurement of the same kernel
  skips lexing/parsing/semantic analysis entirely.

Both caches are bounded LRU and safe to share process-wide.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from collections import OrderedDict

from repro.clc import ast_nodes as ast
from repro.errors import LockstepBailout
from repro.execution.compiler import CompiledKernel
from repro.execution.interpreter import ExecutionResult, KernelInterpreter
from repro.execution.memory import MemoryPool
from repro.execution.ndrange import NDRange
from repro.execution.vectorizer import VectorizedKernel, try_vectorize

#: Cached marker for "this kernel is outside the lockstep subset".
_NOT_VECTORIZABLE = object()


def _cache_capacity(default: int = 512) -> int:
    from repro.envutil import env_int

    return env_int("REPRO_COMPILE_CACHE_SIZE", default=default, minimum=8)


class CompilationCache:
    """Bounded, thread-safe cache of compiled kernel artifacts.

    Three artifact kinds share the cache structure: ``"closure"`` (the
    :class:`CompiledKernel` engine), ``"vectorized"`` (the lockstep
    :class:`VectorizedKernel` tier, where a *not vectorizable* verdict is
    cached too, so rejected kernels are analysed at most once), and
    ``"analysis"`` (the static analyzer's
    :class:`~repro.analysis.KernelVerdict`, consulted by the engine router
    before each lockstep attempt).
    """

    def __init__(self, max_entries: int | None = None):
        self._max_entries = max_entries or _cache_capacity()
        self._lock = threading.Lock()
        #: id(unit) -> (weakref-or-None, {(artifact, kernel_name, max_steps): artifact})
        self._by_identity: dict[int, tuple[object, dict]] = {}
        #: (content_hash, artifact, kernel_name, max_steps) -> artifact  (LRU)
        self._by_content: OrderedDict[tuple, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------

    @staticmethod
    def _build(unit, kernel_name, max_steps_per_item, artifact):
        if artifact == "vectorized":
            compiled = try_vectorize(unit, kernel_name, max_steps_per_item)
            return _NOT_VECTORIZABLE if compiled is None else compiled
        if artifact == "analysis":
            from repro.analysis import analyze_kernel

            return analyze_kernel(unit, kernel_name)
        return CompiledKernel(unit, kernel_name, max_steps_per_item)

    def get(
        self,
        unit: ast.TranslationUnit,
        kernel_name: str | None = None,
        max_steps_per_item: int = 50_000,
        artifact: str = "closure",
    ) -> object:
        """Return a compiled artifact for *unit*, compiling at most once.

        ``artifact="closure"`` yields a :class:`CompiledKernel`;
        ``artifact="vectorized"`` yields a :class:`VectorizedKernel` or the
        ``_NOT_VECTORIZABLE`` sentinel.
        """
        key = (artifact, kernel_name, max_steps_per_item)
        unit_id = id(unit)
        with self._lock:
            entry = self._by_identity.get(unit_id)
            if entry is not None:
                compiled = entry[1].get(key)
                if compiled is not None:
                    self.hits += 1
                    return compiled

        compiled = self._get_by_content(unit, kernel_name, max_steps_per_item, artifact)

        with self._lock:
            entry = self._by_identity.get(unit_id)
            if entry is None:
                ref = self._make_reaper(unit, unit_id)
                entry = (ref, {})
                self._by_identity[unit_id] = entry
                if ref is None and len(self._by_identity) > 4 * self._max_entries:
                    # No weakref support: fall back to wholesale pruning so
                    # unbounded unit churn cannot leak.
                    self._by_identity = {unit_id: entry}
            entry[1][key] = compiled
        return compiled

    def _make_reaper(self, unit, unit_id: int):
        by_identity = self._by_identity

        def reap(_ref, _id=unit_id, _table=by_identity):
            _table.pop(_id, None)

        try:
            return weakref.ref(unit, reap)
        except TypeError:
            return None

    def _get_by_content(self, unit, kernel_name, max_steps_per_item, artifact):
        digest = self._content_hash(unit)
        if digest is None:
            self.misses += 1
            return self._build(unit, kernel_name, max_steps_per_item, artifact)
        key = (digest, artifact, kernel_name, max_steps_per_item)
        with self._lock:
            compiled = self._by_content.get(key)
            if compiled is not None:
                self._by_content.move_to_end(key)
                self.hits += 1
                return compiled
        compiled = self._build(unit, kernel_name, max_steps_per_item, artifact)
        with self._lock:
            self.misses += 1
            self._by_content[key] = compiled
            while len(self._by_content) > self._max_entries:
                self._by_content.popitem(last=False)
        return compiled

    @staticmethod
    def _content_hash(unit: ast.TranslationUnit) -> str | None:
        try:
            from repro.clc.printer import SourcePrinter

            text = SourcePrinter().print_translation_unit(unit)
        except Exception:
            return None
        return hashlib.sha1(text.encode("utf-8", "replace")).hexdigest()

    def clear(self) -> None:
        with self._lock:
            self._by_identity.clear()
            self._by_content.clear()
            self.hits = 0
            self.misses = 0

    @property
    def size(self) -> int:
        with self._lock:
            return len(self._by_content) + sum(
                len(entry[1]) for entry in self._by_identity.values()
            )


#: The process-wide compilation cache used by the driver and experiments.
GLOBAL_COMPILATION_CACHE = CompilationCache()


def compiled_kernel_for(
    unit: ast.TranslationUnit,
    kernel_name: str | None = None,
    max_steps_per_item: int = 50_000,
) -> CompiledKernel:
    """Fetch (or compile) *unit*'s kernel from the process-wide cache."""
    return GLOBAL_COMPILATION_CACHE.get(unit, kernel_name, max_steps_per_item)


def analysis_verdict_for(
    unit: ast.TranslationUnit,
    kernel_name: str | None = None,
):
    """Fetch (or compute) the static analyzer's verdict for *unit*'s kernel.

    The verdict is cached alongside the compiled artifacts, so the router
    pays for the analysis once per kernel per process.  Step-budget knobs do
    not change the facts the analyzer gathers, so the cache key pins the
    step dimension to the 50k default.
    """
    return GLOBAL_COMPILATION_CACHE.get(unit, kernel_name, artifact="analysis")


def vectorized_kernel_for(
    unit: ast.TranslationUnit,
    kernel_name: str | None = None,
    max_steps_per_item: int = 50_000,
) -> VectorizedKernel | None:
    """Fetch (or build) the lockstep artifact; ``None`` if not vectorizable.

    The vectorizability verdict is cached alongside the closure artifact, so
    rejected kernels pay for the analysis once per process.
    """
    artifact = GLOBAL_COMPILATION_CACHE.get(
        unit, kernel_name, max_steps_per_item, artifact="vectorized"
    )
    return None if artifact is _NOT_VECTORIZABLE else artifact


# ---------------------------------------------------------------------------
# Frontend (source text -> CompilationResult) caching.
# ---------------------------------------------------------------------------

_SOURCE_LOCK = threading.Lock()
_SOURCE_CACHE: OrderedDict[tuple, object] = OrderedDict()


def cached_compile_source(source: str, **kwargs):
    """Memoized :func:`repro.clc.compile_source` keyed by text and options.

    Only hashable keyword options participate in the key; calls with
    unhashable options (e.g. a closure include resolver) are keyed by the
    option's qualified name, which is stable for the module-level resolvers
    used throughout the pipeline.
    """
    from repro.clc import compile_source

    key_parts = [hashlib.sha1(source.encode("utf-8", "replace")).hexdigest()]
    for name in sorted(kwargs):
        value = kwargs[name]
        try:
            hash(value)
        except TypeError:
            value = getattr(value, "__qualname__", repr(value))
        key_parts.append((name, value))
    key = tuple(key_parts)

    with _SOURCE_LOCK:
        if key in _SOURCE_CACHE:
            _SOURCE_CACHE.move_to_end(key)
            return _SOURCE_CACHE[key]

    result = compile_source(source, **kwargs)

    with _SOURCE_LOCK:
        _SOURCE_CACHE[key] = result
        capacity = _cache_capacity()
        while len(_SOURCE_CACHE) > capacity:
            _SOURCE_CACHE.popitem(last=False)
    return result


# ---------------------------------------------------------------------------
# Engine-routing convenience entry point.
# ---------------------------------------------------------------------------


def _static_routing_enabled() -> bool:
    """Whether ``engine="auto"`` consults the static analyzer before the
    lockstep attempt.  ``REPRO_STATIC_ROUTING=0`` disables routing for
    routed-vs-unrouted A/B comparisons; routing never changes outputs (all
    engines are bit-identical), only which engine runs first."""
    from repro.envutil import env_flag

    return env_flag("REPRO_STATIC_ROUTING", default=True)


def run_kernel(
    unit: ast.TranslationUnit,
    pool: MemoryPool,
    scalar_args: dict[str, object],
    ndrange: NDRange,
    kernel_name: str | None = None,
    max_steps_per_item: int = 50_000,
    engine: str = "auto",
) -> ExecutionResult:
    """Execute *kernel_name* (or the first kernel) of *unit*.

    Engines:

    * ``"auto"`` (default) — the vectorized lockstep tier when the kernel is
      in the vectorizable subset, transparently falling back to the closure
      engine on a :class:`~repro.errors.LockstepBailout` (the pool is
      untouched at bailout, so the fallback is exact); the closure engine
      otherwise.  Before attempting lockstep, the static analyzer's cached
      verdict is consulted: kernels it proves bailout-certain skip straight
      to the closure engine (disable with ``REPRO_STATIC_ROUTING=0``).
    * ``"vectorized"`` — like ``"auto"`` but always attempts lockstep,
      ignoring the static verdict.
    * ``"compiled"`` — the closure engine only.
    * ``"interpreter"`` — the legacy tree walker (differential tests).
    """
    if engine == "interpreter":
        interpreter = KernelInterpreter(unit, kernel_name, max_steps_per_item)
        return interpreter.execute(pool, scalar_args, ndrange)
    if engine in ("auto", "vectorized"):
        attempt = True
        if engine == "auto" and _static_routing_enabled():
            verdict = analysis_verdict_for(unit, kernel_name)
            if getattr(verdict, "skip_vectorization", False):
                from repro.analysis import ANALYSIS_STATS

                ANALYSIS_STATS.routed_skips += 1
                attempt = False
        if attempt:
            vectorized = vectorized_kernel_for(unit, kernel_name, max_steps_per_item)
            if vectorized is not None:
                try:
                    return vectorized.execute(pool, scalar_args, ndrange)
                except LockstepBailout:
                    pass
    compiled = compiled_kernel_for(unit, kernel_name, max_steps_per_item)
    return compiled.execute(pool, scalar_args, ndrange)
