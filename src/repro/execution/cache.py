"""Content-addressed caching for the compiled kernel engine.

Compilation (AST → closures) costs roughly one tree walk; execution costs
thousands.  The paper's pipeline nevertheless re-executes the *same* kernel
many times — the dynamic checker runs four payloads per candidate, the
experiment harness measures every benchmark across several datasets, and
tests rebuild identical translation units over and over.  This module makes
all of that compile-once:

* :func:`compiled_kernel_for` memoizes :class:`CompiledKernel` instances,
  first by translation-unit identity (cheap, covers the execute-many case)
  and second by a content hash of the printed source (covers structurally
  identical units parsed from the same text).
* :func:`cached_compile_source` memoizes the full ``compile_source``
  frontend by source-text hash, so repeated measurement of the same kernel
  skips lexing/parsing/semantic analysis entirely.

Both caches are bounded LRU and safe to share process-wide.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from collections import OrderedDict

from repro.clc import ast_nodes as ast
from repro.errors import LockstepBailout
from repro.execution.compiler import CompiledKernel
from repro.execution.interpreter import ExecutionResult, KernelInterpreter
from repro.execution.memory import MemoryPool
from repro.execution.ndrange import NDRange
from repro.execution.vectorizer import (
    VECTORIZER_STATS,
    NotVectorizable,
    VectorizedKernel,
    try_vectorize,
)

#: Cached marker for "this kernel is outside the lockstep subset".
_NOT_VECTORIZABLE = object()


def _cache_capacity(default: int = 512) -> int:
    from repro.envutil import env_int

    return env_int("REPRO_COMPILE_CACHE_SIZE", default=default, minimum=8)


class CompilationCache:
    """Bounded, thread-safe cache of compiled kernel artifacts.

    Four artifact kinds share the cache structure: ``"closure"`` (the
    :class:`CompiledKernel` engine), ``"vectorized"`` (the lockstep
    :class:`VectorizedKernel` tier, where a *not vectorizable* verdict is
    cached too, so rejected kernels are analysed at most once),
    ``"vectorized-specialized"`` (the analyzer-guided specialized lockstep
    instance, cached beside — never instead of — the generic one, so
    ``REPRO_SPECIALIZE=0`` and misprediction fallback always find the
    generic artifact under its unchanged key), and ``"analysis"`` (the
    static analyzer's :class:`~repro.analysis.KernelVerdict`, consulted by
    the engine router before each lockstep attempt).
    """

    def __init__(self, max_entries: int | None = None):
        self._max_entries = max_entries or _cache_capacity()
        self._lock = threading.Lock()
        #: id(unit) -> (weakref-or-None,
        #:              {(artifact, kernel_name, max_steps): artifact},
        #:              [digest computed?, content digest])
        self._by_identity: dict[int, tuple] = {}
        #: (content_hash, artifact, kernel_name, max_steps) -> artifact  (LRU)
        self._by_content: OrderedDict[tuple, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------

    def _build(self, unit, kernel_name, max_steps_per_item, artifact):
        if artifact == "vectorized":
            compiled = try_vectorize(unit, kernel_name, max_steps_per_item)
            return _NOT_VECTORIZABLE if compiled is None else compiled
        if artifact == "vectorized-specialized":
            # The specialized instance leans on the analyzer's verdict (an
            # instance-level fetch so the "analysis" artifact is shared);
            # ineligible kernels cache the sentinel and run the generic tier.
            verdict = self.get(unit, kernel_name, artifact="analysis")
            facts = getattr(verdict, "specialization", None)
            if facts is None or not facts.eligible:
                return _NOT_VECTORIZABLE
            try:
                compiled = VectorizedKernel(
                    unit, kernel_name, max_steps_per_item, specialization=facts
                )
            except NotVectorizable:
                return _NOT_VECTORIZABLE
            VECTORIZER_STATS.kernels_specialized += 1
            return compiled
        if artifact == "analysis":
            from repro.analysis import analyze_kernel

            return analyze_kernel(unit, kernel_name)
        return CompiledKernel(unit, kernel_name, max_steps_per_item)

    def get(
        self,
        unit: ast.TranslationUnit,
        kernel_name: str | None = None,
        max_steps_per_item: int = 50_000,
        artifact: str = "closure",
    ) -> object:
        """Return a compiled artifact for *unit*, compiling at most once.

        ``artifact="closure"`` yields a :class:`CompiledKernel`;
        ``artifact="vectorized"`` yields a :class:`VectorizedKernel` or the
        ``_NOT_VECTORIZABLE`` sentinel.
        """
        key = (artifact, kernel_name, max_steps_per_item)
        unit_id = id(unit)
        with self._lock:
            entry = self._by_identity.get(unit_id)
            if entry is not None:
                compiled = entry[1].get(key)
                if compiled is not None:
                    self.hits += 1
                    return compiled
            else:
                ref = self._make_reaper(unit, unit_id)
                # [digest computed?, digest] — one source print per unit even
                # when several artifact kinds (analysis, vectorized,
                # specialized, closure) miss at identity level in a row.
                entry = (ref, {}, [False, None])
                self._by_identity[unit_id] = entry
                if ref is None and len(self._by_identity) > 4 * self._max_entries:
                    # No weakref support: fall back to wholesale pruning so
                    # unbounded unit churn cannot leak.
                    self._by_identity = {unit_id: entry}

        digest_cell = entry[2]
        if not digest_cell[0]:
            digest_cell[1] = self._content_hash(unit)
            digest_cell[0] = True
        compiled = self._get_by_content(
            unit, kernel_name, max_steps_per_item, artifact, digest_cell[1]
        )

        with self._lock:
            entry[1][key] = compiled
        return compiled

    def _make_reaper(self, unit, unit_id: int):
        by_identity = self._by_identity

        def reap(_ref, _id=unit_id, _table=by_identity):
            _table.pop(_id, None)

        try:
            return weakref.ref(unit, reap)
        except TypeError:
            return None

    def _get_by_content(self, unit, kernel_name, max_steps_per_item, artifact, digest):
        if digest is None:
            self.misses += 1
            return self._build(unit, kernel_name, max_steps_per_item, artifact)
        key = (digest, artifact, kernel_name, max_steps_per_item)
        with self._lock:
            compiled = self._by_content.get(key)
            if compiled is not None:
                self._by_content.move_to_end(key)
                self.hits += 1
                return compiled
        compiled = self._build(unit, kernel_name, max_steps_per_item, artifact)
        with self._lock:
            self.misses += 1
            self._by_content[key] = compiled
            while len(self._by_content) > self._max_entries:
                self._by_content.popitem(last=False)
        return compiled

    @staticmethod
    def _content_hash(unit: ast.TranslationUnit) -> str | None:
        try:
            from repro.clc.printer import SourcePrinter

            text = SourcePrinter().print_translation_unit(unit)
        except Exception:
            return None
        return hashlib.sha1(text.encode("utf-8", "replace")).hexdigest()

    def clear(self) -> None:
        with self._lock:
            self._by_identity.clear()
            self._by_content.clear()
            self.hits = 0
            self.misses = 0

    @property
    def size(self) -> int:
        with self._lock:
            return len(self._by_content) + sum(
                len(entry[1]) for entry in self._by_identity.values()
            )


#: The process-wide compilation cache used by the driver and experiments.
GLOBAL_COMPILATION_CACHE = CompilationCache()


def compiled_kernel_for(
    unit: ast.TranslationUnit,
    kernel_name: str | None = None,
    max_steps_per_item: int = 50_000,
) -> CompiledKernel:
    """Fetch (or compile) *unit*'s kernel from the process-wide cache."""
    return GLOBAL_COMPILATION_CACHE.get(unit, kernel_name, max_steps_per_item)


def analysis_verdict_for(
    unit: ast.TranslationUnit,
    kernel_name: str | None = None,
):
    """Fetch (or compute) the static analyzer's verdict for *unit*'s kernel.

    The verdict is cached alongside the compiled artifacts, so the router
    pays for the analysis once per kernel per process.  Step-budget knobs do
    not change the facts the analyzer gathers, so the cache key pins the
    step dimension to the 50k default.
    """
    return GLOBAL_COMPILATION_CACHE.get(unit, kernel_name, artifact="analysis")


def vectorized_kernel_for(
    unit: ast.TranslationUnit,
    kernel_name: str | None = None,
    max_steps_per_item: int = 50_000,
) -> VectorizedKernel | None:
    """Fetch (or build) the lockstep artifact; ``None`` if not vectorizable.

    The vectorizability verdict is cached alongside the closure artifact, so
    rejected kernels pay for the analysis once per process.
    """
    artifact = GLOBAL_COMPILATION_CACHE.get(
        unit, kernel_name, max_steps_per_item, artifact="vectorized"
    )
    return None if artifact is _NOT_VECTORIZABLE else artifact


def specialized_kernel_for(
    unit: ast.TranslationUnit,
    kernel_name: str | None = None,
    max_steps_per_item: int = 50_000,
) -> VectorizedKernel | None:
    """Fetch (or build) the analyzer-specialized lockstep artifact.

    ``None`` when the kernel is not eligible — the analyzer did not prove it
    SAFE with uniform control — in which case the caller runs the generic
    lockstep tier.  The specialized instance is cached under its own
    artifact kind, beside (never instead of) the generic one.
    """
    artifact = GLOBAL_COMPILATION_CACHE.get(
        unit, kernel_name, max_steps_per_item, artifact="vectorized-specialized"
    )
    return None if artifact is _NOT_VECTORIZABLE else artifact


# ---------------------------------------------------------------------------
# Frontend (source text -> CompilationResult) caching.
# ---------------------------------------------------------------------------

_SOURCE_LOCK = threading.Lock()
_SOURCE_CACHE: OrderedDict[tuple, object] = OrderedDict()


def _source_cache_key(source: str, kwargs: dict) -> tuple:
    """The cache key ``cached_compile_source(source, **kwargs)`` uses.

    Only hashable keyword options participate in the key; calls with
    unhashable options (e.g. a closure include resolver) are keyed by the
    option's qualified name, which is stable for the module-level resolvers
    used throughout the pipeline.
    """
    key_parts = [hashlib.sha1(source.encode("utf-8", "replace")).hexdigest()]
    for name in sorted(kwargs):
        value = kwargs[name]
        try:
            hash(value)
        except TypeError:
            value = getattr(value, "__qualname__", repr(value))
        key_parts.append((name, value))
    return tuple(key_parts)


def _source_cache_put(key: tuple, result: object) -> None:
    with _SOURCE_LOCK:
        _SOURCE_CACHE[key] = result
        # A compilation is ~20KB in memory, so a deep cache is cheap — and it
        # must hold the full sample-phase working set (every accepted
        # candidate's seeded compilation, ~1000 at paper scale) long enough
        # for the execute phase to reuse it, or the LRU scan-thrashes and
        # every measurement recompiles from scratch.
        capacity = _cache_capacity(default=4096)
        while len(_SOURCE_CACHE) > capacity:
            _SOURCE_CACHE.popitem(last=False)


def cached_compile_source(source: str, **kwargs):
    """Memoized :func:`repro.clc.compile_source` keyed by text and options.

    See :func:`_source_cache_key` for how options participate in the key.
    """
    from repro.clc import compile_source

    key = _source_cache_key(source, kwargs)

    with _SOURCE_LOCK:
        if key in _SOURCE_CACHE:
            _SOURCE_CACHE.move_to_end(key)
            return _SOURCE_CACHE[key]

    result = compile_source(source, **kwargs)

    _source_cache_put(key, result)
    return result


def seed_compiled_source(source: str, result, **kwargs) -> None:
    """Insert *result* as the cached compilation of ``(source, kwargs)``.

    The synthesizer calls this when normalizing an accepted candidate: the
    rewriter's renamed AST *is* the parse of the normalized text it prints,
    so a :class:`~repro.clc.CompilationResult` built from it
    (:func:`repro.clc.compile_parsed_body`) stands in for the compile the
    measurement harness would otherwise pay per kernel in the execute
    phase.  The key must be built with exactly the keyword options the
    reader passes — the harness uses ``include_resolver=...`` and
    ``strict=False``.
    """
    _source_cache_put(_source_cache_key(source, kwargs), result)


# ---------------------------------------------------------------------------
# Engine-routing convenience entry point.
# ---------------------------------------------------------------------------


def _static_routing_enabled() -> bool:
    """Whether ``engine="auto"`` consults the static analyzer before the
    lockstep attempt.  ``REPRO_STATIC_ROUTING=0`` disables routing for
    routed-vs-unrouted A/B comparisons; routing never changes outputs (all
    engines are bit-identical), only which engine runs first."""
    from repro.envutil import env_flag

    return env_flag("REPRO_STATIC_ROUTING", default=True)


def _specialize_enabled() -> bool:
    """Whether ``engine="auto"`` tries the analyzer-specialized lockstep
    instance before the generic one.  ``REPRO_SPECIALIZE=0`` reproduces the
    generic tier's behavior exactly (same artifacts, same code paths);
    specialization never changes outputs, only how fast they are computed.
    Independent of ``REPRO_STATIC_ROUTING`` — routing decides *whether* to
    attempt lockstep, specialization decides *which* lockstep runs first."""
    from repro.envutil import env_flag

    return env_flag("REPRO_SPECIALIZE", default=True)


def run_kernel(
    unit: ast.TranslationUnit,
    pool: MemoryPool,
    scalar_args: dict[str, object],
    ndrange: NDRange,
    kernel_name: str | None = None,
    max_steps_per_item: int = 50_000,
    engine: str = "auto",
    arena=None,
) -> ExecutionResult:
    """Execute *kernel_name* (or the first kernel) of *unit*.

    Engines:

    * ``"auto"`` (default) — the vectorized lockstep tier when the kernel is
      in the vectorizable subset, transparently falling back to the closure
      engine on a :class:`~repro.errors.LockstepBailout` (the pool is
      untouched at bailout, so the fallback is exact); the closure engine
      otherwise.  Before attempting lockstep, the static analyzer's cached
      verdict is consulted: kernels it proves bailout-certain skip straight
      to the closure engine (disable with ``REPRO_STATIC_ROUTING=0``), and
      kernels it proves SAFE with uniform control run the analyzer-
      specialized lockstep instance first (disable with
      ``REPRO_SPECIALIZE=0``).  The fallback lattice is specialized →
      generic lockstep → closure; every tier is bit-identical.
    * ``"vectorized"`` — like ``"auto"`` but always attempts the *generic*
      lockstep tier, ignoring the static verdict (and the specializer).
    * ``"compiled"`` — the closure engine only.
    * ``"interpreter"`` — the legacy tree walker (differential tests).

    *arena* is an optional :class:`~repro.execution.memory.LaneArena` the
    lockstep tiers recycle their scratch NumPy allocations through.
    """
    if engine == "interpreter":
        interpreter = KernelInterpreter(unit, kernel_name, max_steps_per_item)
        return interpreter.execute(pool, scalar_args, ndrange)
    if engine in ("auto", "vectorized"):
        attempt = True
        if engine == "auto" and _static_routing_enabled():
            verdict = analysis_verdict_for(unit, kernel_name)
            if getattr(verdict, "skip_vectorization", False):
                from repro.analysis import ANALYSIS_STATS

                ANALYSIS_STATS.routed_skips += 1
                attempt = False
        if attempt:
            if engine == "auto" and _specialize_enabled():
                specialized = specialized_kernel_for(unit, kernel_name, max_steps_per_item)
                if specialized is not None:
                    try:
                        return specialized.execute(pool, scalar_args, ndrange, arena)
                    except LockstepBailout:
                        pass  # misprediction: re-run on the generic tier
            vectorized = vectorized_kernel_for(unit, kernel_name, max_steps_per_item)
            if vectorized is not None:
                try:
                    return vectorized.execute(pool, scalar_args, ndrange, arena)
                except LockstepBailout:
                    pass
    compiled = compiled_kernel_for(unit, kernel_name, max_steps_per_item)
    return compiled.execute(pool, scalar_args, ndrange)
