"""``repro.execution`` — a simulated OpenCL runtime.

Provides the NDRange kernel interpreter (a stand-in for a real OpenCL
driver stack), simulated memory objects, and analytic device models of the
paper's experimental platforms (Table 4).
"""

from repro.execution.device import (
    Device,
    DeviceType,
    KernelProfile,
    Platform,
    all_platforms,
    amd_platform,
    amd_tahiti_7970,
    intel_core_i7_3820,
    nvidia_gtx_970,
    nvidia_platform,
)
from repro.execution.interpreter import (
    ExecutionResult,
    ExecutionStats,
    KernelInterpreter,
    run_kernel,
)
from repro.execution.memory import Buffer, MemoryPool
from repro.execution.ndrange import NDRange
from repro.execution.values import VectorValue, convert_scalar, values_equal

__all__ = [
    "Buffer",
    "Device",
    "DeviceType",
    "ExecutionResult",
    "ExecutionStats",
    "KernelInterpreter",
    "KernelProfile",
    "MemoryPool",
    "NDRange",
    "Platform",
    "VectorValue",
    "all_platforms",
    "amd_platform",
    "amd_tahiti_7970",
    "convert_scalar",
    "intel_core_i7_3820",
    "nvidia_gtx_970",
    "nvidia_platform",
    "run_kernel",
    "values_equal",
]
