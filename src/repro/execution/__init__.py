"""``repro.execution`` — a simulated OpenCL runtime.

Provides the NDRange kernel interpreter (a stand-in for a real OpenCL
driver stack), simulated memory objects, and analytic device models of the
paper's experimental platforms (Table 4).
"""

from repro.execution.device import (
    Device,
    DeviceType,
    KernelProfile,
    Platform,
    all_platforms,
    amd_platform,
    amd_tahiti_7970,
    intel_core_i7_3820,
    nvidia_gtx_970,
    nvidia_platform,
)
from repro.execution.cache import (
    GLOBAL_COMPILATION_CACHE,
    CompilationCache,
    cached_compile_source,
    compiled_kernel_for,
    run_kernel,
    vectorized_kernel_for,
)
from repro.execution.compiler import CompiledKernel, compile_kernel
from repro.execution.vectorizer import (
    VECTORIZER_STATS,
    NotVectorizable,
    VectorizedKernel,
    try_vectorize,
)
from repro.execution.interpreter import (
    ExecutionResult,
    ExecutionStats,
    KernelInterpreter,
)
from repro.execution.interpreter import run_kernel as run_kernel_interpreted
from repro.execution.memory import Buffer, LockstepBuffer, MemoryPool
from repro.execution.ndrange import NDRange
from repro.execution.values import VectorValue, convert_scalar, values_equal

__all__ = [
    "Buffer",
    "CompilationCache",
    "CompiledKernel",
    "GLOBAL_COMPILATION_CACHE",
    "cached_compile_source",
    "compile_kernel",
    "compiled_kernel_for",
    "run_kernel_interpreted",
    "Device",
    "DeviceType",
    "ExecutionResult",
    "ExecutionStats",
    "KernelInterpreter",
    "KernelProfile",
    "LockstepBuffer",
    "MemoryPool",
    "NDRange",
    "NotVectorizable",
    "Platform",
    "VECTORIZER_STATS",
    "VectorValue",
    "VectorizedKernel",
    "try_vectorize",
    "vectorized_kernel_for",
    "all_platforms",
    "amd_platform",
    "amd_tahiti_7970",
    "convert_scalar",
    "intel_core_i7_3820",
    "nvidia_gtx_970",
    "nvidia_platform",
    "run_kernel",
    "values_equal",
]
