"""Runtime value semantics for the OpenCL kernel interpreter.

Scalars are represented as Python ``int``/``float`` (with C-style truncating
integer division applied by the interpreter), and OpenCL vector values are
represented by :class:`VectorValue`, which supports component access
(``.x``/``.y``/``.z``/``.w``, ``.s0``–``.sF``, ``.lo``/``.hi``, ``.even``/
``.odd``), element-wise arithmetic and scalar broadcasting — the parts of the
vector semantics exercised by kernels in the corpus and the benchmark suites
(see e.g. the partial-reduction kernel of Figure 6c in the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

_XYZW = {"x": 0, "y": 1, "z": 2, "w": 3}
_HEX_DIGITS = "0123456789abcdef"


def component_indices(member: str, width: int) -> list[int]:
    """Translate a vector member spelling into element indices.

    Supports ``x/y/z/w`` swizzles (``v.xy``), numbered components (``v.s0``,
    ``v.sF``), and the ``lo``/``hi``/``even``/``odd`` halves.

    Raises:
        ValueError: If the spelling is not a valid component selector.
    """
    name = member
    lowered = name.lower()
    if lowered in ("lo", "hi"):
        half = width // 2 or 1
        return list(range(0, half)) if lowered == "lo" else list(range(half, width))
    if lowered == "even":
        return list(range(0, width, 2))
    if lowered == "odd":
        return list(range(1, width, 2))
    if lowered.startswith("s") and len(lowered) > 1 and all(c in _HEX_DIGITS for c in lowered[1:]):
        return [int(c, 16) for c in lowered[1:]]
    if all(c in _XYZW for c in lowered):
        return [_XYZW[c] for c in lowered]
    raise ValueError(f"invalid vector component selector {member!r}")


@dataclass
class VectorValue:
    """An OpenCL vector value (``float4``, ``int16``, ...)."""

    element_kind: str
    values: list[float | int]

    @property
    def width(self) -> int:
        return len(self.values)

    @property
    def is_floating(self) -> bool:
        return self.element_kind in ("float", "double", "half")

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------

    @classmethod
    def broadcast(cls, element_kind: str, width: int, value: float | int) -> "VectorValue":
        """A vector with all *width* components equal to *value*."""
        cast = float(value) if element_kind in ("float", "double", "half") else int(value)
        return cls(element_kind, [cast] * width)

    @classmethod
    def from_components(cls, element_kind: str, width: int, components: list) -> "VectorValue":
        """Build a vector from a flat list of scalars and/or vectors."""
        flat: list[float | int] = []
        for component in components:
            if isinstance(component, VectorValue):
                flat.extend(component.values)
            else:
                flat.append(component)
        if len(flat) == 1:
            flat = flat * width
        if len(flat) < width:
            flat = flat + [0] * (width - len(flat))
        values = flat[:width]
        if element_kind in ("float", "double", "half"):
            values = [float(v) for v in values]
        else:
            values = [int(v) for v in values]
        return cls(element_kind, values)

    # ------------------------------------------------------------------
    # Component access.
    # ------------------------------------------------------------------

    def get_member(self, member: str):
        indices = component_indices(member, self.width)
        if len(indices) == 1:
            return self.values[indices[0]]
        return VectorValue(self.element_kind, [self.values[i] for i in indices])

    def with_member(self, member: str, value) -> "VectorValue":
        """Return a copy with the selected component(s) replaced by *value*."""
        indices = component_indices(member, self.width)
        new_values = list(self.values)
        if isinstance(value, VectorValue):
            for target, source in zip(indices, value.values):
                new_values[target] = source
        else:
            for target in indices:
                new_values[target] = value
        return VectorValue(self.element_kind, new_values)

    # ------------------------------------------------------------------
    # Arithmetic (element-wise, with scalar broadcasting).
    # ------------------------------------------------------------------

    def _coerce_other(self, other) -> list:
        if isinstance(other, VectorValue):
            if other.width != self.width:
                # OpenCL would reject this; be forgiving and broadcast/truncate.
                values = (other.values * self.width)[: self.width]
                return values
            return other.values
        return [other] * self.width

    def _apply(self, other, op) -> "VectorValue":
        other_values = self._coerce_other(other)
        result = [op(a, b) for a, b in zip(self.values, other_values)]
        return VectorValue(self.element_kind, result)

    def _rapply(self, other, op) -> "VectorValue":
        other_values = self._coerce_other(other)
        result = [op(b, a) for a, b in zip(self.values, other_values)]
        return VectorValue(self.element_kind, result)

    def __add__(self, other):
        return self._apply(other, lambda a, b: a + b)

    def __radd__(self, other):
        return self._rapply(other, lambda a, b: a + b)

    def __sub__(self, other):
        return self._apply(other, lambda a, b: a - b)

    def __rsub__(self, other):
        return self._rapply(other, lambda a, b: a - b)

    def __mul__(self, other):
        return self._apply(other, lambda a, b: a * b)

    def __rmul__(self, other):
        return self._rapply(other, lambda a, b: a * b)

    def __truediv__(self, other):
        return self._apply(other, _safe_div)

    def __rtruediv__(self, other):
        return self._rapply(other, _safe_div)

    def __mod__(self, other):
        return self._apply(other, _safe_mod)

    def __neg__(self):
        return VectorValue(self.element_kind, [-v for v in self.values])

    def map(self, func) -> "VectorValue":
        """Apply *func* to every component."""
        return VectorValue(self.element_kind, [func(v) for v in self.values])

    def reduce_sum(self) -> float | int:
        return sum(self.values)

    def __eq__(self, other) -> bool:  # structural equality for tests
        if isinstance(other, VectorValue):
            return self.element_kind == other.element_kind and self.values == other.values
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{v:g}" if isinstance(v, float) else str(v) for v in self.values)
        return f"({self.element_kind}{self.width})({inner})"


def _safe_div(a, b):
    """Division that never raises, mimicking GPU semantics for /0."""
    if b == 0:
        if isinstance(a, float) or isinstance(b, float):
            return math.inf if a > 0 else (-math.inf if a < 0 else math.nan)
        return 0
    if isinstance(a, int) and isinstance(b, int):
        return int(a / b)  # C truncation toward zero
    return a / b


def _safe_mod(a, b):
    if b == 0:
        return 0
    if isinstance(a, int) and isinstance(b, int):
        return int(math.fmod(a, b))
    return math.fmod(a, b)


_INT_RANGES = {
    "bool": (0, 1),
    "char": (-(2**7), 2**7 - 1),
    "uchar": (0, 2**8 - 1),
    "short": (-(2**15), 2**15 - 1),
    "ushort": (0, 2**16 - 1),
    "int": (-(2**31), 2**31 - 1),
    "uint": (0, 2**32 - 1),
    "long": (-(2**63), 2**63 - 1),
    "ulong": (0, 2**64 - 1),
    "size_t": (0, 2**64 - 1),
}


def wrap_integer(kind: str, value: int) -> int:
    """Wrap *value* into the representable range of integer type *kind*."""
    low, high = _INT_RANGES.get(kind, _INT_RANGES["int"])
    span = high - low + 1
    return (int(value) - low) % span + low


def convert_scalar(kind: str, value) -> float | int:
    """Convert a scalar runtime value to the OpenCL scalar type *kind*."""
    if isinstance(value, VectorValue):
        value = value.values[0] if value.values else 0
    if kind in ("float", "double", "half"):
        return float(value)
    if kind == "bool":
        return 1 if value else 0
    return wrap_integer(kind, int(value))


def values_equal(a, b, epsilon: float = 1e-4) -> bool:
    """Approximate equality used by the dynamic checker (§5.2).

    Floating point values are compared with a relative/absolute epsilon to
    accommodate rounding differences; NaNs compare equal to NaNs so that a
    deterministic kernel that produces NaN is not misclassified as
    non-deterministic.
    """
    if isinstance(a, VectorValue) and isinstance(b, VectorValue):
        return a.width == b.width and all(
            values_equal(x, y, epsilon) for x, y in zip(a.values, b.values)
        )
    if isinstance(a, VectorValue) or isinstance(b, VectorValue):
        return False
    if isinstance(a, float) or isinstance(b, float):
        a_f, b_f = float(a), float(b)
        if math.isnan(a_f) and math.isnan(b_f):
            return True
        if math.isinf(a_f) or math.isinf(b_f):
            return a_f == b_f
        return abs(a_f - b_f) <= max(epsilon, epsilon * max(abs(a_f), abs(b_f)))
    return a == b
