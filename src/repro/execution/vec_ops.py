"""Lockstep (SIMT) operator semantics over NumPy lane arrays.

The vectorized execution tier advances *all* work-items of an NDRange at
once: every runtime scalar becomes a lane value ``(kind, data)`` where
``kind`` is ``"i"`` (C integer, stored as int64) or ``"f"`` (C float,
stored as float64) and ``data`` is either a ``(n_lanes,)`` ndarray or a
plain Python number for values that are uniform across lanes.

Every function in this module mirrors one operation of
:mod:`repro.execution.ops` / :mod:`repro.execution.values` **exactly** —
the differential test suite asserts bit-identical buffers and stats against
the scalar engines, so "close enough" is not close enough.  Where int64 (or
float64 round-tripping) cannot represent what the arbitrary-precision
Python semantics would produce, the operation raises
:class:`~repro.errors.LockstepBailout` and the engine router re-executes
the kernel on the closure engine instead.  Uniform × uniform operations are
delegated straight to :func:`repro.execution.ops.apply_binary`, which makes
them exact by construction.

Masks select the active lanes: ``None`` means *all lanes active* (the hot
path — fully convergent control flow never materialises a mask), ``False``
means *no lane active*, and a bool ndarray means partial divergence.
Inactive lanes may hold garbage; guards and hazard checks only ever inspect
active lanes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LockstepBailout
from repro.execution.ops import apply_binary
from repro.execution.values import _INT_RANGES

INT_KIND = "i"
FLOAT_KIND = "f"

#: int64 bounds and the magnitude below which int<->float64 conversion and
#: float64 division of integers are exact.
_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1
_EXACT_INT = 2**53

_FLOAT_TYPE_KINDS = ("float", "double", "half")


# ---------------------------------------------------------------------------
# Masks.  None = all lanes, False = no lane, ndarray(bool) = some lanes.
# ---------------------------------------------------------------------------


def mask_any(mask) -> bool:
    if mask is None:
        return True
    if mask is False:
        return False
    return bool(mask.any())


def mask_count(mask, n: int) -> int:
    if mask is None:
        return n
    if mask is False:
        return 0
    return int(mask.sum())


def _normalized(combined: np.ndarray):
    """Collapse a bool mask to False (no lanes) or None (all lanes).

    Keeping fully-convergent control flow on the ``None`` fast path matters:
    an all-True ndarray mask would push every downstream node onto the
    masked gather/merge path for no semantic difference.
    """
    if not combined.any():
        return False
    if combined.all():
        return None
    return combined


def mask_and(mask, cond):
    """Intersect *mask* with a truthiness outcome (bool or bool ndarray)."""
    if cond is True:
        return mask
    if cond is False:
        return False
    if mask is None:
        return _normalized(cond)
    if mask is False:
        return False
    return _normalized(mask & cond)


def mask_andnot(mask, cond):
    if cond is True:
        return False
    if cond is False:
        return mask
    return mask_and(mask, ~cond)


def mask_minus(a, b):
    """Lanes active in mask *a* but not in mask *b* (both mask-valued)."""
    if b is None or a is False:
        return False
    if b is False:
        return a
    complement = ~b
    if a is not None:
        complement = a & complement
    return _normalized(complement)


def mask_or(a, b):
    if a is None or b is None:
        return None
    if a is False:
        return b
    if b is False:
        return a
    return _normalized(a | b)


def _active_any(flags, mask) -> bool:
    """Whether any *active* lane has its flag set (guards ignore dead lanes)."""
    if mask is None:
        return bool(np.any(flags))
    return bool(np.any(flags & mask))


# ---------------------------------------------------------------------------
# Lane-value helpers.
# ---------------------------------------------------------------------------


def is_uniform(data) -> bool:
    return not isinstance(data, np.ndarray)

def to_array(kind: str, data, n: int) -> np.ndarray:
    """Materialise a lane value as a full ``(n,)`` ndarray."""
    if isinstance(data, np.ndarray):
        return data
    dtype = np.float64 if kind == FLOAT_KIND else np.int64
    if kind == INT_KIND and not _I64_MIN <= data <= _I64_MAX:
        raise LockstepBailout(f"uniform integer {data} exceeds int64")
    return np.full(n, data, dtype=dtype)


def _np_operand(kind: str, data):
    """An operand numpy can broadcast: ndarray, or an int64-safe scalar."""
    if isinstance(data, np.ndarray):
        return data
    if kind == INT_KIND and not _I64_MIN <= data <= _I64_MAX:
        raise LockstepBailout(f"uniform integer {data} exceeds int64")
    return data


def kind_of_python(value) -> str:
    return FLOAT_KIND if isinstance(value, float) else INT_KIND


def truthy(kind: str, data):
    """C truthiness: bool for uniforms, bool ndarray for varying lanes."""
    if is_uniform(data):
        return bool(data)
    return data != 0


def to_float_data(kind: str, data):
    """``float(value)`` per lane (int64 -> float64 is correctly rounded,
    exactly like Python's ``float(int)``)."""
    if kind == FLOAT_KIND:
        return data
    if is_uniform(data):
        return float(data)
    return data.astype(np.float64)


def to_int_data(kind: str, data, mask):
    """``int(value)`` per lane: truncation toward zero, with bailout where
    Python would raise (non-finite) or the value exceeds int64 (uniform
    Python ints are arbitrary precision; downstream NumPy consumers are
    not)."""
    if kind == INT_KIND:
        if is_uniform(data) and not _I64_MIN <= data <= _I64_MAX:
            raise LockstepBailout("integer value exceeds int64")
        return data
    if is_uniform(data):
        if data != data or data in (float("inf"), float("-inf")):
            raise LockstepBailout("int() of non-finite float")
        if not _I64_MIN <= data < 2**63:
            raise LockstepBailout("int() of float exceeds int64")
        return int(data)
    finite = np.isfinite(data)
    if _active_any(~finite, mask):
        raise LockstepBailout("int() of non-finite float")
    truncated = np.trunc(data)
    if _active_any((truncated < _I64_MIN) | (truncated >= 2**63), mask):
        raise LockstepBailout("int() of float exceeds int64")
    # Dead lanes may hold NaN/inf; neutralise them before the cast so numpy
    # does not trip on undefined float->int conversions.
    if mask is not None:
        truncated = np.where(finite, truncated, 0.0)
    return truncated.astype(np.int64)


def as_index_data(kind: str, data, mask):
    """Mirror :func:`repro.execution.ops.as_index` for scalar lane values."""
    return to_int_data(kind, data, mask)


# ---------------------------------------------------------------------------
# Overflow guards (exact-or-bailout integer arithmetic).
# ---------------------------------------------------------------------------


def _guard_add(a, b, result, mask):
    overflow = ((a ^ result) & (b ^ result)) < 0
    if _active_any(overflow, mask):
        raise LockstepBailout("int64 overflow in addition")


def _guard_sub(a, b, result, mask):
    overflow = ((a ^ b) & (a ^ result)) < 0
    if _active_any(overflow, mask):
        raise LockstepBailout("int64 overflow in subtraction")


def _guard_mul(a, b, mask):
    approx = np.multiply(
        np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64)
    )
    if _active_any(np.abs(approx) >= 2.0**62, mask):
        raise LockstepBailout("possible int64 overflow in multiplication")


# ---------------------------------------------------------------------------
# Binary operators.
# ---------------------------------------------------------------------------

_COMPARISONS = ("==", "!=", "<", ">", "<=", ">=")

_COMPARE_UFUNC = {
    "==": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    ">": np.greater,
    "<=": np.less_equal,
    ">=": np.greater_equal,
}


_FLOAT_ARITH_UFUNC = {"+": np.add, "-": np.subtract, "*": np.multiply}


def binary(op: str, left, right, mask):
    """Evaluate *op* over lane values ``left``/``right`` = ``(kind, data)``.

    Mirrors :func:`repro.execution.ops.apply_binary` lane-wise; returns a
    ``(kind, data)`` pair.  Buffers and vectors never reach this function —
    the compiler handles pointer operands before calling in.
    """
    lk, ld = left
    rk, rd = right
    if is_uniform(ld) and is_uniform(rd):
        result = apply_binary(op, ld, rd)
        return (kind_of_python(result), result)

    if lk == FLOAT_KIND and rk == FLOAT_KIND:
        # Pure float64 lane arithmetic is IEEE-exact with no guards — the
        # hottest path in numeric kernels.
        ufunc = _FLOAT_ARITH_UFUNC.get(op)
        if ufunc is not None:
            return (FLOAT_KIND, ufunc(ld, rd))
        ufunc = _COMPARE_UFUNC.get(op)
        if ufunc is not None:
            return (INT_KIND, ufunc(ld, rd).astype(np.int64))

    if op in _COMPARISONS:
        return _compare(op, lk, ld, rk, rd, mask)

    if op == "+" or op == "-" or op == "*":
        return _arith(op, lk, ld, rk, rd, mask)
    if op == "/":
        return _divide(lk, ld, rk, rd, mask)
    if op == "%":
        return _modulo(lk, ld, rk, rd, mask)
    if op in ("&", "|", "^"):
        li = to_int_data(lk, ld, mask)
        ri = to_int_data(rk, rd, mask)
        ufunc = {"&": np.bitwise_and, "|": np.bitwise_or, "^": np.bitwise_xor}[op]
        return (INT_KIND, ufunc(_np_operand(INT_KIND, li), _np_operand(INT_KIND, ri)))
    if op == "<<":
        return _shift_left(lk, ld, rk, rd, mask)
    if op == ">>":
        li = _np_operand(INT_KIND, to_int_data(lk, ld, mask))
        shift = np.mod(_np_operand(INT_KIND, to_int_data(rk, rd, mask)), 64)
        return (INT_KIND, np.right_shift(li, shift))
    raise LockstepBailout(f"unsupported binary operator {op!r} in lockstep tier")


def _mixed_compare_guard(lk, ld, rk, rd, mask):
    """Python compares int to float exactly; numpy promotes both to float64.
    Bail out when an integer operand is large enough for that to differ."""
    if lk == rk:
        return
    int_side = ld if lk == INT_KIND else rd
    if is_uniform(int_side):
        if not -_EXACT_INT <= int_side <= _EXACT_INT:
            raise LockstepBailout("mixed int/float comparison beyond 2**53")
    elif _active_any(np.abs(int_side) >= _EXACT_INT, mask):
        raise LockstepBailout("mixed int/float comparison beyond 2**53")


def _compare(op, lk, ld, rk, rd, mask):
    _mixed_compare_guard(lk, ld, rk, rd, mask)
    outcome = _COMPARE_UFUNC[op](_np_operand(lk, ld), _np_operand(rk, rd))
    return (INT_KIND, outcome.astype(np.int64))


def _arith(op, lk, ld, rk, rd, mask):
    both_int = lk == INT_KIND and rk == INT_KIND
    a = _np_operand(lk, ld)
    b = _np_operand(rk, rd)
    if both_int:
        if op == "*":
            _guard_mul(a, b, mask)
            return (INT_KIND, np.multiply(a, b))
        if op == "+":
            result = np.add(a, b)
            _guard_add(np.asarray(a), np.asarray(b), result, mask)
            return (INT_KIND, result)
        result = np.subtract(a, b)
        _guard_sub(np.asarray(a), np.asarray(b), result, mask)
        return (INT_KIND, result)
    # Mixed or float arithmetic: Python converts the int side with float()
    # (correctly rounded), numpy casts int64 -> float64 identically.
    ufunc = {"+": np.add, "-": np.subtract, "*": np.multiply}[op]
    return (FLOAT_KIND, ufunc(to_float_data(lk, a), to_float_data(rk, b)))


def _check_exact_int_operands(ld, rd, mask, what: str) -> None:
    """Both operands must convert to float64 exactly (|value| < 2**53)."""
    flags = None
    for data in (ld, rd):
        if is_uniform(data):
            if not -_EXACT_INT <= data <= _EXACT_INT:
                raise LockstepBailout(f"integer {what} beyond 2**53")
        else:
            outside = np.abs(data) >= _EXACT_INT
            flags = outside if flags is None else (flags | outside)
    if flags is not None and _active_any(flags, mask):
        raise LockstepBailout(f"integer {what} beyond 2**53")


def _divide(lk, ld, rk, rd, mask):
    both_int = lk == INT_KIND and rk == INT_KIND
    if both_int:
        # ops.apply_binary computes int(left / right): a correctly-rounded
        # float64 quotient truncated toward zero.  float64(l)/float64(r) is
        # the same correctly-rounded quotient only while the operands convert
        # exactly.
        _check_exact_int_operands(ld, rd, mask, "division")
        lf = to_float_data(lk, _np_operand(lk, ld))
        rf = to_float_data(rk, _np_operand(rk, rd))
        with np.errstate(divide="ignore", invalid="ignore"):
            quotient = np.trunc(np.divide(lf, rf))
        quotient = np.where(np.asarray(rf) == 0.0, 0.0, quotient)
        return (INT_KIND, quotient.astype(np.int64))
    lf = to_float_data(lk, _np_operand(lk, ld))
    rf = to_float_data(rk, _np_operand(rk, rd))
    with np.errstate(divide="ignore", invalid="ignore"):
        quotient = np.divide(lf, rf)
    zero = np.asarray(rf) == 0.0
    if np.any(zero):
        lf_arr = np.asarray(lf, dtype=np.float64)
        patched = np.where(
            lf_arr > 0, np.inf, np.where(lf_arr < 0, -np.inf, np.nan)
        )
        quotient = np.where(zero, patched, quotient)
    return (FLOAT_KIND, quotient)


def _modulo(lk, ld, rk, rd, mask):
    both_int = lk == INT_KIND and rk == INT_KIND
    if both_int:
        _check_exact_int_operands(ld, rd, mask, "modulo")
        a = _np_operand(lk, ld)
        b = _np_operand(rk, rd)
        with np.errstate(divide="ignore", invalid="ignore"):
            quotient = np.trunc(np.divide(np.asarray(a, np.float64), np.asarray(b, np.float64)))
        quotient = np.where(np.asarray(b) == 0, 0.0, quotient).astype(np.int64)
        remainder = np.asarray(a) - quotient * np.asarray(b)
        return (INT_KIND, np.where(np.asarray(b) == 0, 0, remainder))
    # ops.apply_binary returns the *int* 0 when the divisor is zero but
    # math.fmod (a float) otherwise — representable only when the zero-divisor
    # lanes are uniform across the active set.
    rf = to_float_data(rk, _np_operand(rk, rd))
    zero = np.asarray(rf) == 0.0
    if zero.ndim == 0:
        if bool(zero):
            return (INT_KIND, 0)
    elif _active_any(zero, mask):
        if not _active_any(~zero, mask):
            return (INT_KIND, 0)
        raise LockstepBailout("per-lane int/float kind split in % by zero")
    lf = to_float_data(lk, _np_operand(lk, ld))
    # math.fmod raises ValueError on an infinite dividend where np.fmod
    # would return NaN; the scalar engines crash there, so refuse.
    if is_uniform(lf):
        if lf == float("inf") or lf == float("-inf"):
            raise LockstepBailout("fmod of an infinite dividend")
    elif _active_any(np.isinf(lf), mask):
        raise LockstepBailout("fmod of an infinite dividend")
    with np.errstate(invalid="ignore"):
        return (FLOAT_KIND, np.fmod(lf, rf))


def _shift_left(lk, ld, rk, rd, mask):
    li = _np_operand(INT_KIND, to_int_data(lk, ld, mask))
    shift = np.mod(_np_operand(INT_KIND, to_int_data(rk, rd, mask)), 64)
    result = np.left_shift(li, shift)
    # Exact only when shifting back recovers the operand (no bits lost off
    # the top, sign preserved); Python would widen instead of wrapping.
    if _active_any(np.right_shift(result, shift) != li, mask):
        raise LockstepBailout("int64 overflow in left shift")
    return (INT_KIND, result)


# ---------------------------------------------------------------------------
# Unary operators.
# ---------------------------------------------------------------------------


def negate(value, mask):
    kind, data = value
    if is_uniform(data):
        return (kind, -data)
    if kind == INT_KIND and _active_any(data == _I64_MIN, mask):
        raise LockstepBailout("negation of int64 minimum")
    return (kind, -data)


def logical_not(value):
    kind, data = value
    outcome = truthy(kind, data)
    if isinstance(outcome, bool):
        return (INT_KIND, 0 if outcome else 1)
    return (INT_KIND, (~outcome).astype(np.int64))


def invert(value, mask):
    kind, data = value
    as_int = to_int_data(kind, data, mask)
    if is_uniform(as_int):
        return (INT_KIND, ~as_int)
    return (INT_KIND, np.invert(as_int))


# ---------------------------------------------------------------------------
# Type conversion (mirror of values.convert_scalar).
# ---------------------------------------------------------------------------


def convert(target_kind: str, value, mask):
    """``convert_scalar(target_kind, value)`` per lane."""
    kind, data = value
    if target_kind in _FLOAT_TYPE_KINDS:
        return (FLOAT_KIND, to_float_data(kind, data))
    if target_kind == "bool":
        outcome = truthy(kind, data)
        if isinstance(outcome, bool):
            return (INT_KIND, 1 if outcome else 0)
        return (INT_KIND, outcome.astype(np.int64))
    low, high = _INT_RANGES.get(target_kind, _INT_RANGES["int"])
    if is_uniform(data):
        # Uniform Python ints wrap with arbitrary precision, exactly like
        # wrap_integer — including values far outside int64 (which is why
        # the int kind bypasses to_int_data's int64 guard here).
        as_int = data if kind == INT_KIND else to_int_data(kind, data, mask)
        wrapped = (as_int - low) % (high - low + 1) + low
        if not _I64_MIN <= wrapped <= _I64_MAX:
            raise LockstepBailout(f"{target_kind} cast result exceeds int64")
        return (INT_KIND, wrapped)
    as_int = to_int_data(kind, data, mask)
    if low == _I64_MIN and high == _I64_MAX:  # long: int64 is already the range
        return (INT_KIND, as_int)
    if high == 2**64 - 1:  # ulong/size_t: negative values wrap beyond int64
        if _active_any(as_int < 0, mask):
            raise LockstepBailout("negative value wrapped into ulong range")
        return (INT_KIND, as_int)
    span = high - low + 1
    remainder = np.mod(as_int, span)
    return (INT_KIND, np.where(remainder > high, remainder - span, remainder))


# ---------------------------------------------------------------------------
# Masked merge (SSA-style select used by stores and ternaries).
# ---------------------------------------------------------------------------


def select(cond_mask, when_true, when_false, n: int):
    """Per-lane select between two lane values of the *same* kind."""
    tk, td = when_true
    fk, fd = when_false
    if tk != fk:
        raise LockstepBailout("per-lane int/float kind divergence in select")
    if cond_mask is None:
        return when_true
    if cond_mask is False:
        return when_false
    return (tk, np.where(cond_mask, to_array(tk, td, n), to_array(fk, fd, n)))


def merge(mask, new, old, n: int):
    """Keep *new* on active lanes and *old* elsewhere (assignment merge)."""
    if mask is None:
        return new
    if mask is False:
        return old
    return select(mask, new, old, n)
