"""An NDRange interpreter for OpenCL kernels.

This module stands in for a real OpenCL runtime: it executes a parsed kernel
over every work-item of an :class:`NDRange`, with global and local memory,
work-group barriers, vector values and the common built-in functions.  Two
things come out of an execution:

* the final contents of all buffers — consumed by the dynamic checker
  (§5.2 of the paper) to decide whether a synthesized kernel "performs
  useful work", and
* dynamic execution statistics (instruction counts, memory traffic, branch
  divergence) — consumed by the device cost models to estimate CPU and GPU
  runtimes for the predictive-modeling experiments.

Work-items of a work-group are interleaved co-operatively: each work-item
runs as a Python generator that yields at ``barrier()`` calls, so kernels
that stage data through ``__local`` memory behave correctly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clc import ast_nodes as ast
from repro.clc.builtins import SYNC_FUNCTIONS, WORK_ITEM_FUNCTIONS
from repro.clc.types import AddressSpace, PointerType, VectorType
from repro.errors import ExecutionError, KernelRuntimeError, KernelTimeoutError
from repro.execution.builtins_impl import evaluate_builtin
from repro.execution.memory import Buffer, MemoryPool
from repro.execution.ndrange import NDRange
from repro.execution.ops import (
    BARRIER as _BARRIER,
    BreakSignal as _Break,
    ContinueSignal as _Continue,
    ReturnSignal as _Return,
    apply_atomic,
    apply_binary,
    as_index,
    coerce_declared,
    collect_memory_stats,
    element_kind_of,
    eval_sizeof,
    lookup_constant_or_zero,
    store_to_identifier,
    truthy,
)
from repro.execution.values import VectorValue, convert_scalar


@dataclass
class ExecutionStats:
    """Aggregate dynamic statistics from one kernel execution."""

    work_items: int = 0
    work_groups: int = 0
    dynamic_operations: int = 0
    global_reads: int = 0
    global_writes: int = 0
    local_accesses: int = 0
    private_accesses: int = 0
    branch_evaluations: int = 0
    divergent_branch_sites: int = 0
    branch_sites: int = 0
    barriers_hit: int = 0
    helper_calls: int = 0
    out_of_bounds_accesses: int = 0

    @property
    def global_accesses(self) -> int:
        return self.global_reads + self.global_writes

    @property
    def divergence_fraction(self) -> float:
        """Fraction of static branch sites that saw divergent outcomes."""
        if self.branch_sites == 0:
            return 0.0
        return self.divergent_branch_sites / self.branch_sites

    @property
    def operations_per_work_item(self) -> float:
        if self.work_items == 0:
            return 0.0
        return self.dynamic_operations / self.work_items


@dataclass
class ExecutionResult:
    """The outcome of executing one kernel over one NDRange."""

    kernel_name: str
    pool: MemoryPool
    stats: ExecutionStats
    returned_scalars: dict[str, object] = field(default_factory=dict)

    def buffer(self, name: str) -> Buffer:
        found = self.pool.get(name)
        if found is None:
            raise KeyError(name)
        return found


#: Bound on nested user-function calls per work-item.  OpenCL C forbids
#: recursion outright, so any chain this deep is a non-conformant kernel
#: (e.g. a synthesized kernel calling itself); both execution engines raise
#: :class:`ExecutionError` at the same depth so the driver excludes the
#: kernel identically whichever engine ran it — instead of dying on a
#: Python ``RecursionError`` mid-measurement.
MAX_CALL_DEPTH = 64


@dataclass
class _WorkItem:
    """Per-work-item execution context."""

    global_id: tuple[int, ...]
    local_id: tuple[int, ...]
    group_id: tuple[int, ...]
    env: dict = field(default_factory=dict)
    steps: int = 0
    call_depth: int = 0


class KernelInterpreter:
    """Executes one kernel of a translation unit over an NDRange."""

    def __init__(
        self,
        unit: ast.TranslationUnit,
        kernel_name: str | None = None,
        max_steps_per_item: int = 50_000,
    ):
        self._unit = unit
        kernels = unit.kernels
        if not kernels:
            raise ExecutionError("translation unit contains no kernels")
        if kernel_name is None:
            self._kernel = kernels[0]
        else:
            self._kernel = unit.kernel(kernel_name)
        self._functions = {f.name: f for f in unit.functions if f.body is not None}
        self._max_steps = max_steps_per_item
        self._globals_env: dict = {}
        self._stats = ExecutionStats()
        self._branch_outcomes: dict[tuple[int, int], set[bool]] = {}
        self._ndrange: NDRange | None = None
        self._group_locals: dict = {}

    @property
    def kernel(self) -> ast.FunctionDecl:
        return self._kernel

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------

    def execute(
        self,
        pool: MemoryPool,
        scalar_args: dict[str, object],
        ndrange: NDRange,
    ) -> ExecutionResult:
        """Run the kernel.

        Args:
            pool: Memory pool containing a buffer for every pointer argument
                (keyed by argument name).
            scalar_args: Values for the scalar arguments, keyed by name.
            ndrange: The launch configuration.

        Returns:
            An :class:`ExecutionResult` with final buffer contents and stats.

        Raises:
            KernelTimeoutError: If any work-item exceeds the step budget.
            ExecutionError: For launch-configuration problems.
        """
        self._stats = ExecutionStats()
        self._branch_outcomes = {}
        self._ndrange = ndrange
        self._init_globals()

        for buffer in pool.buffers.values():
            buffer.stats.reads = 0
            buffer.stats.writes = 0
            buffer.stats.out_of_bounds = 0

        for group_index, group_id in enumerate(ndrange.group_ids()):
            self._stats.work_groups += 1
            self._group_locals = {}
            self._execute_group(group_index, group_id, pool, scalar_args, ndrange)

        self._collect_memory_stats(pool)
        self._stats.branch_sites = len(self._branch_outcomes)
        self._stats.divergent_branch_sites = sum(
            1 for outcomes in self._branch_outcomes.values() if len(outcomes) > 1
        )
        return ExecutionResult(kernel_name=self._kernel.name, pool=pool, stats=self._stats)

    # ------------------------------------------------------------------
    # Group / work-item scheduling.
    # ------------------------------------------------------------------

    def _execute_group(
        self,
        group_index: int,
        group_id: tuple[int, ...],
        pool: MemoryPool,
        scalar_args: dict[str, object],
        ndrange: NDRange,
    ) -> None:
        items: list[_WorkItem] = []
        runners = []
        for local_id in ndrange.local_ids():
            global_id = ndrange.global_id(group_id, local_id)
            if not ndrange.in_range(global_id):
                continue
            item = _WorkItem(global_id=global_id, local_id=local_id, group_id=group_id)
            item.env = self._bind_arguments(pool, scalar_args)
            items.append(item)
            runners.append(self._run_work_item(item, group_index))
            self._stats.work_items += 1

        # Co-operative lock-step execution: advance every work-item until it
        # either finishes or reaches a barrier; repeat until all finish.
        active = list(runners)
        while active:
            still_active = []
            for runner in active:
                try:
                    signal = next(runner)
                    while signal is not _BARRIER:
                        signal = next(runner)
                    still_active.append(runner)
                except StopIteration:
                    pass
            if still_active:
                self._stats.barriers_hit += 1
            active = still_active

    def _bind_arguments(self, pool: MemoryPool, scalar_args: dict[str, object]) -> dict:
        env: dict = dict(self._globals_env)
        for parameter in self._kernel.parameters:
            name = parameter.name
            if isinstance(parameter.declared_type, PointerType):
                buffer = pool.get(name)
                if buffer is None:
                    raise ExecutionError(f"no buffer bound for pointer argument {name!r}")
                env[name] = buffer
            else:
                if name in scalar_args:
                    env[name] = scalar_args[name]
                else:
                    env[name] = 0
        return env

    def _run_work_item(self, item: _WorkItem, group_index: int):
        try:
            yield from self._exec_statement(self._kernel.body, item, group_index)
        except _Return:
            pass
        except (_Break, _Continue):
            pass

    def _init_globals(self) -> None:
        self._globals_env = {}
        for declaration in self._unit.globals:
            declarator = declaration.declarator
            if declarator is None:
                continue
            value = 0
            if declarator.initializer is not None:
                dummy = _WorkItem(global_id=(0,), local_id=(0,), group_id=(0,))
                dummy.env = dict(self._globals_env)
                try:
                    value = self._eval(declarator.initializer, dummy, 0)
                except Exception:
                    value = 0
            self._globals_env[declarator.name] = value

    def _collect_memory_stats(self, pool: MemoryPool) -> None:
        collect_memory_stats(self._stats, pool, self._group_locals)

    # ------------------------------------------------------------------
    # Statements (generators: yield _BARRIER at work-group barriers).
    # ------------------------------------------------------------------

    def _bump(self, item: _WorkItem, cost: int = 1) -> None:
        item.steps += cost
        self._stats.dynamic_operations += cost
        if item.steps > self._max_steps:
            raise KernelTimeoutError(
                f"work-item {item.global_id} exceeded {self._max_steps} steps "
                f"in kernel {self._kernel.name!r}"
            )

    def _exec_statement(self, statement: ast.Statement | None, item: _WorkItem, group_index: int):
        if statement is None or isinstance(statement, ast.EmptyStmt):
            return
        self._bump(item)

        if isinstance(statement, ast.CompoundStmt):
            for child in statement.statements:
                yield from self._exec_statement(child, item, group_index)
        elif isinstance(statement, ast.DeclStmt):
            self._exec_declaration(statement, item, group_index)
        elif isinstance(statement, ast.ExprStmt):
            if statement.expression is not None:
                if self._is_barrier_call(statement.expression):
                    self._stats.dynamic_operations += 1
                    yield _BARRIER
                else:
                    self._eval(statement.expression, item, group_index)
        elif isinstance(statement, ast.IfStmt):
            condition = self._truthy(self._eval(statement.condition, item, group_index))
            self._record_branch(statement, group_index, condition)
            if condition:
                yield from self._exec_statement(statement.then_branch, item, group_index)
            elif statement.else_branch is not None:
                yield from self._exec_statement(statement.else_branch, item, group_index)
        elif isinstance(statement, ast.ForStmt):
            yield from self._exec_for(statement, item, group_index)
        elif isinstance(statement, ast.WhileStmt):
            yield from self._exec_while(statement, item, group_index)
        elif isinstance(statement, ast.DoWhileStmt):
            yield from self._exec_do_while(statement, item, group_index)
        elif isinstance(statement, ast.ReturnStmt):
            value = (
                self._eval(statement.value, item, group_index)
                if statement.value is not None
                else None
            )
            raise _Return(value)
        elif isinstance(statement, ast.BreakStmt):
            raise _Break()
        elif isinstance(statement, ast.ContinueStmt):
            raise _Continue()
        elif isinstance(statement, ast.SwitchStmt):
            yield from self._exec_switch(statement, item, group_index)
        else:
            raise KernelRuntimeError(f"cannot execute statement {type(statement).__name__}")

    def _exec_declaration(self, statement: ast.DeclStmt, item: _WorkItem, group_index: int) -> None:
        for declarator in statement.declarators:
            if declarator.address_space is AddressSpace.LOCAL or (
                isinstance(declarator.declared_type, PointerType)
                and declarator.declared_type.address_space is AddressSpace.LOCAL
                and declarator.array_size is not None
            ):
                item.env[declarator.name] = self._group_local_buffer(declarator, item, group_index)
                continue
            if declarator.array_size is not None:
                size = int(self._eval(declarator.array_size, item, group_index) or 0)
                element_kind, width = self._element_kind_of(declarator)
                item.env[declarator.name] = Buffer(
                    declarator.name,
                    max(size, 1),
                    element_kind,
                    width,
                    address_space="private",
                )
                continue
            value = 0
            if declarator.initializer is not None:
                value = self._eval(declarator.initializer, item, group_index)
            value = self._coerce_declared(declarator, value)
            item.env[declarator.name] = value

    def _group_local_buffer(self, declarator: ast.Declarator, item: _WorkItem, group_index: int):
        existing = self._group_locals.get(declarator.name)
        if existing is not None:
            return existing
        size = 64
        if declarator.array_size is not None:
            size = int(self._eval(declarator.array_size, item, group_index) or 64)
        element_kind, width = self._element_kind_of(declarator)
        buffer = Buffer(declarator.name, max(size, 1), element_kind, width, address_space="local")
        self._group_locals[declarator.name] = buffer
        return buffer

    @staticmethod
    def _element_kind_of(declarator: ast.Declarator) -> tuple[str, int]:
        return element_kind_of(declarator)

    def _coerce_declared(self, declarator: ast.Declarator, value):
        return coerce_declared(declarator, value)

    def _exec_for(self, statement: ast.ForStmt, item: _WorkItem, group_index: int):
        if statement.init is not None:
            # Init is a statement but cannot contain barriers in practice.
            for _ in self._exec_statement(statement.init, item, group_index):
                pass
        while True:
            if statement.condition is not None:
                condition = self._truthy(self._eval(statement.condition, item, group_index))
                self._stats.branch_evaluations += 1
                if not condition:
                    break
            try:
                yield from self._exec_statement(statement.body, item, group_index)
            except _Break:
                break
            except _Continue:
                pass
            if statement.increment is not None:
                self._eval(statement.increment, item, group_index)

    def _exec_while(self, statement: ast.WhileStmt, item: _WorkItem, group_index: int):
        while True:
            condition = self._truthy(self._eval(statement.condition, item, group_index))
            self._stats.branch_evaluations += 1
            if not condition:
                break
            try:
                yield from self._exec_statement(statement.body, item, group_index)
            except _Break:
                break
            except _Continue:
                continue

    def _exec_do_while(self, statement: ast.DoWhileStmt, item: _WorkItem, group_index: int):
        while True:
            try:
                yield from self._exec_statement(statement.body, item, group_index)
            except _Break:
                break
            except _Continue:
                pass
            condition = self._truthy(self._eval(statement.condition, item, group_index))
            self._stats.branch_evaluations += 1
            if not condition:
                break

    def _exec_switch(self, statement: ast.SwitchStmt, item: _WorkItem, group_index: int):
        value = self._eval(statement.condition, item, group_index)
        matched = False
        try:
            for case in statement.cases:
                if not matched:
                    if case.value is None:
                        matched = True
                    else:
                        case_value = self._eval(case.value, item, group_index)
                        matched = value == case_value
                if matched:
                    for child in case.body:
                        yield from self._exec_statement(child, item, group_index)
        except _Break:
            pass

    def _record_branch(self, statement: ast.Statement, group_index: int, outcome: bool) -> None:
        """Record an ``if`` outcome for SIMD-divergence accounting.

        Only data-dependent ``if`` statements are tracked: loop conditions
        trivially see both outcomes over the iterations of a single work-item
        and would otherwise always read as "divergent".
        """
        self._stats.branch_evaluations += 1
        key = (id(statement), group_index)
        self._branch_outcomes.setdefault(key, set()).add(outcome)

    @staticmethod
    def _is_barrier_call(expression: ast.Expression) -> bool:
        return isinstance(expression, ast.Call) and expression.callee in SYNC_FUNCTIONS

    # ------------------------------------------------------------------
    # Expressions.
    # ------------------------------------------------------------------

    def _truthy(self, value) -> bool:
        return truthy(value)

    def _eval(self, expression: ast.Expression, item: _WorkItem, group_index: int):
        self._bump(item)

        if isinstance(expression, ast.IntLiteral):
            return expression.value
        if isinstance(expression, ast.FloatLiteral):
            return expression.value
        if isinstance(expression, ast.CharLiteral):
            text = expression.value.strip("'")
            return ord(text[0]) if text else 0
        if isinstance(expression, ast.StringLiteral):
            return 0
        if isinstance(expression, ast.Identifier):
            return self._lookup(expression.name, item)
        if isinstance(expression, ast.BinaryOp):
            return self._eval_binary(expression, item, group_index)
        if isinstance(expression, ast.UnaryOp):
            return self._eval_unary(expression, item, group_index)
        if isinstance(expression, ast.PostfixOp):
            return self._eval_postfix(expression, item, group_index)
        if isinstance(expression, ast.Assignment):
            return self._eval_assignment(expression, item, group_index)
        if isinstance(expression, ast.TernaryOp):
            condition = self._truthy(self._eval(expression.condition, item, group_index))
            branch = expression.if_true if condition else expression.if_false
            return self._eval(branch, item, group_index)
        if isinstance(expression, ast.Call):
            return self._eval_call(expression, item, group_index)
        if isinstance(expression, ast.Index):
            return self._eval_index(expression, item, group_index)
        if isinstance(expression, ast.Member):
            return self._eval_member(expression, item, group_index)
        if isinstance(expression, ast.Cast):
            return self._eval_cast(expression, item, group_index)
        if isinstance(expression, ast.VectorLiteral):
            return self._eval_vector_literal(expression, item, group_index)
        if isinstance(expression, ast.SizeOf):
            return self._eval_sizeof(expression)
        if isinstance(expression, ast.InitializerList):
            return [self._eval(element, item, group_index) for element in expression.elements]
        raise KernelRuntimeError(f"cannot evaluate expression {type(expression).__name__}")

    def _lookup(self, name: str, item: _WorkItem):
        if name in item.env:
            return item.env[name]
        if name in self._group_locals:
            return self._group_locals[name]
        return lookup_constant_or_zero(name)

    def _eval_binary(self, expression: ast.BinaryOp, item: _WorkItem, group_index: int):
        op = expression.op
        if op == "&&":
            left = self._truthy(self._eval(expression.left, item, group_index))
            if not left:
                return 0
            return 1 if self._truthy(self._eval(expression.right, item, group_index)) else 0
        if op == "||":
            left = self._truthy(self._eval(expression.left, item, group_index))
            if left:
                return 1
            return 1 if self._truthy(self._eval(expression.right, item, group_index)) else 0
        if op == ",":
            self._eval(expression.left, item, group_index)
            return self._eval(expression.right, item, group_index)

        left = self._eval(expression.left, item, group_index)
        right = self._eval(expression.right, item, group_index)
        return self._apply_binary(op, left, right)

    def _apply_binary(self, op: str, left, right):
        return apply_binary(op, left, right)

    def _eval_unary(self, expression: ast.UnaryOp, item: _WorkItem, group_index: int):
        op = expression.op
        if op in ("++", "--"):
            current = self._eval(expression.operand, item, group_index)
            updated = self._apply_binary("+" if op == "++" else "-", current, 1)
            self._store_to(expression.operand, updated, item, group_index)
            return updated
        if op == "*":
            pointer = self._eval(expression.operand, item, group_index)
            if isinstance(pointer, Buffer):
                return pointer.load(0)
            return pointer
        if op == "&":
            # Address-of: return the lvalue location as (buffer, index) when
            # possible so atomics can operate on it; otherwise the value.
            location = self._resolve_location(expression.operand, item, group_index)
            if location is not None:
                return location
            return self._eval(expression.operand, item, group_index)
        operand = self._eval(expression.operand, item, group_index)
        if op == "-":
            return -operand if not isinstance(operand, Buffer) else operand
        if op == "+":
            return operand
        if op == "!":
            return 0 if self._truthy(operand) else 1
        if op == "~":
            if isinstance(operand, VectorValue):
                return operand.map(lambda v: ~int(v))
            return ~int(operand)
        raise KernelRuntimeError(f"unsupported unary operator {op!r}")

    def _eval_postfix(self, expression: ast.PostfixOp, item: _WorkItem, group_index: int):
        current = self._eval(expression.operand, item, group_index)
        updated = self._apply_binary("+" if expression.op == "++" else "-", current, 1)
        self._store_to(expression.operand, updated, item, group_index)
        return current

    def _eval_assignment(self, expression: ast.Assignment, item: _WorkItem, group_index: int):
        value = self._eval(expression.value, item, group_index)
        if expression.op != "=":
            operator = expression.op[:-1]
            current = self._eval(expression.target, item, group_index)
            value = self._apply_binary(operator, current, value)
        self._store_to(expression.target, value, item, group_index)
        return value

    def _store_to(self, target: ast.Expression, value, item: _WorkItem, group_index: int) -> None:
        if isinstance(target, ast.Identifier):
            store_to_identifier(item.env, target.name, value)
            return
        if isinstance(target, ast.Index):
            base = self._eval(target.base, item, group_index)
            index = self._eval(target.index, item, group_index)
            if isinstance(base, Buffer):
                base.store(self._as_index(index), value)
            elif isinstance(base, VectorValue) and isinstance(target.base, ast.Identifier):
                item.env[target.base.name] = base.with_member(f"s{int(index):x}", value)
            return
        if isinstance(target, ast.Member):
            base_expr = target.base
            base = self._eval(base_expr, item, group_index)
            if isinstance(base, VectorValue):
                updated = base.with_member(target.member, value)
                self._store_to(base_expr, updated, item, group_index)
            return
        if isinstance(target, ast.UnaryOp) and target.op == "*":
            pointer = self._eval(target.operand, item, group_index)
            if isinstance(pointer, Buffer):
                pointer.store(0, value)
            elif isinstance(pointer, tuple) and len(pointer) == 2 and isinstance(pointer[0], Buffer):
                pointer[0].store(pointer[1], value)
            return
        if isinstance(target, ast.Cast):
            self._store_to(target.operand, value, item, group_index)
            return
        # Silently drop stores to unsupported lvalues (struct fields etc.).

    @staticmethod
    def _as_index(value) -> int:
        return as_index(value)

    def _resolve_location(self, expression: ast.Expression, item: _WorkItem, group_index: int):
        """Resolve an lvalue to a (buffer, index) pair, used by atomics."""
        if isinstance(expression, ast.Index):
            base = self._eval(expression.base, item, group_index)
            index = self._eval(expression.index, item, group_index)
            if isinstance(base, Buffer):
                return (base, self._as_index(index))
        if isinstance(expression, ast.Identifier):
            value = item.env.get(expression.name)
            if isinstance(value, Buffer):
                return (value, 0)
        return None

    def _eval_index(self, expression: ast.Index, item: _WorkItem, group_index: int):
        base = self._eval(expression.base, item, group_index)
        index = self._eval(expression.index, item, group_index)
        if isinstance(base, Buffer):
            return base.load(self._as_index(index))
        if isinstance(base, VectorValue):
            position = self._as_index(index) % max(1, base.width)
            return base.values[position]
        if isinstance(base, list):
            position = self._as_index(index)
            if 0 <= position < len(base):
                return base[position]
            return 0
        return 0

    def _eval_member(self, expression: ast.Member, item: _WorkItem, group_index: int):
        base = self._eval(expression.base, item, group_index)
        if isinstance(base, VectorValue):
            try:
                return base.get_member(expression.member)
            except ValueError:
                return 0
        if isinstance(base, dict):
            return base.get(expression.member, 0)
        return 0

    def _eval_cast(self, expression: ast.Cast, item: _WorkItem, group_index: int):
        value = self._eval(expression.operand, item, group_index)
        target = expression.target_type
        if isinstance(value, Buffer):
            return value
        if isinstance(target, VectorType):
            if isinstance(value, VectorValue):
                return VectorValue(
                    target.element.kind,
                    [convert_scalar(target.element.kind, v) for v in value.values[: target.width]],
                )
            return VectorValue.broadcast(target.element.kind, target.width, value)
        if isinstance(target, PointerType):
            return value
        if target is not None and hasattr(target, "kind"):
            return convert_scalar(target.kind, value)
        return value

    def _eval_vector_literal(self, expression: ast.VectorLiteral, item: _WorkItem, group_index: int):
        target = expression.target_type
        assert isinstance(target, VectorType)
        components = [self._eval(element, item, group_index) for element in expression.elements]
        return VectorValue.from_components(target.element.kind, target.width, components)

    @staticmethod
    def _eval_sizeof(expression: ast.SizeOf) -> int:
        return eval_sizeof(expression.target_type_name)

    # ------------------------------------------------------------------
    # Calls.
    # ------------------------------------------------------------------

    def _eval_call(self, expression: ast.Call, item: _WorkItem, group_index: int):
        name = expression.callee

        if name in WORK_ITEM_FUNCTIONS:
            dimension = 0
            if expression.arguments:
                dimension = self._as_index(self._eval(expression.arguments[0], item, group_index))
            return self._work_item_query(name, dimension, item)

        if name in SYNC_FUNCTIONS:
            # Barriers inside expressions are executed as no-ops; statement-level
            # barriers are handled by the scheduler.
            for argument in expression.arguments:
                self._eval(argument, item, group_index)
            return 0

        if name.startswith(("atomic_", "atom_")):
            return self._eval_atomic(name, expression, item, group_index)

        if name.startswith("vload"):
            return self._eval_vload(name, expression, item, group_index)
        if name.startswith("vstore"):
            return self._eval_vstore(name, expression, item, group_index)

        arguments = [self._eval(argument, item, group_index) for argument in expression.arguments]

        if name in self._functions:
            return self._call_user_function(self._functions[name], arguments, item, group_index)

        try:
            return evaluate_builtin(name, arguments)
        except KeyError:
            # Unknown call (e.g. undeclared function in lenient mode): return 0.
            return 0

    def _work_item_query(self, name: str, dimension: int, item: _WorkItem):
        assert self._ndrange is not None
        ndrange = self._ndrange
        dimension = max(0, min(dimension, ndrange.work_dim - 1))
        if name == "get_global_id":
            return item.global_id[dimension]
        if name == "get_local_id":
            return item.local_id[dimension]
        if name == "get_group_id":
            return item.group_id[dimension]
        if name == "get_global_size":
            return ndrange.global_size[dimension]
        if name == "get_local_size":
            return ndrange.effective_local_size[dimension]
        if name == "get_num_groups":
            return ndrange.num_groups[dimension]
        if name == "get_work_dim":
            return ndrange.work_dim
        if name == "get_global_offset":
            return 0
        return 0

    def _eval_atomic(self, name: str, expression: ast.Call, item: _WorkItem, group_index: int):
        if not expression.arguments:
            return 0
        location = self._resolve_location(self._strip_address_of(expression.arguments[0]), item, group_index)
        operand = 1
        if len(expression.arguments) > 1:
            operand = self._eval(expression.arguments[1], item, group_index)
        if location is None:
            return 0
        buffer, index = location
        old = buffer.load(index)
        operation = name.replace("atomic_", "").replace("atom_", "")
        if operation == "cmpxchg":
            compare = operand
            value = (
                self._eval(expression.arguments[2], item, group_index)
                if len(expression.arguments) > 2
                else old
            )
            new = value if old == compare else old
        else:
            new = apply_atomic(operation, old, operand)
        buffer.store(index, new)
        return old

    def _strip_address_of(self, expression: ast.Expression) -> ast.Expression:
        if isinstance(expression, ast.UnaryOp) and expression.op == "&":
            return expression.operand
        return expression

    def _eval_vload(self, name: str, expression: ast.Call, item: _WorkItem, group_index: int):
        width = int(name.replace("vload", "") or 1)
        offset = self._as_index(self._eval(expression.arguments[0], item, group_index)) if expression.arguments else 0
        pointer = (
            self._eval(expression.arguments[1], item, group_index)
            if len(expression.arguments) > 1
            else None
        )
        if isinstance(pointer, Buffer):
            values = [pointer.load(offset * width + i) for i in range(width)]
            kind = pointer.element_kind
            return VectorValue(kind, [float(v) if kind in ("float", "double") else v for v in values])
        return VectorValue.broadcast("float", width, 0.0)

    def _eval_vstore(self, name: str, expression: ast.Call, item: _WorkItem, group_index: int):
        width = int(name.replace("vstore", "") or 1)
        if len(expression.arguments) < 3:
            return 0
        value = self._eval(expression.arguments[0], item, group_index)
        offset = self._as_index(self._eval(expression.arguments[1], item, group_index))
        pointer = self._eval(expression.arguments[2], item, group_index)
        if isinstance(pointer, Buffer):
            values = value.values if isinstance(value, VectorValue) else [value] * width
            for position, element in enumerate(values[:width]):
                pointer.store(offset * width + position, element)
        return 0

    def _call_user_function(
        self, function: ast.FunctionDecl, arguments: list, item: _WorkItem, group_index: int
    ):
        self._stats.helper_calls += 1
        item.call_depth += 1
        if item.call_depth > MAX_CALL_DEPTH:
            raise ExecutionError(
                f"call depth exceeded {MAX_CALL_DEPTH} in kernel "
                f"{self._kernel.name!r} (recursion is not valid OpenCL C)"
            )
        saved_env = item.env
        call_env = dict(self._globals_env)
        for parameter, argument in zip(function.parameters, arguments):
            call_env[parameter.name] = argument
        item.env = call_env
        result = None
        try:
            # Helper functions cannot contain work-group barriers (the paper's
            # synthesizer never emits them there); drain the generator.
            for _ in self._exec_statement(function.body, item, group_index):
                pass
        except _Return as returned:
            result = returned.value
        finally:
            item.env = saved_env
            item.call_depth -= 1
        return result


def run_kernel(
    unit: ast.TranslationUnit,
    pool: MemoryPool,
    scalar_args: dict[str, object],
    ndrange: NDRange,
    kernel_name: str | None = None,
    max_steps_per_item: int = 50_000,
) -> ExecutionResult:
    """Convenience wrapper: execute *kernel_name* (or the first kernel) of *unit*."""
    interpreter = KernelInterpreter(unit, kernel_name, max_steps_per_item)
    return interpreter.execute(pool, scalar_args, ndrange)
