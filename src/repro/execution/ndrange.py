"""NDRange descriptions for kernel launches."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExecutionError


@dataclass(frozen=True)
class NDRange:
    """The iteration space of one kernel launch.

    Attributes:
        global_size: Work-items per dimension (1–3 dimensions).
        local_size: Work-items per work-group per dimension.  Must divide the
            global size in every dimension (padded by the caller otherwise).
    """

    global_size: tuple[int, ...]
    local_size: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if not 1 <= len(self.global_size) <= 3:
            raise ExecutionError("NDRange must have 1 to 3 dimensions")
        if any(g <= 0 for g in self.global_size):
            raise ExecutionError("global size must be positive in every dimension")
        if self.local_size is not None:
            if len(self.local_size) != len(self.global_size):
                raise ExecutionError("local size dimensionality must match global size")
            if any(l <= 0 for l in self.local_size):
                raise ExecutionError("local size must be positive in every dimension")

    @classmethod
    def linear(cls, global_size: int, local_size: int | None = None) -> "NDRange":
        """A 1D NDRange, the common case throughout the paper."""
        if local_size is None:
            return cls((global_size,))
        return cls((global_size,), (local_size,))

    @property
    def work_dim(self) -> int:
        return len(self.global_size)

    @property
    def total_work_items(self) -> int:
        total = 1
        for size in self.global_size:
            total *= size
        return total

    @property
    def effective_local_size(self) -> tuple[int, ...]:
        """The local size, defaulting to min(64, global) in each dimension."""
        if self.local_size is not None:
            return tuple(min(l, g) for l, g in zip(self.local_size, self.global_size))
        return tuple(min(64, g) for g in self.global_size)

    @property
    def work_group_size(self) -> int:
        total = 1
        for size in self.effective_local_size:
            total *= size
        return total

    @property
    def num_groups(self) -> tuple[int, ...]:
        return tuple(
            (g + l - 1) // l for g, l in zip(self.global_size, self.effective_local_size)
        )

    @property
    def total_groups(self) -> int:
        total = 1
        for count in self.num_groups:
            total *= count
        return total

    def group_ids(self):
        """Yield every work-group id tuple in row-major order."""
        counts = self.num_groups
        if self.work_dim == 1:
            for x in range(counts[0]):
                yield (x,)
        elif self.work_dim == 2:
            for y in range(counts[1]):
                for x in range(counts[0]):
                    yield (x, y)
        else:
            for z in range(counts[2]):
                for y in range(counts[1]):
                    for x in range(counts[0]):
                        yield (x, y, z)

    def local_ids(self):
        """Yield every local id tuple within a work-group in row-major order."""
        local = self.effective_local_size
        if self.work_dim == 1:
            for x in range(local[0]):
                yield (x,)
        elif self.work_dim == 2:
            for y in range(local[1]):
                for x in range(local[0]):
                    yield (x, y)
        else:
            for z in range(local[2]):
                for y in range(local[1]):
                    for x in range(local[0]):
                        yield (x, y, z)

    def global_id(self, group_id: tuple[int, ...], local_id: tuple[int, ...]) -> tuple[int, ...]:
        local = self.effective_local_size
        return tuple(g * l + i for g, l, i in zip(group_id, local, local_id))

    def in_range(self, global_id: tuple[int, ...]) -> bool:
        """Whether *global_id* falls inside the global size (groups may be padded)."""
        return all(i < g for i, g in zip(global_id, self.global_size))
