"""Divergence analysis: which values are uniform across work-items.

This is the foundation pass of the static analyzer.  It abstractly
interprets one kernel (and, transitively, the helper functions it calls)
over the :mod:`repro.analysis.lattice` chain, seeded at the work-item query
builtins: ``get_global_id`` produces an AFFINE (per-lane injective) value,
``get_local_id``/``get_group_id`` produce DIVERGENT values (they repeat
across work-groups), and the size queries produce UNIFORM values.

Alongside the per-variable environment the pass records everything the
downstream passes consume:

* every shared-memory access (buffer, read/write/atomic, subscript
  divergence and canonical subscript form, control divergence at the site),
* every ``barrier()`` site with the control divergence it executes under,
* a set of construct flags (atomics, pointer tricks, vector operations,
  helper pathologies) the bailout classifier maps onto concrete
  :class:`~repro.errors.LockstepBailout` / ``NotVectorizable`` causes,
* a worst-case per-work-item step estimate for the lockstep step budget.

Loops are analysed to a fixpoint (the lattice is a finite chain, so this
terminates); access sites and step costs are only recorded on the final,
stable pass so each static site is counted exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.lattice import FIXPOINT_LIMIT, Div, join
from repro.clc import ast_nodes as ast
from repro.clc.builtins import ATOMIC_FUNCTIONS, WORK_ITEM_FUNCTIONS
from repro.clc.types import AddressSpace

#: Assumed trip count for loops bounded by a uniform, non-literal value.
#: Payloads give integral scalar arguments the value of the global size
#: (<= 256 everywhere in the pipeline), so 2048 leaves an 8x margin while
#: keeping single uniform loops inside the SAFE step allowance.
ASSUMED_UNIFORM_TRIPS = 2048.0

#: Trip estimate for shift-stepped loops (``s >>= 1`` style reductions).
SHIFT_LOOP_TRIPS = 64.0


# ---------------------------------------------------------------------------
# Facts produced by the pass.
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class AccessSite:
    """One static shared-memory access."""

    buffer: str
    space: str  # "global" | "local"
    kind: str  # "read" | "write" | "atomic"
    index_div: Div
    index_form: str | None
    control_div: Div
    loop_depth: int
    atomic_op: str | None = None
    #: True when the site may not execute: it sits under a data-dependent
    #: (lane-uniform) guard, or after a ``return``.  Certainty claims in the
    #: race pass require unconditional sites.
    conditional: bool = False


@dataclass(slots=True)
class BarrierSite:
    """One static ``barrier()`` call."""

    control_div: Div
    in_helper: bool = False
    #: Same may-not-execute marker as :attr:`AccessSite.conditional`; a
    #: divergent barrier is only a *certain* bailout when it must be reached.
    conditional: bool = False


@dataclass
class KernelFacts:
    """Everything the divergence pass learned about one kernel."""

    kernel_name: str
    accesses: list[AccessSite] = field(default_factory=list)
    barriers: list[BarrierSite] = field(default_factory=list)
    flags: set[str] = field(default_factory=set)
    #: Worst-case interpreter steps per work item (``inf`` = unbounded).
    step_estimate: float = 0.0
    #: Join of every branch/loop/switch condition's divergence anywhere in
    #: the kernel (helpers included).  ``<= UNIFORM`` proves all control
    #: flow is lane-uniform — the gate for mask-elided specialization.
    control_ceiling: Div = Div.BOTTOM
    #: Buffer name -> address space, for every shared buffer seen.
    buffer_spaces: dict[str, str] = field(default_factory=dict)
    #: Final abstract environment of the kernel body.
    env: dict[str, Div] = field(default_factory=dict)

    def accesses_for(self, buffer: str) -> list[AccessSite]:
        return [site for site in self.accesses if site.buffer == buffer]


# Construct flags.  Grouped by how the classifier treats them; the value is
# the flag string recorded in :attr:`KernelFacts.flags`.
FLAG_ADDRESS_OF = "address-of"
FLAG_POINTER_DEREF = "pointer-deref"
FLAG_POINTER_DECL = "pointer-decl"
FLAG_POINTER_REBIND_DIVERGENT = "pointer-rebind-divergent"
FLAG_POINTER_TERNARY_DIVERGENT = "pointer-ternary-divergent"
FLAG_VECTOR_LITERAL = "vector-literal"
FLAG_VECTOR_DECL = "vector-decl"
FLAG_VECTOR_CAST = "vector-cast"
FLAG_VECTOR_PARAM = "vector-param"
FLAG_VECTOR_ELEMENT_POINTER = "vector-element-pointer"
FLAG_VECTOR_MEMBER_STORE = "vector-member-store"
FLAG_VLOAD_VSTORE = "vload-vstore"
FLAG_ATOMIC = "atomic"
FLAG_ATOMIC_ORDER_DEPENDENT = "atomic-order-dependent"
FLAG_ATOMIC_RESULT_USED = "atomic-result-used"
FLAG_ATOMIC_PRIVATE = "atomic-private"
FLAG_RECURSIVE_HELPER = "recursive-helper"
FLAG_HELPER_FALLOFF = "helper-falloff"
FLAG_HELPER_BARRIER = "helper-barrier"
FLAG_LOCAL_ARRAY = "local-array"
FLAG_PRIVATE_ARRAY_DIVERGENT_SIZE = "private-array-divergent-size"
FLAG_PRIVATE_ARRAY_DIVERGENT_DECL = "private-array-divergent-decl"
FLAG_OVERFLOW_RISK = "overflow-risk"
FLAG_UNKNOWN_CONSTRUCT = "unknown-construct"

_UNIFORM_QUERY_FORMS = {
    "get_global_size": "gsz",
    "get_local_size": "lsz",
    "get_num_groups": "ngrp",
    "get_work_dim": "wdim",
    "get_global_offset": "goff",
}

#: Cast targets wide enough to preserve per-lane injectivity of an id.
_WIDE_INT_CASTS = frozenset(
    {"int", "uint", "long", "ulong", "size_t", "unsigned", "unsigned int",
     "unsigned long", "ptrdiff_t", "intptr_t", "uintptr_t"}
)

_ORDER_INDEPENDENT_ATOMICS = frozenset(
    {"add", "sub", "inc", "dec", "min", "max", "and", "or", "xor", "xchg"}
)


def _is_pointer_type(declared) -> bool:
    return declared is not None and bool(getattr(declared, "is_pointer", False))


def _is_vector_type(declared) -> bool:
    return declared is not None and bool(getattr(declared, "is_vector", False))


def _space_name(address_space) -> str:
    if address_space in (AddressSpace.LOCAL,):
        return "local"
    return "global"


#: Queries whose dimension argument decides the dispatch rank in the driver.
_DIMENSIONED_ID_QUERIES = ("get_global_id", "get_group_id", "get_local_id")


def _queries_dimension_one(kernel: ast.FunctionDecl) -> bool:
    """Same detection the driver uses to pick a 2-D NDRange for a kernel."""
    if kernel.body is None:
        return False
    for node in ast.walk(kernel.body):
        if isinstance(node, ast.Call) and node.callee in _DIMENSIONED_ID_QUERIES:
            if node.arguments and getattr(node.arguments[0], "value", None) == 1:
                return True
    return False


@dataclass(slots=True)
class _Value:
    """Abstract value: divergence plus an optional canonical form string.

    Forms make subscript equality decidable (``out[gid + k]`` twice is the
    same cell per lane); they are only tracked while the defining chain is
    simple and are dropped (None) on anything loop-carried or reassigned.
    """

    div: Div
    form: str | None = None
    #: (canonical buffer name, space) when this value *is* a pointer — a bare
    #: buffer name, or pointer arithmetic that the lockstep engines collapse
    #: back to the pointer itself.  The mark travels through arithmetic and
    #: casts exactly like the runtime's ``_POINTERISH`` values; the only two
    #: places the engines dereference such a value (a store coerce and a
    #: builtin argument) record the hazard-tracked element-0 read.
    pointer: tuple[str, str] | None = None


_UNKNOWN = _Value(Div.DIVERGENT, None)


class DivergenceAnalysis:
    """Runs the divergence pass over one kernel of a translation unit."""

    def __init__(self, unit: ast.TranslationUnit, kernel_name: str | None = None):
        self.unit = unit
        kernels = unit.kernels
        if not kernels:
            raise ValueError("translation unit contains no kernels")
        self.kernel = unit.kernel(kernel_name) if kernel_name else kernels[0]
        self.functions = {
            f.name: f for f in unit.functions if f.body is not None and not f.is_kernel
        }
        #: Mirrors ``HostDriver._kernel_work_dim``: a dimension-1 work-item
        #: query in the kernel body means the driver dispatches a 2-D range.
        #: Linearised over the lane set, no single dimension's global id is
        #: injective there, so the AFFINE seeding must be switched off.
        self.multi_dim = _queries_dimension_one(self.kernel)

    def run(self) -> KernelFacts:
        facts = KernelFacts(kernel_name=self.kernel.name)
        analyzer = _FunctionAnalyzer(self, facts, active=frozenset())
        analyzer.bind_kernel_parameters(self.kernel)
        analyzer.analyze_body(self.kernel.body)
        facts.env = {name: value.div for name, value in analyzer.env.items()}
        facts.step_estimate = analyzer.steps
        return facts


class _FunctionAnalyzer:
    """Abstract interpreter for one function body (kernel or helper)."""

    def __init__(
        self,
        analysis: DivergenceAnalysis,
        facts: KernelFacts,
        active: frozenset[str],
        base_control: Div = Div.UNIFORM,
        in_helper: bool = False,
        recording: bool = True,
        base_conditional: bool = False,
    ):
        self.analysis = analysis
        self.facts = facts
        self.active = active
        self.env: dict[str, _Value] = {}
        #: name -> (canonical buffer name, space) for pointer-valued names.
        self.buffers: dict[str, tuple[str, str]] = {}
        self.private_arrays: set[str] = set()
        self.control: list[Div] = [base_control]
        #: Residual divergence after a divergent break/continue (restored at
        #: the enclosing loop's exit).
        self.extra_control: Div = Div.BOTTOM
        #: Residual divergence after a divergent early return — sticky for
        #: the rest of the function: once some lanes have left, every later
        #: barrier executes with a partial mask.
        self.return_taint: Div = Div.BOTTOM
        #: Depth of enclosing data-dependent lane-uniform guards (an ``if``
        #: whose condition is uniform executes all-or-nothing at runtime).
        self.guard_depth = 0
        #: Sticky after any ``return`` statement: later sites may be dead.
        self.maybe_returned = False
        #: Inherited may-not-execute context (helper called under a guard).
        self.base_conditional = base_conditional
        self.in_helper = in_helper
        self.recording = recording
        self.loop_depth = 0
        self.steps = 0.0
        self.trip_multiplier = 1.0
        self.return_div: Div = Div.BOTTOM

    # -- setup ----------------------------------------------------------

    def bind_kernel_parameters(self, kernel: ast.FunctionDecl) -> None:
        for parameter in kernel.parameters:
            if not parameter.name:
                continue
            declared = parameter.declared_type
            if _is_pointer_type(declared):
                if _is_vector_type(getattr(declared, "pointee", None)):
                    self.flag(FLAG_VECTOR_ELEMENT_POINTER)
                space = _space_name(parameter.address_space)
                self.buffers[parameter.name] = (parameter.name, space)
                self.facts.buffer_spaces.setdefault(parameter.name, space)
                if space == "local":
                    self.flag(FLAG_LOCAL_ARRAY)
            elif _is_vector_type(declared):
                self.flag(FLAG_VECTOR_PARAM)
                self.env[parameter.name] = _Value(Div.UNIFORM)
            else:
                # Scalar arguments are identical on every lane; their form is
                # their own name, so `a[gid + n]` matches `b[gid + n]`.
                self.env[parameter.name] = _Value(Div.UNIFORM, parameter.name)

    # -- bookkeeping ----------------------------------------------------

    def flag(self, name: str) -> None:
        self.facts.flags.add(name)

    def note_control(self, div: Div) -> None:
        """Fold one branch condition into the kernel's control ceiling."""
        if self.recording:
            self.facts.control_ceiling = join(self.facts.control_ceiling, div)

    @property
    def control_div(self) -> Div:
        return join(self.extra_control, self.return_taint, *self.control)

    @property
    def conditional(self) -> bool:
        return self.base_conditional or self.guard_depth > 0 or self.maybe_returned

    def tick(self, count: float = 1.0) -> None:
        if self.recording:
            self.steps += count * self.trip_multiplier

    def record_access(
        self,
        buffer: str,
        space: str,
        kind: str,
        index: _Value,
        atomic_op: str | None = None,
    ) -> None:
        if not self.recording:
            return
        self.facts.buffer_spaces.setdefault(buffer, space)
        self.facts.accesses.append(
            AccessSite(
                buffer=buffer,
                space=space,
                kind=kind,
                index_div=index.div,
                index_form=index.form,
                control_div=self.control_div,
                loop_depth=self.loop_depth,
                atomic_op=atomic_op,
                conditional=self.conditional,
            )
        )

    def _pointer_value_read(self, value: _Value) -> None:
        """Record the tracked element-0 read of a pointer used as data.

        Mirrors ``LockstepBuffer.first_element``: the engines reach it from
        exactly two places — coercing a pointer into a stored cell, and
        scalarizing a pointer builtin argument.
        """
        if value.pointer is not None:
            buffer, space = value.pointer
            self.record_access(buffer, space, "read", _Value(Div.UNIFORM, "0"))

    def record_barrier(self) -> None:
        if not self.recording:
            return
        self.facts.barriers.append(
            BarrierSite(
                control_div=self.control_div,
                in_helper=self.in_helper,
                # A barrier inside a loop may never be reached (zero trips).
                conditional=self.conditional or self.loop_depth > 0,
            )
        )
        if self.in_helper:
            self.flag(FLAG_HELPER_BARRIER)

    # -- statements -----------------------------------------------------

    def analyze_body(self, body: ast.CompoundStmt | None) -> None:
        if body is None:
            return
        self.statement(body)

    def statement(self, stmt: ast.Statement | None) -> None:
        if stmt is None:
            return
        self.tick()
        if isinstance(stmt, ast.CompoundStmt):
            for child in stmt.statements:
                self.statement(child)
        elif isinstance(stmt, ast.DeclStmt):
            for declarator in stmt.declarators:
                self._declare(declarator)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expression is not None:
                self.eval(stmt.expression, discard=True)
        elif isinstance(stmt, ast.IfStmt):
            self._if(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self._for(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._loop(stmt.condition, stmt.body, trips=float("inf"))
        elif isinstance(stmt, ast.DoWhileStmt):
            self._loop(stmt.condition, stmt.body, trips=float("inf"))
        elif isinstance(stmt, ast.ReturnStmt):
            value = Div.UNIFORM
            if stmt.value is not None:
                returned = self.eval(stmt.value)
                value = returned.div
                if returned.pointer is not None and self.in_helper:
                    # The call site loses the pointer mark, so a helper that
                    # hands a pointer back must keep the kernel out of SAFE.
                    self.flag(FLAG_POINTER_DECL)
            self.return_div = join(self.return_div, value, self.control_div)
            if self.control_div > Div.UNIFORM:
                self.return_taint = Div.DIVERGENT
            # Anything after a return is dead for at least some inputs.
            self.maybe_returned = True
        elif isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            if self.control_div > Div.UNIFORM:
                self.extra_control = Div.DIVERGENT
        elif isinstance(stmt, ast.SwitchStmt):
            self._switch(stmt)
        elif isinstance(stmt, ast.EmptyStmt):
            pass
        else:
            self.flag(FLAG_UNKNOWN_CONSTRUCT)

    def _declare(self, declarator: ast.Declarator) -> None:
        name = declarator.name
        declared = declarator.declared_type
        if _is_vector_type(declared):
            self.flag(FLAG_VECTOR_DECL)
        if declarator.array_size is not None:
            size = self.eval(declarator.array_size)
            if declarator.address_space == AddressSpace.LOCAL:
                self.flag(FLAG_LOCAL_ARRAY)
                self.buffers[name] = (name, "local")
                self.facts.buffer_spaces.setdefault(name, "local")
            else:
                self.private_arrays.add(name)
                if size.div > Div.UNIFORM:
                    self.flag(FLAG_PRIVATE_ARRAY_DIVERGENT_SIZE)
                if self.control_div > Div.UNIFORM:
                    self.flag(FLAG_PRIVATE_ARRAY_DIVERGENT_DECL)
            return
        if _is_pointer_type(declared):
            self._bind_pointer(name, declarator.initializer)
            return
        if declarator.initializer is not None:
            value = self.eval(declarator.initializer)
            # A declaration is scoped inside whatever branch declares it, so
            # (unlike an outer-scope assignment) a divergent-control context
            # does not by itself make the value lane-dependent.
            self.env[name] = value
        else:
            self.env[name] = _Value(Div.UNIFORM, None)

    def _bind_pointer(self, name: str, initializer: ast.Expression | None) -> None:
        if initializer is None:
            self.flag(FLAG_POINTER_DECL)
            self.buffers[name] = (f"<unknown:{name}>", "global")
            return
        if isinstance(initializer, ast.Identifier) and initializer.name in self.buffers:
            if self.control_div > Div.UNIFORM:
                self.flag(FLAG_POINTER_REBIND_DIVERGENT)
            self.buffers[name] = self.buffers[initializer.name]
            return
        value = self.eval(initializer)
        if value.pointer is not None:
            # Pointer arithmetic collapses to the base pointer at runtime,
            # so the alias is exact — accesses through it hit that buffer.
            if self.control_div > Div.UNIFORM:
                self.flag(FLAG_POINTER_REBIND_DIVERGENT)
            self.buffers[name] = value.pointer
            return
        self.flag(FLAG_POINTER_DECL)
        self.buffers[name] = (f"<unknown:{name}>", "global")

    def _if(self, stmt: ast.IfStmt) -> None:
        condition = self.eval(stmt.condition)
        self.note_control(condition.div)
        self.control.append(condition.div)
        if condition.div <= Div.UNIFORM:
            # Lane-uniform guard: the branch runs all-or-nothing depending
            # on data, so its sites cannot back a *certain* verdict.
            self.guard_depth += 1
        before_env = dict(self.env)
        before_buffers = dict(self.buffers)
        self.statement(stmt.then_branch)
        then_env, self.env = self.env, before_env
        then_buffers, self.buffers = self.buffers, before_buffers
        if stmt.else_branch is not None:
            self.statement(stmt.else_branch)
        if condition.div <= Div.UNIFORM:
            self.guard_depth -= 1
        self.control.pop()
        self._merge_env(then_env)
        self._merge_buffers(then_buffers, condition.div)

    def _switch(self, stmt: ast.SwitchStmt) -> None:
        condition = self.eval(stmt.condition)
        self.note_control(condition.div)
        self.control.append(condition.div)
        if condition.div <= Div.UNIFORM:
            self.guard_depth += 1
        merged = dict(self.env)
        base = dict(self.env)
        for case in stmt.cases:
            if case.value is not None:
                self.eval(case.value)
            self.env = dict(base)
            for child in case.body:
                self.statement(child)
            merged = self._joined(merged, self.env)
        self.env = merged
        if condition.div <= Div.UNIFORM:
            self.guard_depth -= 1
        self.control.pop()

    def _for(self, stmt: ast.ForStmt) -> None:
        if stmt.init is not None:
            self.statement(stmt.init)
        trips = self._for_trips(stmt)
        self._loop(stmt.condition, stmt.body, trips=trips, increment=stmt.increment)

    def _loop(
        self,
        condition: ast.Expression | None,
        body: ast.Statement | None,
        trips: float,
        increment: ast.Expression | None = None,
    ) -> None:
        # Loop-carried names lose their canonical forms: a subscript like
        # `out[gid + i]` must not look like a single fixed cell per lane.
        for name in self._assigned_names(body, increment):
            value = self.env.get(name)
            if value is not None and value.form is not None:
                self.env[name] = _Value(value.div, None)

        saved_recording = self.recording
        self.recording = False
        for _ in range(FIXPOINT_LIMIT):
            before = {name: value.div for name, value in self.env.items()}
            self._loop_pass(condition, body, increment)
            after = {name: value.div for name, value in self.env.items()}
            if after == before:
                break
        self.recording = saved_recording

        # The recorded pass runs on the stable environment.
        saved_multiplier = self.trip_multiplier
        bounded = min(trips, 1e9)
        self.trip_multiplier *= max(bounded, 1.0)
        if trips == float("inf") and self.recording:
            self.steps = float("inf")
        self.loop_depth += 1
        self._loop_pass(condition, body, increment)
        self.loop_depth -= 1
        self.trip_multiplier = saved_multiplier

    def _loop_pass(
        self,
        condition: ast.Expression | None,
        body: ast.Statement | None,
        increment: ast.Expression | None,
    ) -> None:
        condition_div = Div.UNIFORM
        if condition is not None:
            condition_div = self.eval(condition).div
        self.note_control(condition_div)
        self.control.append(condition_div)
        saved_extra = self.extra_control
        self.statement(body)
        if increment is not None:
            self.eval(increment, discard=True)
        self.extra_control = saved_extra
        self.control.pop()

    def _for_trips(self, stmt: ast.ForStmt) -> float:
        condition = stmt.condition
        if condition is None:
            return float("inf")
        if isinstance(condition, ast.IntLiteral):
            return float("inf") if condition.value else 0.0
        if stmt.increment is None:
            return float("inf")
        induction = self._induction_name(stmt.increment)
        if induction is None:
            return float("inf")
        if body_assigns := self._assigned_names(stmt.body, None):
            if induction in body_assigns:
                return float("inf")
        if self._is_shift_increment(stmt.increment):
            return SHIFT_LOOP_TRIPS
        bound = self._comparison_bound(condition, induction)
        if bound is None:
            return float("inf")
        if isinstance(bound, ast.IntLiteral):
            return float(abs(bound.value)) + 1.0
        if self.eval(bound).div <= Div.UNIFORM:
            return ASSUMED_UNIFORM_TRIPS
        # A divergent bound (e.g. `i < gid`) is still capped by the lane
        # values the payload provides, which the uniform assumption covers.
        return ASSUMED_UNIFORM_TRIPS

    @staticmethod
    def _induction_name(increment: ast.Expression) -> str | None:
        if isinstance(increment, (ast.PostfixOp, ast.UnaryOp)) and increment.op in ("++", "--"):
            operand = increment.operand
            if isinstance(operand, ast.Identifier):
                return operand.name
        if isinstance(increment, ast.Assignment) and isinstance(increment.target, ast.Identifier):
            return increment.target.name
        return None

    @staticmethod
    def _is_shift_increment(increment: ast.Expression) -> bool:
        return isinstance(increment, ast.Assignment) and increment.op in ("<<=", ">>=")

    @staticmethod
    def _comparison_bound(condition: ast.Expression, induction: str):
        if not isinstance(condition, ast.BinaryOp):
            return None
        if condition.op not in ("<", "<=", ">", ">=", "!="):
            return None
        left, right = condition.left, condition.right
        if isinstance(left, ast.Identifier) and left.name == induction:
            return right
        if isinstance(right, ast.Identifier) and right.name == induction:
            return left
        return None

    @staticmethod
    def _assigned_names(
        body: ast.Statement | None, increment: ast.Expression | None
    ) -> set[str]:
        names: set[str] = set()
        for root in (body, increment):
            if root is None:
                continue
            for node in ast.walk(root):
                if isinstance(node, ast.Assignment) and isinstance(node.target, ast.Identifier):
                    names.add(node.target.name)
                elif (
                    isinstance(node, (ast.PostfixOp, ast.UnaryOp))
                    and node.op in ("++", "--")
                    and isinstance(node.operand, ast.Identifier)
                ):
                    names.add(node.operand.name)
                elif isinstance(node, ast.Declarator):
                    names.add(node.name)
        return names

    def _merge_env(self, other: dict[str, _Value]) -> None:
        self.env = self._joined(self.env, other)

    def _joined(
        self, left: dict[str, _Value], right: dict[str, _Value]
    ) -> dict[str, _Value]:
        merged = dict(left)
        for name, value in right.items():
            existing = merged.get(name)
            if existing is None:
                merged[name] = value
            elif existing.div != value.div or existing.form != value.form:
                merged[name] = _Value(join(existing.div, value.div), None)
        return merged

    def _merge_buffers(self, other: dict[str, tuple[str, str]], condition_div: Div) -> None:
        for name, binding in other.items():
            existing = self.buffers.get(name)
            if existing is None:
                self.buffers[name] = binding
            elif existing != binding:
                if condition_div > Div.UNIFORM:
                    self.flag(FLAG_POINTER_REBIND_DIVERGENT)
                else:
                    self.flag(FLAG_POINTER_DECL)
                self.buffers[name] = (f"<unknown:{name}>", existing[1])

    # -- expressions ----------------------------------------------------

    def eval(self, expression: ast.Expression, discard: bool = False) -> _Value:
        if isinstance(expression, ast.IntLiteral):
            return _Value(Div.UNIFORM, str(expression.value))
        if isinstance(expression, (ast.FloatLiteral, ast.CharLiteral, ast.StringLiteral)):
            return _Value(Div.UNIFORM, None)
        if isinstance(expression, ast.SizeOf):
            return _Value(Div.UNIFORM, None)
        if isinstance(expression, ast.Identifier):
            return self._identifier(expression.name)
        if isinstance(expression, ast.BinaryOp):
            return self._binary(expression)
        if isinstance(expression, ast.UnaryOp):
            return self._unary(expression)
        if isinstance(expression, ast.PostfixOp):
            return self._increment_like(expression)
        if isinstance(expression, ast.Assignment):
            return self._assignment(expression)
        if isinstance(expression, ast.TernaryOp):
            return self._ternary(expression)
        if isinstance(expression, ast.Call):
            return self._call(expression, discard=discard)
        if isinstance(expression, ast.Index):
            return self._index_read(expression)
        if isinstance(expression, ast.Member):
            base = self.eval(expression.base)
            return _Value(base.div, None)
        if isinstance(expression, ast.Cast):
            return self._cast(expression)
        if isinstance(expression, ast.VectorLiteral):
            self.flag(FLAG_VECTOR_LITERAL)
            divs = [self.eval(element).div for element in expression.elements]
            return _Value(join(*divs) if divs else Div.UNIFORM, None)
        if isinstance(expression, ast.InitializerList):
            divs = [self.eval(element).div for element in expression.elements]
            return _Value(join(*divs) if divs else Div.UNIFORM, None)
        self.flag(FLAG_UNKNOWN_CONSTRUCT)
        return _UNKNOWN

    def _identifier(self, name: str) -> _Value:
        if name in self.buffers:
            # A bare pointer name evaluated as a value stays a pointer in
            # the lockstep engines (arithmetic, comparisons and casts all
            # pass ``_POINTERISH`` values through untouched); the mark makes
            # the two dereference points — a store coerce and a builtin
            # argument — record the hazard-tracked element-0 read.
            return _Value(Div.UNIFORM, None, pointer=self.buffers[name])
        if name in self.private_arrays:
            # Per-lane storage collapses to each lane's own element 0: no
            # cross-lane hazard, but the value itself is lane-dependent.
            return _Value(Div.DIVERGENT, None)
        value = self.env.get(name)
        if value is not None:
            return value
        # Undeclared names are the semantic checker's problem; assume the
        # worst so they can never launder into a "safe" verdict.
        return _UNKNOWN

    _AFFINE_KEEPERS = ("+", "-")

    def _binary(self, expression: ast.BinaryOp) -> _Value:
        left = self.eval(expression.left)
        right = self.eval(expression.right)
        op = expression.op
        if left.pointer is not None or right.pointer is not None:
            # Mirrors the runtime's ``_binary_values``: pointer equality is
            # an identity test (plain int), every other operator returns the
            # pointer operand itself — no memory is touched.
            if op in ("==", "!="):
                return _Value(Div.UNIFORM, None)
            return left if left.pointer is not None else right
        form = None
        if left.form is not None and right.form is not None:
            form = f"({left.form}{op}{right.form})"
        highest = join(left.div, right.div)
        if highest <= Div.UNIFORM:
            return _Value(highest, form)
        if Div.AFFINE in (left.div, right.div) and Div.DIVERGENT not in (left.div, right.div):
            affine, other = (left, right) if left.div == Div.AFFINE else (right, left)
            if other.div == Div.AFFINE:
                return _Value(Div.DIVERGENT, None)
            if op in self._AFFINE_KEEPERS:
                return _Value(Div.AFFINE, form)
            if op == "*" and self._nonzero_literal(expression.left, expression.right):
                return _Value(Div.AFFINE, form)
            return _Value(Div.DIVERGENT, None)
        return _Value(Div.DIVERGENT, None)

    @staticmethod
    def _nonzero_literal(*operands: ast.Expression) -> bool:
        return any(
            isinstance(operand, ast.IntLiteral) and operand.value != 0
            for operand in operands
        )

    def _unary(self, expression: ast.UnaryOp) -> _Value:
        op = expression.op
        if op == "&":
            self.flag(FLAG_ADDRESS_OF)
            self.eval(expression.operand)
            return _UNKNOWN
        if op == "*":
            self.flag(FLAG_POINTER_DEREF)
            return self._deref_read(expression.operand)
        if op in ("++", "--"):
            return self._increment_like(expression)
        operand = self.eval(expression.operand)
        if operand.pointer is not None:
            # Runtime rules: ``-p``/``+p`` keep the pointer, ``!p`` is the
            # constant 0, ``~p`` is an immediate lockstep bailout.
            if op == "!":
                return _Value(Div.UNIFORM, None)
            if op == "~":
                self.flag(FLAG_UNKNOWN_CONSTRUCT)
                return _UNKNOWN
            return operand
        if op in ("-", "+"):
            form = f"({op}{operand.form})" if operand.form is not None else None
            return _Value(operand.div, form)
        if operand.div == Div.AFFINE:
            return _Value(Div.DIVERGENT, None)
        return _Value(operand.div, None)

    def _increment_like(self, expression) -> _Value:
        operand = expression.operand
        value = self.eval(operand)
        if isinstance(operand, ast.Identifier) and operand.name in self.env:
            div = value.div
            if self.control_div > Div.UNIFORM:
                div = Div.DIVERGENT
            elif div == Div.AFFINE:
                div = Div.AFFINE  # gid++ stays injective
            self.env[operand.name] = _Value(div, None)
        elif isinstance(operand, ast.Index):
            self._index_write(operand, compound=True)
        return value

    def _assignment(self, expression: ast.Assignment) -> _Value:
        target = expression.target
        value = self.eval(expression.value)
        compound = expression.op != "="
        if compound and expression.op in ("*=", "<<="):
            # Multiplicative accumulation inside a loop can push a uniform
            # Python int past int64, which only the scalar engines survive.
            # `loop_depth` covers the recorded pass, `not recording` the
            # fixpoint passes that only ever run inside loop analysis.
            if self.loop_depth > 0 or not self.recording:
                self.flag(FLAG_OVERFLOW_RISK)
        if isinstance(target, ast.Identifier):
            name = target.name
            if name in self.buffers:
                # Rebinding a pointer variable.
                if self.control_div > Div.UNIFORM:
                    self.flag(FLAG_POINTER_REBIND_DIVERGENT)
                if compound:
                    # `p += k` collapses to the pointer itself at runtime:
                    # the binding is unchanged.
                    return _Value(Div.UNIFORM, None, pointer=self.buffers[name])
                if value.pointer is not None:
                    # Pointer copy (possibly through arithmetic, which the
                    # engines collapse back to the pointer): exact rebind,
                    # and element 0 is never touched.
                    self.buffers[name] = value.pointer
                else:
                    self.flag(FLAG_POINTER_DECL)
                    self.buffers[name] = (f"<unknown:{name}>", self.buffers[name][1])
                return value
            old = self.env.get(name, _Value(Div.BOTTOM, None))
            if self.control_div > Div.UNIFORM:
                # A masked assignment: lanes that skip it keep the old value,
                # so the merged value is lane-dependent.
                new = _Value(Div.DIVERGENT, None, pointer=value.pointer)
            elif compound:
                new = _Value(
                    join(old.div, value.div), None, pointer=value.pointer or old.pointer
                )
            else:
                new = value
            self.env[name] = new
            return new
        if isinstance(target, ast.Index):
            # Storing a pointer into a data cell coerces it to element 0 —
            # the one arithmetic context where the engines really do read.
            self._pointer_value_read(value)
            self._index_write(target, compound=compound)
            return _Value(join(value.div, Div.UNIFORM), None)
        if isinstance(target, ast.Member):
            self.eval(target.base)
            self.flag(FLAG_VECTOR_MEMBER_STORE)
            return value
        if isinstance(target, ast.UnaryOp) and target.op == "*":
            self.flag(FLAG_POINTER_DEREF)
            self._pointer_value_read(value)
            self._deref_write(target.operand)
            return value
        self.flag(FLAG_UNKNOWN_CONSTRUCT)
        return _UNKNOWN

    def _self_multiplicative(self, expression: ast.Assignment) -> bool:
        return expression.op in ("*=", "<<=")

    def _ternary(self, expression: ast.TernaryOp) -> _Value:
        condition = self.eval(expression.condition)
        if_true = self.eval(expression.if_true)
        if_false = self.eval(expression.if_false)
        if if_true.pointer is not None or if_false.pointer is not None:
            if condition.div > Div.UNIFORM:
                self.flag(FLAG_POINTER_TERNARY_DIVERGENT)
            else:
                self.flag(FLAG_POINTER_DECL)
            if if_true.pointer == if_false.pointer:
                # Both arms are the same buffer: the selection is a no-op.
                return _Value(Div.UNIFORM, None, pointer=if_true.pointer)
        div = join(condition.div, if_true.div, if_false.div)
        if condition.div > Div.UNIFORM:
            div = Div.DIVERGENT
        return _Value(div, None)

    def _cast(self, expression: ast.Cast) -> _Value:
        if _is_vector_type(expression.target_type):
            self.flag(FLAG_VECTOR_CAST)
            self.eval(expression.operand)
            return _UNKNOWN
        value = self.eval(expression.operand)
        if value.pointer is not None:
            # Casting a pointer passes it through unchanged at runtime.
            return value
        if value.div == Div.AFFINE:
            name = (expression.target_type_name or "").replace("const ", "").strip()
            if name not in _WIDE_INT_CASTS:
                # Narrow casts (char, short...) wrap and can collapse
                # distinct lanes onto one value.
                return _Value(Div.DIVERGENT, None)
        return value

    # -- memory ---------------------------------------------------------

    def _resolve_buffer(self, base: ast.Expression) -> tuple[str, str] | None:
        if isinstance(base, ast.Identifier):
            binding = self.buffers.get(base.name)
            if binding is not None:
                return binding
            if base.name in self.private_arrays:
                return None
            # A scalar variable that a pointer value flowed into still
            # indexes that buffer at runtime.
            value = self.env.get(base.name)
            if value is not None and value.pointer is not None:
                return value.pointer
        if isinstance(base, ast.TernaryOp):
            self.eval(base)
            return ("<unknown:ternary>", "global")
        return None

    def _index_read(self, expression: ast.Index) -> _Value:
        index = self._index_value(expression.index)
        base = expression.base
        if isinstance(base, ast.Identifier) and base.name in self.private_arrays:
            # Per-lane storage: no cross-lane hazards possible.
            return _Value(Div.DIVERGENT if index.div > Div.UNIFORM else Div.UNIFORM, None)
        binding = self._resolve_buffer(base)
        if binding is None:
            self.eval(base)
            self.flag(FLAG_UNKNOWN_CONSTRUCT)
            return _UNKNOWN
        buffer, space = binding
        self.record_access(buffer, space, "read", index)
        return _Value(Div.UNIFORM if index.div <= Div.UNIFORM else Div.DIVERGENT, None)

    def _index_write(self, expression: ast.Index, compound: bool = False) -> None:
        index = self._index_value(expression.index)
        base = expression.base
        if isinstance(base, ast.Identifier) and base.name in self.private_arrays:
            return
        binding = self._resolve_buffer(base)
        if binding is None:
            self.eval(base)
            self.flag(FLAG_UNKNOWN_CONSTRUCT)
            return
        buffer, space = binding
        if compound:
            self.record_access(buffer, space, "read", index)
        self.record_access(buffer, space, "write", index)

    def _index_value(self, expression: ast.Expression) -> _Value:
        """Evaluate a subscript; a pointer used as an index collapses to 0."""
        index = self.eval(expression)
        if index.pointer is not None:
            return _Value(Div.UNIFORM, "0")
        return index

    def _deref_read(self, operand: ast.Expression) -> _Value:
        binding = self._resolve_buffer(operand)
        if binding is not None:
            buffer, space = binding
            self.record_access(buffer, space, "read", _Value(Div.UNIFORM, "0"))
            return _Value(Div.UNIFORM, None)
        self.eval(operand)
        return _UNKNOWN

    def _deref_write(self, operand: ast.Expression) -> None:
        binding = self._resolve_buffer(operand)
        if binding is not None:
            buffer, space = binding
            self.record_access(buffer, space, "write", _Value(Div.UNIFORM, "0"))
        else:
            self.eval(operand)
            self.flag(FLAG_UNKNOWN_CONSTRUCT)

    # -- calls ----------------------------------------------------------

    def _call(self, expression: ast.Call, discard: bool = False) -> _Value:
        name = expression.callee
        if name in WORK_ITEM_FUNCTIONS:
            return self._work_item_query(name, expression)
        if name == "barrier":
            for argument in expression.arguments:
                self.eval(argument)
            self.record_barrier()
            return _Value(Div.UNIFORM, None)
        if name in ("mem_fence", "read_mem_fence", "write_mem_fence"):
            for argument in expression.arguments:
                self.eval(argument)
            return _Value(Div.UNIFORM, None)
        if name in ATOMIC_FUNCTIONS:
            return self._atomic(name, expression, discard=discard)
        if name.startswith(("vload", "vstore")):
            self.flag(FLAG_VLOAD_VSTORE)
            for argument in expression.arguments:
                self.eval(argument)
            return _UNKNOWN
        if name.startswith("async_work_group") or name == "prefetch":
            self.flag(FLAG_UNKNOWN_CONSTRUCT)
            for argument in expression.arguments:
                self.eval(argument)
            return _UNKNOWN
        helper = self.analysis.functions.get(name)
        if helper is not None:
            return self._helper_call(helper, expression)
        # Pure math builtin (or an undeclared call, which the semantic
        # checker rejects upstream): divergence of the arguments.  A pointer
        # argument is scalarized to its element 0 — a hazard-tracked read.
        values = [self.eval(argument) for argument in expression.arguments]
        for value in values:
            self._pointer_value_read(value)
        divs = [value.div for value in values]
        div = join(*divs) if divs else Div.UNIFORM
        if div == Div.AFFINE:
            div = Div.DIVERGENT
        return _Value(div, None)

    def _work_item_query(self, name: str, expression: ast.Call) -> _Value:
        dimension: int | None = None
        if expression.arguments:
            argument = expression.arguments[0]
            if isinstance(argument, ast.IntLiteral):
                dimension = argument.value
            else:
                self.eval(argument)
        else:
            dimension = 0
        if name == "get_global_id":
            if dimension == 0 and not self.analysis.multi_dim:
                return _Value(Div.AFFINE, "g0")
            # A 2-D dispatch linearises the lane set, so neither dimension's
            # id is injective over all lanes; a higher dimension queried in a
            # 1-D dispatch is the constant 0 (every lane writes through it to
            # the same cell).  Either way the affinity claim would be wrong.
            return _Value(Div.DIVERGENT, None)
        if name in ("get_local_id", "get_group_id"):
            # Repeats across (or constant within) work-groups: lane-dependent
            # but never injective over the whole dispatch.
            return _Value(Div.DIVERGENT, None)
        form = _UNIFORM_QUERY_FORMS.get(name)
        if form is not None and dimension is not None:
            return _Value(Div.UNIFORM, f"{form}{dimension}")
        return _Value(Div.UNIFORM, None)

    def _atomic(self, name: str, expression: ast.Call, discard: bool) -> _Value:
        self.flag(FLAG_ATOMIC)
        if not discard:
            self.flag(FLAG_ATOMIC_RESULT_USED)
        operation = name.replace("atomic_", "").replace("atom_", "")
        if operation not in _ORDER_INDEPENDENT_ATOMICS:
            self.flag(FLAG_ATOMIC_ORDER_DEPENDENT)
        if expression.arguments:
            location = expression.arguments[0]
            if isinstance(location, ast.UnaryOp) and location.op == "&":
                location = location.operand
            if isinstance(location, ast.Index):
                index = self.eval(location.index)
                base = location.base
                if isinstance(base, ast.Identifier) and base.name in self.private_arrays:
                    self.flag(FLAG_ATOMIC_PRIVATE)
                else:
                    binding = self._resolve_buffer(base)
                    if binding is not None:
                        buffer, space = binding
                        self.record_access(
                            buffer, space, "atomic", index, atomic_op=operation
                        )
                    else:
                        self.flag(FLAG_UNKNOWN_CONSTRUCT)
            elif isinstance(location, ast.Identifier):
                binding = self.buffers.get(location.name)
                if binding is not None:
                    buffer, space = binding
                    self.record_access(
                        buffer, space, "atomic", _Value(Div.UNIFORM, "0"), atomic_op=operation
                    )
                elif location.name in self.private_arrays:
                    self.flag(FLAG_ATOMIC_PRIVATE)
                else:
                    self.flag(FLAG_UNKNOWN_CONSTRUCT)
            else:
                self.eval(location)
                self.flag(FLAG_UNKNOWN_CONSTRUCT)
            for argument in expression.arguments[1:]:
                self.eval(argument)
        return _Value(Div.DIVERGENT, None)

    def _helper_call(self, helper: ast.FunctionDecl, expression: ast.Call) -> _Value:
        if helper.name in self.active:
            self.flag(FLAG_RECURSIVE_HELPER)
            for argument in expression.arguments:
                self.eval(argument)
            return _UNKNOWN
        child = _FunctionAnalyzer(
            self.analysis,
            self.facts,
            active=self.active | {helper.name},
            base_control=self.control_div,
            in_helper=True,
            recording=self.recording,
        )
        child.loop_depth = self.loop_depth
        child.trip_multiplier = self.trip_multiplier
        for parameter, argument in zip(helper.parameters, expression.arguments):
            value = self.eval(argument)
            if not parameter.name:
                continue
            if _is_pointer_type(parameter.declared_type):
                # Passed by reference: no element-0 read at the call site.
                if value.pointer is not None:
                    child.buffers[parameter.name] = value.pointer
                else:
                    self.flag(FLAG_POINTER_DECL)
                    child.buffers[parameter.name] = (
                        f"<unknown:{helper.name}.{parameter.name}>",
                        "global",
                    )
            else:
                # A pointer handed to a scalar parameter stays a pointer in
                # the callee's slot; keep the mark so its eventual deref in
                # the helper body records the read.
                child.env[parameter.name] = _Value(
                    value.div, None, pointer=value.pointer
                )
        for argument in expression.arguments[len(helper.parameters):]:
            self.eval(argument)
        child.analyze_body(helper.body)
        if self.recording:
            self.steps += child.steps
        if helper.return_type_name != "void" and not _all_paths_return(helper.body):
            self.flag(FLAG_HELPER_FALLOFF)
        div = child.return_div if child.return_div != Div.BOTTOM else Div.UNIFORM
        return _Value(div, None)


def _all_paths_return(statement: ast.Statement | None) -> bool:
    """Whether every control path through *statement* executes a return."""
    if statement is None:
        return False
    if isinstance(statement, ast.ReturnStmt):
        return True
    if isinstance(statement, ast.CompoundStmt):
        return any(_all_paths_return(child) for child in statement.statements)
    if isinstance(statement, ast.IfStmt):
        return (
            statement.else_branch is not None
            and _all_paths_return(statement.then_branch)
            and _all_paths_return(statement.else_branch)
        )
    # Loops may run zero times; switches may miss every case.
    return False
