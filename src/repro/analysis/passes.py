"""The barrier-divergence and shared-memory race passes.

Both consume the facts produced by :class:`~repro.analysis.divergence.
DivergenceAnalysis` and distill them into the site lists the bailout
classifier (and the feature extractor) read.

**Barrier divergence.**  The lockstep tier executes a ``barrier()`` by
comparing the live lane mask against the group mask; any mismatch is an
immediate :class:`~repro.errors.LockstepBailout` (``"divergent work-group
barrier"``).  Statically, a barrier whose control context depends on a
work-item id (directly or through a divergent early return upstream) is
therefore classified a guaranteed bailout.  Barriers inside helper
functions never synchronise in the lockstep tier (they degrade to step
bumps), so they are reported separately and never count as bailouts.

**Race / hazard detection.**  The lockstep memory model tracks, per cell,
the last writing lane and the highest reading lane; any cross-lane
read-after-write, write-after-write or write-after-read conflict bails out
(see ``LockstepBuffer`` in :mod:`repro.execution.memory`).  Per written
buffer, the pass checks whether every access is *provably per-lane
disjoint*: an AFFINE subscript (injective per lane) with one single
canonical form across all sites.  Everything else is a potential hazard:

* a DIVERGENT-subscript write — lanes may collide (``out[a[gid]]``),
* a UNIFORM-subscript write combined with any other access — every lane
  hits the same cell, so the second touch observes a foreign lane,
* mixed or unresolvable subscript forms — ``out[gid+1]`` vs ``out[gid]``
  aliases neighbouring lanes' cells,
* atomics mixed with plain accesses on one buffer.

A site is *certain* (drives the bailout-certain verdict used for engine
routing) only when both conflicting accesses execute unconditionally, no
barrier separates them (a kernel-body barrier resets the hazard epochs),
and the collision is structural rather than data-dependent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.divergence import AccessSite, BarrierSite, KernelFacts
from repro.analysis.lattice import Div


# ---------------------------------------------------------------------------
# Barrier divergence.
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class BarrierReport:
    """Outcome of the barrier-divergence pass for one kernel."""

    total: int
    divergent: list[BarrierSite]
    helper_sites: int

    @property
    def divergent_count(self) -> int:
        return len(self.divergent)


def barrier_divergence(facts: KernelFacts) -> BarrierReport:
    """Classify every barrier site of *facts* by its control context."""
    divergent = [
        site
        for site in facts.barriers
        if not site.in_helper and site.control_div > Div.UNIFORM
    ]
    helper_sites = sum(1 for site in facts.barriers if site.in_helper)
    return BarrierReport(
        total=len(facts.barriers), divergent=divergent, helper_sites=helper_sites
    )


# ---------------------------------------------------------------------------
# Race / cross-lane hazard detection.
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class RaceSite:
    """One potential (or certain) cross-lane hazard on a shared buffer."""

    buffer: str
    space: str
    hazard: str  # "waw" | "raw" | "war" | "atomic-mix"
    certain: bool
    detail: str = ""


def _unconditional(site: AccessSite) -> bool:
    # A lane-uniform data-dependent guard (``if (d < c)``) executes
    # all-or-nothing dynamically, so sites under one cannot back a
    # *certain* verdict: the guard may simply never be taken.
    return (
        site.control_div <= Div.UNIFORM
        and site.loop_depth == 0
        and not site.conditional
    )


def race_hazards(facts: KernelFacts) -> list[RaceSite]:
    """Detect cross-lane hazards per shared buffer."""
    sites: list[RaceSite] = []
    has_barrier = any(not site.in_helper for site in facts.barriers)
    buffers = sorted({site.buffer for site in facts.accesses})
    for buffer in buffers:
        accesses = facts.accesses_for(buffer)
        space = accesses[0].space
        writes = [site for site in accesses if site.kind == "write"]
        reads = [site for site in accesses if site.kind == "read"]
        atomics = [site for site in accesses if site.kind == "atomic"]

        if atomics and (writes or reads):
            sites.append(
                RaceSite(
                    buffer=buffer,
                    space=space,
                    hazard="atomic-mix",
                    certain=False,
                    detail="atomic combined with plain accesses",
                )
            )
        if not writes:
            continue

        divergent_writes = [site for site in writes if site.index_div >= Div.DIVERGENT]
        for site in divergent_writes:
            sites.append(
                RaceSite(
                    buffer=buffer,
                    space=space,
                    hazard="waw",
                    certain=False,
                    detail="write with a non-injective lane-dependent subscript",
                )
            )

        uniform_writes = [site for site in writes if site.index_div <= Div.UNIFORM]
        if uniform_writes and len(writes) + len(reads) + len(atomics) >= 2:
            # Every lane scatters onto one cell; the next touch of that cell
            # observes the last lane's write.
            partner_reads = [site for site in reads]
            partner_writes = [site for site in writes if site is not uniform_writes[0]]

            def _touches(write: AccessSite, partner: AccessSite) -> bool:
                # Does *partner* provably touch the cell *write* scattered on?
                # A non-uniform subscript spans all cells; an unresolvable or
                # matching form may/must hit it.
                return (
                    partner.index_div > Div.UNIFORM
                    or partner.index_form is None
                    or partner.index_form == write.index_form
                )

            certain = not has_barrier and any(
                _unconditional(write)
                and _unconditional(partner)
                and _touches(write, partner)
                for write in uniform_writes
                for partner in partner_reads + partner_writes
            )
            hazard = "raw" if partner_reads else "waw"
            sites.append(
                RaceSite(
                    buffer=buffer,
                    space=space,
                    hazard=hazard,
                    certain=certain,
                    detail="uniform-subscript write shared with other accesses",
                )
            )
        elif uniform_writes and any(site.loop_depth >= 2 for site in uniform_writes):
            sites.append(
                RaceSite(
                    buffer=buffer,
                    space=space,
                    hazard="waw",
                    certain=False,
                    detail="uniform-subscript write re-executed by nested loops",
                )
            )

        affine_writes = [site for site in writes if site.index_div == Div.AFFINE]
        if affine_writes:
            considered = affine_writes + [
                site for site in reads if site.index_div == Div.AFFINE
            ]
            forms = {site.index_form for site in considered}
            loop_varying = [
                site
                for site in considered
                if site.index_form is None and site.loop_depth > 0
            ]
            if loop_varying:
                sites.append(
                    RaceSite(
                        buffer=buffer,
                        space=space,
                        hazard="waw",
                        certain=False,
                        detail="loop-varying per-lane subscript revisits other lanes' cells",
                    )
                )
            elif len(forms) > 1 or (None in forms and len(considered) > 1):
                # Two sites whose subscripts are not provably the same cell
                # per lane (different forms, or forms we could not resolve).
                sites.append(
                    RaceSite(
                        buffer=buffer,
                        space=space,
                        hazard="raw",
                        certain=False,
                        detail="mismatched per-lane subscript forms alias neighbouring cells",
                    )
                )
            uniform_reads = [site for site in reads if site.index_div <= Div.UNIFORM]
            if uniform_reads:
                certain = (
                    not has_barrier
                    and any(_unconditional(site) for site in affine_writes)
                    and any(_unconditional(site) for site in uniform_reads)
                )
                sites.append(
                    RaceSite(
                        buffer=buffer,
                        space=space,
                        hazard="raw",
                        certain=certain,
                        detail="uniform read of a per-lane-written buffer",
                    )
                )
            divergent_reads = [site for site in reads if site.index_div >= Div.DIVERGENT]
            if divergent_reads:
                sites.append(
                    RaceSite(
                        buffer=buffer,
                        space=space,
                        hazard="raw",
                        certain=False,
                        detail="lane-dependent read of a per-lane-written buffer",
                    )
                )
    return sites
