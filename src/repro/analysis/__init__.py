"""Static kernel analysis: dataflow passes over the ``clc`` AST.

The package implements the static half of the engines-as-an-oracle story:

* :mod:`repro.analysis.lattice` — the divergence lattice and fixpoint
  helpers shared by the passes,
* :mod:`repro.analysis.divergence` — the foundation pass (uniform vs
  work-item-dependent values, control divergence, memory access and
  barrier site collection),
* :mod:`repro.analysis.passes` — the barrier-divergence and shared-memory
  race/hazard passes,
* :mod:`repro.analysis.classify` — the bailout-cause classifier mapping
  analysis facts onto the concrete causes ``vectorizer.py`` can raise,
* :mod:`repro.analysis.lint` — the ``repro lint`` front end,
* :mod:`repro.analysis.soundness` — the static-vs-dynamic cross-check
  harness.

:func:`analyze_kernel` is the one-call entry point; the engine router
(:func:`repro.execution.cache.run_kernel`) and the feature extractor call
it through the process-wide compilation cache so each kernel pays for the
analysis once.
"""

from __future__ import annotations

from repro.analysis.classify import (
    BAILOUT_CLASS_CODES,
    Classification,
    KernelVerdict,
    PredictedCause,
    classify,
)
from repro.analysis.divergence import (
    AccessSite,
    BarrierSite,
    DivergenceAnalysis,
    KernelFacts,
)
from repro.analysis.lattice import Div
from repro.analysis.passes import BarrierReport, RaceSite, barrier_divergence, race_hazards
from repro.analysis.specialize import SpecializationFacts, derive_specialization

__all__ = [
    "AccessSite",
    "AnalysisStats",
    "ANALYSIS_STATS",
    "BAILOUT_CLASS_CODES",
    "BarrierReport",
    "BarrierSite",
    "Classification",
    "Div",
    "DivergenceAnalysis",
    "KernelFacts",
    "KernelVerdict",
    "PredictedCause",
    "RaceSite",
    "SpecializationFacts",
    "analyze_kernel",
    "analyze_source",
    "barrier_divergence",
    "classify",
    "derive_specialization",
    "race_hazards",
]


class AnalysisStats:
    """Process-wide counters for static-routing observability."""

    def __init__(self):
        self.kernels_analyzed = 0
        self.routed_skips = 0
        self.last_classification: str = ""

    def reset(self) -> None:
        self.__init__()


ANALYSIS_STATS = AnalysisStats()


def analyze_kernel(unit, kernel_name: str | None = None) -> KernelVerdict:
    """Run all passes over one kernel of *unit* and return the verdict.

    Raises ``ValueError`` if the unit has no kernels; any analysis crash is
    converted into a maximally-conservative UNKNOWN verdict so a frontend
    corner case can never take the execution path down with it.
    """
    try:
        facts = DivergenceAnalysis(unit, kernel_name).run()
        verdict = classify(facts)
    except ValueError:
        raise
    except Exception as error:  # pragma: no cover - defensive
        name = kernel_name or (unit.kernels[0].name if unit.kernels else "<unknown>")
        verdict = KernelVerdict(
            kernel_name=name,
            classification=Classification.UNKNOWN,
            causes=(
                PredictedCause(
                    cause="analysis error",
                    kind="bailout",
                    certain=False,
                    detail=str(error),
                ),
            ),
        )
    ANALYSIS_STATS.kernels_analyzed += 1
    ANALYSIS_STATS.last_classification = verdict.classification.value
    return verdict


def analyze_source(source: str, kernel_name: str | None = None) -> KernelVerdict | None:
    """Compile *source* (with the shim) and analyze its (first) kernel.

    Returns ``None`` when the source does not compile — mirroring the
    feature extractor's contract.
    """
    from repro.errors import CompileError
    from repro.execution.cache import cached_compile_source
    from repro.preprocess.shim import shim_include_resolver, with_shim

    try:
        compilation = cached_compile_source(
            with_shim(source), include_resolver=shim_include_resolver, strict=False
        )
    except CompileError:
        return None
    if not compilation.unit.kernels:
        return None
    return analyze_kernel(compilation.unit, kernel_name)
