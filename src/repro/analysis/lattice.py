"""The divergence lattice shared by all static-analysis passes.

Each abstract value describes how a runtime value varies across the
work-items of one lockstep dispatch:

========= ==================================================================
element   meaning
========= ==================================================================
BOTTOM    no information yet (unreached code)
UNIFORM   identical on every work-item (literals, scalar kernel arguments,
          ``get_global_size`` and friends)
AFFINE    an *injective* per-lane value: the raw work-item id scaled by a
          non-zero literal plus a uniform offset (``gid``, ``gid + 4``,
          ``2 * gid - n``).  Distinct lanes are guaranteed distinct values,
          which is what makes a store subscript hazard-free.
DIVERGENT lane-dependent with no injectivity guarantee (``gid % 8``,
          ``data[gid]``, ``get_local_id(0)``)
========= ==================================================================

The order is total (``BOTTOM < UNIFORM < AFFINE < DIVERGENT``), so the join
is ``max`` and every fixpoint over environments terminates after at most
``len(env) * 3`` strict increases.  ``AFFINE`` deliberately does *not*
survive arbitrary arithmetic: any operator outside the injectivity-
preserving set degrades it to ``DIVERGENT``.
"""

from __future__ import annotations

from enum import IntEnum


class Div(IntEnum):
    """Abstract divergence of one value across the lanes of a dispatch."""

    BOTTOM = 0
    UNIFORM = 1
    AFFINE = 2
    DIVERGENT = 3


def join(*values: Div) -> Div:
    """Least upper bound; the lattice is a chain, so this is ``max``."""
    result = Div.BOTTOM
    for value in values:
        if value > result:
            result = value
    return result


def join_env(left: dict[str, Div], right: dict[str, Div]) -> dict[str, Div]:
    """Pointwise join of two abstract environments.

    A name bound on only one side keeps its binding (the other path never
    touched it, i.e. contributes BOTTOM).
    """
    merged = dict(left)
    for name, value in right.items():
        existing = merged.get(name, Div.BOTTOM)
        if value > existing:
            merged[name] = value
    return merged


def env_le(left: dict[str, Div], right: dict[str, Div]) -> bool:
    """Whether *left* ⊑ *right* pointwise (missing names are BOTTOM)."""
    for name, value in left.items():
        if value > right.get(name, Div.BOTTOM):
            return False
    return True


#: Upper bound on loop re-analysis rounds.  The chain has height 4 and
#: loop bodies bind finitely many names, so convergence is guaranteed well
#: before this; the cap is a safety net against analysis bugs, not a
#: precision knob.
FIXPOINT_LIMIT = 8
