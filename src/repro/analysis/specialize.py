"""Machine-consumable specialization facts for the lockstep tier.

The classifier's :class:`~repro.analysis.classify.KernelVerdict` answers a
*routing* question — which engine should run this kernel.  This module
answers a *code-generation* question: which of the vectorizer's analyzer-
guided fast paths are sound for it.  The facts are derived once per kernel
inside :func:`repro.analysis.classify.classify` and ride along on the
verdict, so the compilation cache can hand them to
``try_vectorize(..., specialization=...)`` without re-running any pass.

Three independent facts gate three fast paths:

``uniform_control``
    Every branch/loop/switch condition in the kernel (helpers included)
    joined to ``<= UNIFORM`` — no lane can ever diverge from the others,
    so the vectorizer may drop the divergence-mask machinery and compile
    scalar-condition control flow (*mask elision*).  The specialized
    engine still guards the claim dynamically: a condition that evaluates
    to a lane array at runtime raises ``LockstepBailout`` and execution
    falls back to the generic tier, bit-identically.

``hazard_free``
    Buffers for which the race pass emitted no hazard site.  Their
    ``LockstepBuffer`` views skip per-cell writer/reader tracking — the
    tracking exists only to *detect* the hazards the pass just proved
    absent.

``affine_streams``
    Buffers whose every access uses an AFFINE subscript (injective per
    lane) with one single canonical form shared across all sites.  Each
    lane touches exactly one cell and lanes form an arithmetic
    progression, so masked gather/scatter collapses to a strided slice.
    The stride claim is re-checked dynamically (a full vectorized
    equality against ``i0 + stride * lane``, cheaper than the clamped
    gather it replaces); a mismatch bails out to the generic tier.

``eligible`` requires the SAFE classification: SAFE supplies the
no-bailout obligations every fast path leans on (no barriers, no local
memory — hence never group-sequential mode — no atomics or pointer
tricks, no cross-lane hazards, bounded steps).  Uniform control is *not*
required: a SAFE-but-divergent kernel (the ubiquitous ``if (gid < n)``
bounds guard) still profits from hazard-tracking elision and strided
affine access; only the mask-elision paths additionally key off
``uniform_control``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.divergence import KernelFacts
from repro.analysis.lattice import Div
from repro.analysis.passes import RaceSite


@dataclass(frozen=True)
class SpecializationFacts:
    """Which analyzer-guided fast paths are sound for one kernel."""

    kernel_name: str
    #: Build a specialized artifact at all (requires SAFE).
    eligible: bool = False
    #: All control flow proven lane-uniform (mask elision is sound).
    uniform_control: bool = False
    #: Buffers with no hazard site — skip writer/reader tracking.
    hazard_free: frozenset[str] = field(default_factory=frozenset)
    #: Buffers whose accesses are all single-form AFFINE — strided views.
    affine_streams: frozenset[str] = field(default_factory=frozenset)

    def to_dict(self) -> dict:
        return {
            "eligible": self.eligible,
            "uniform_control": self.uniform_control,
            "hazard_free": sorted(self.hazard_free),
            "affine_streams": sorted(self.affine_streams),
        }


def derive_specialization(
    facts: KernelFacts, races: list[RaceSite], safe: bool
) -> SpecializationFacts:
    """Distill *facts* (+ the race pass's output) into specialization gates.

    ``safe`` is the classifier's SAFE determination; the fast paths lean on
    its obligations (see the module docstring) rather than re-deriving them.
    """
    uniform_control = facts.control_ceiling <= Div.UNIFORM

    racy = {site.buffer for site in races}
    hazard_free = frozenset(
        buffer for buffer in facts.buffer_spaces if buffer not in racy
    )

    affine: set[str] = set()
    for buffer, space in facts.buffer_spaces.items():
        if space != "global":
            continue
        sites = facts.accesses_for(buffer)
        if not sites:
            continue
        forms = {site.index_form for site in sites}
        if (
            all(site.index_div == Div.AFFINE for site in sites)
            and len(forms) == 1
            and None not in forms
            and all(site.loop_depth == 0 for site in sites)
            and all(site.atomic_op is None for site in sites)
        ):
            affine.add(buffer)

    return SpecializationFacts(
        kernel_name=facts.kernel_name,
        eligible=safe,
        uniform_control=uniform_control,
        hazard_free=hazard_free,
        affine_streams=frozenset(affine),
    )
