"""Static-vs-dynamic cross-check: the analyzer's soundness harness.

The classifier makes exactly one load-bearing promise: a kernel classified
``safe`` never raises :class:`~repro.errors.LockstepBailout` dynamically.
Every other prediction is a routing hint whose failure costs performance,
not correctness.  This module checks the promise (and measures the hints)
by running both legs for each kernel:

* **static leg** — :func:`repro.analysis.analyze_kernel` over the shimmed,
  compiled unit (the same unit the engines execute);
* **dynamic leg** — ``try_vectorize`` (a ``None`` verdict is recorded as
  ``"rejected"``), then one rule-based payload executed on the lockstep
  tier, recording a clean finish or the bailout cause.

A ``safe``-but-bailed kernel is a **violation** and fails the harness; a
``bailout``-but-clean kernel is a **precision miss** (the router skipped a
vectorization that would have worked) and is merely reported.  The CI lint
leg runs :func:`check_suites`; the full-scale gate additionally runs
:func:`check_synthesized` over ≥1000 freshly synthesized kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import analyze_kernel
from repro.analysis.classify import Classification
from repro.errors import CompileError, LockstepBailout, PayloadError

#: Executed payload shape; mirrors ``DriverConfig`` defaults so the harness
#: exercises the same dispatch geometry the measurement pipeline uses.
DEFAULT_GLOBAL_SIZE = 256
DEFAULT_LOCAL_SIZE = 64


@dataclass(slots=True)
class CrossCheckRecord:
    """The static and dynamic verdicts for one kernel, compared."""

    name: str
    static: str  # Classification value
    dynamic: str  # "clean" | "bailout" | "rejected" | "error" | "uncompilable"
    dynamic_cause: str = ""
    static_causes: tuple[str, ...] = ()

    @property
    def violation(self) -> bool:
        """A soundness breach: statically safe, dynamically bailed."""
        return self.static == Classification.SAFE.value and self.dynamic == "bailout"

    @property
    def precision_miss(self) -> bool:
        """A wasted skip: certain-bailout prediction, clean dynamic run."""
        return self.static == Classification.BAILOUT.value and self.dynamic == "clean"

    @property
    def agrees(self) -> bool:
        static, dynamic = self.static, self.dynamic
        if static == Classification.SAFE.value:
            return dynamic == "clean"
        if static == Classification.BAILOUT.value:
            return dynamic == "bailout"
        if static == Classification.REJECTED.value:
            return dynamic == "rejected"
        return True  # "unknown" makes no claim

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "static": self.static,
            "dynamic": self.dynamic,
            "dynamic_cause": self.dynamic_cause,
            "static_causes": list(self.static_causes),
            "agrees": self.agrees,
            "violation": self.violation,
            "precision_miss": self.precision_miss,
        }


@dataclass
class SoundnessReport:
    """Structured static-vs-dynamic disagreement report over one kernel set."""

    records: list[CrossCheckRecord] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def violations(self) -> list[CrossCheckRecord]:
        return [record for record in self.records if record.violation]

    @property
    def precision_misses(self) -> list[CrossCheckRecord]:
        return [record for record in self.records if record.precision_miss]

    @property
    def disagreements(self) -> list[CrossCheckRecord]:
        return [record for record in self.records if not record.agrees]

    @property
    def sound(self) -> bool:
        return not self.violations

    def classification_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.static] = counts.get(record.static, 0) + 1
        return counts

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "sound": self.sound,
            "violations": [record.to_dict() for record in self.violations],
            "precision_misses": len(self.precision_misses),
            "disagreements": [record.to_dict() for record in self.disagreements],
            "classification_counts": self.classification_counts(),
        }

    def summary(self) -> str:
        counts = self.classification_counts()
        parts = [f"{self.total} kernels"]
        parts.extend(f"{name}={count}" for name, count in sorted(counts.items()))
        parts.append(f"violations={len(self.violations)}")
        parts.append(f"precision_misses={len(self.precision_misses)}")
        return ", ".join(parts)


# ---------------------------------------------------------------------------
# One-kernel cross-check.
# ---------------------------------------------------------------------------


def cross_check_source(
    source: str,
    name: str = "<kernel>",
    kernel_name: str | None = None,
    max_steps_per_item: int = 50_000,
    global_size: int = DEFAULT_GLOBAL_SIZE,
    local_size: int = DEFAULT_LOCAL_SIZE,
) -> CrossCheckRecord:
    """Run both legs for one kernel source and compare them."""
    from repro.execution.cache import cached_compile_source
    from repro.preprocess.shim import shim_include_resolver, with_shim

    try:
        compilation = cached_compile_source(
            with_shim(source), include_resolver=shim_include_resolver, strict=False
        )
    except CompileError as error:
        return CrossCheckRecord(
            name=name,
            static=Classification.UNKNOWN.value,
            dynamic="uncompilable",
            dynamic_cause=str(error),
        )
    unit = compilation.unit
    if not unit.kernels:
        return CrossCheckRecord(
            name=name,
            static=Classification.UNKNOWN.value,
            dynamic="uncompilable",
            dynamic_cause="no kernel function",
        )

    verdict = analyze_kernel(unit, kernel_name)
    dynamic, cause = _dynamic_leg(
        unit, kernel_name, max_steps_per_item, global_size, local_size
    )
    return CrossCheckRecord(
        name=name,
        static=verdict.classification.value,
        dynamic=dynamic,
        dynamic_cause=cause,
        static_causes=tuple(verdict.cause_strings()),
    )


def _dynamic_leg(
    unit,
    kernel_name: str | None,
    max_steps_per_item: int,
    global_size: int,
    local_size: int,
) -> tuple[str, str]:
    """Vectorize and execute one payload; classify the outcome."""
    from repro.driver.harness import kernel_work_dim
    from repro.driver.payload import PayloadConfig, PayloadGenerator
    from repro.execution.vectorizer import try_vectorize

    vectorized = try_vectorize(unit, kernel_name, max_steps_per_item)
    if vectorized is None:
        return "rejected", ""
    kernel = unit.kernel(kernel_name) if kernel_name else unit.kernels[0]
    generator = PayloadGenerator(
        PayloadConfig(global_size=global_size, local_size=local_size)
    )
    try:
        # Dispatch 2-D kernels the way the driver would, so the dynamic leg
        # exercises the same lane geometry the analyzer models.
        payload = generator.generate(kernel, work_dim=kernel_work_dim(kernel))
    except PayloadError as error:
        return "error", f"payload: {error}"
    try:
        vectorized.execute(payload.pool, payload.scalar_args, payload.ndrange)
    except LockstepBailout as bailout:
        return "bailout", str(bailout)
    except Exception as error:  # pragma: no cover - defensive
        return "error", f"{type(error).__name__}: {error}"
    return "clean", ""


# ---------------------------------------------------------------------------
# Kernel-set drivers.
# ---------------------------------------------------------------------------


def cross_check_many(named_sources, **kwargs) -> SoundnessReport:
    """Cross-check an iterable of ``(name, source)`` pairs."""
    report = SoundnessReport()
    for name, source in named_sources:
        report.records.append(cross_check_source(source, name=name, **kwargs))
    return report


def check_suites(**kwargs) -> SoundnessReport:
    """Cross-check every benchmark kernel of every suite (paper Table 3)."""
    from repro.suites.registry import all_benchmarks

    return cross_check_many(
        (
            (benchmark.qualified_name, benchmark.source)
            for benchmark in all_benchmarks()
        ),
        **kwargs,
    )


def check_synthesized(
    count: int = 1000,
    seed: int = 0,
    repository_count: int = 40,
    **kwargs,
) -> SoundnessReport:
    """Cross-check *count* freshly synthesized kernels (the full-scale gate)."""
    from repro.synthesis.generator import CLgen

    synthesizer = CLgen.from_github(repository_count=repository_count, seed=seed)
    result = synthesizer.generate_kernels(count, seed=seed)
    return cross_check_many(
        (
            (f"clgen.{index}", kernel.source)
            for index, kernel in enumerate(result.kernels)
        ),
        **kwargs,
    )
