"""The bailout-cause classifier: analysis facts → concrete engine verdicts.

Maps the facts gathered by the divergence/barrier/race passes onto the
concrete causes the lockstep tier can raise — the ``NotVectorizable``
rejections of :func:`repro.execution.vectorizer.try_vectorize` and the
:class:`~repro.errors.LockstepBailout` causes raised mid-flight by the
vectorizer and its memory model — and condenses them into one of four
classifications:

=========  ==============================================================
verdict    meaning
=========  ==============================================================
safe       statically proven never to bail out: straight-line or
           uniformly-controlled code, per-lane-disjoint subscripts on
           every written buffer, bounded step count, no atomics/pointer
           tricks.  The soundness harness asserts this class never
           dynamically raises ``LockstepBailout``.
bailout    at least one *certain* bailout cause (divergent barrier,
           structural cross-lane hazard): attempting vectorization is a
           guaranteed waste, so ``engine="auto"`` routes straight to the
           closure engine.
rejected   uses a construct outside the lockstep subset; ``try_vectorize``
           would return ``None`` and the router falls back anyway.
unknown    none of the above — the attempt is worth making.
=========  ==============================================================

The classification is a *routing and reporting* verdict, never a
correctness decision: all engines are bit-identical, so a misprediction
costs only the bailed-out attempt it failed to avoid (or the successful
one it skipped).  Only the ``safe`` class carries a soundness obligation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.analysis import divergence as dv
from repro.analysis.divergence import KernelFacts
from repro.analysis.passes import BarrierReport, RaceSite, barrier_divergence, race_hazards
from repro.analysis.specialize import SpecializationFacts, derive_specialization

#: Step allowance for the ``safe`` class, against the lockstep tier's
#: 50 000 steps-per-item default budget.  The estimate already assumes
#: pessimistic trip counts, so anything under this cannot plausibly trip
#: the budget bailout.
SAFE_STEP_ALLOWANCE = 40_000.0


class Classification(str, Enum):
    SAFE = "safe"
    UNKNOWN = "unknown"
    REJECTED = "rejected"
    BAILOUT = "bailout"


#: Stable integer encoding for the feature extractor (ordered by how
#: doomed the lockstep attempt is).
BAILOUT_CLASS_CODES = {
    Classification.SAFE: 0,
    Classification.UNKNOWN: 1,
    Classification.REJECTED: 2,
    Classification.BAILOUT: 3,
}


@dataclass(frozen=True, slots=True)
class PredictedCause:
    """One concrete cause the lockstep tier could raise for this kernel."""

    cause: str  # phrased to match vectorizer.py / memory.py messages
    kind: str  # "rejection" | "bailout"
    certain: bool = False
    detail: str = ""


@dataclass
class KernelVerdict:
    """The static analyzer's complete verdict for one kernel."""

    kernel_name: str
    classification: Classification
    causes: tuple[PredictedCause, ...] = ()
    divergent_barriers: int = 0
    barrier_count: int = 0
    race_sites: int = 0
    step_estimate: float = 0.0
    flags: frozenset[str] = frozenset()
    #: Analyzer-guided fast-path gates for the lockstep tier (``None`` on
    #: conservative fallback verdicts built without a completed analysis).
    specialization: SpecializationFacts | None = None

    @property
    def bailout_class(self) -> int:
        """Integer encoding of the classification (feature column)."""
        return BAILOUT_CLASS_CODES[self.classification]

    @property
    def skip_vectorization(self) -> bool:
        """Whether ``engine="auto"`` should not bother attempting lockstep."""
        return self.classification is Classification.BAILOUT

    @property
    def lockstep_safe(self) -> bool:
        return self.classification is Classification.SAFE

    def cause_strings(self) -> list[str]:
        return [cause.cause for cause in self.causes]

    def to_dict(self) -> dict:
        """JSON-encodable form, for lint artifacts and reports."""
        return {
            "kernel": self.kernel_name,
            "classification": self.classification.value,
            "bailout_class": self.bailout_class,
            "causes": [
                {
                    "cause": cause.cause,
                    "kind": cause.kind,
                    "certain": cause.certain,
                    "detail": cause.detail,
                }
                for cause in self.causes
            ],
            "divergent_barriers": self.divergent_barriers,
            "barrier_count": self.barrier_count,
            "race_sites": self.race_sites,
            "step_estimate": self.step_estimate,
            "flags": sorted(self.flags),
            "specialization": (
                None if self.specialization is None else self.specialization.to_dict()
            ),
        }


# Flag -> static rejection cause (mirrors try_vectorize's NotVectorizable
# messages).  Any of these means the kernel never enters the lockstep tier.
_REJECTION_CAUSES = {
    dv.FLAG_ADDRESS_OF: "address-of operator",
    dv.FLAG_VLOAD_VSTORE: "vector load/store",
    dv.FLAG_RECURSIVE_HELPER: "recursive helper function",
    dv.FLAG_ATOMIC_ORDER_DEPENDENT: "order-dependent atomic",
    dv.FLAG_ATOMIC_RESULT_USED: "atomic operation with a used result",
    dv.FLAG_VECTOR_CAST: "vector cast",
    dv.FLAG_VECTOR_MEMBER_STORE: "vector member store",
    dv.FLAG_VECTOR_DECL: "vector-typed declaration",
    dv.FLAG_VECTOR_PARAM: "vector-typed scalar parameter",
    dv.FLAG_VECTOR_ELEMENT_POINTER: "vector-element pointer parameter",
    dv.FLAG_VECTOR_LITERAL: "vector-typed declaration",
}

# Flag -> possible (never certain) dynamic bailout cause.
_BAILOUT_FLAG_CAUSES = {
    dv.FLAG_HELPER_FALLOFF: "helper fell off the end on some lanes",
    dv.FLAG_POINTER_TERNARY_DIVERGENT: "divergent pointer-valued ternary",
    dv.FLAG_POINTER_REBIND_DIVERGENT: "per-lane pointer rebinding",
    dv.FLAG_PRIVATE_ARRAY_DIVERGENT_SIZE: "lane-divergent private array size",
    dv.FLAG_PRIVATE_ARRAY_DIVERGENT_DECL: "divergent private-array declaration",
    dv.FLAG_ATOMIC_PRIVATE: "atomic on a private array",
    dv.FLAG_OVERFLOW_RISK: "stored value exceeds int64",
}

_HAZARD_CAUSES = {
    "waw": "cross-lane write-after-write hazard",
    "raw": "cross-lane read-after-write hazard",
    "war": "cross-lane write-after-read hazard",
    "atomic-mix": "atomic after plain write",
}

#: Flags that are compatible with a ``safe`` verdict.  Everything else —
#: pointer tricks, vector ops, atomics, helper pathologies, unknown
#: constructs — drops the kernel to ``unknown`` at best.
_SAFE_FLAGS = frozenset()


def classify(facts: KernelFacts) -> KernelVerdict:
    """Condense *facts* into a :class:`KernelVerdict`."""
    barriers: BarrierReport = barrier_divergence(facts)
    races: list[RaceSite] = race_hazards(facts)

    causes: list[PredictedCause] = []
    for flag in sorted(facts.flags):
        rejection = _REJECTION_CAUSES.get(flag)
        if rejection is not None:
            causes.append(
                PredictedCause(cause=rejection, kind="rejection", certain=True, detail=flag)
            )
    rejected = any(cause.kind == "rejection" for cause in causes)

    for site in barriers.divergent:
        causes.append(
            PredictedCause(
                cause="divergent work-group barrier",
                kind="bailout",
                # A barrier under an additional data-dependent guard (or
                # inside a loop that may run zero trips) might never
                # execute, so only an unconditionally-reached site backs
                # the certain verdict.
                certain=not site.conditional,
                detail="barrier under lane-dependent control",
            )
        )
    for site in races:
        causes.append(
            PredictedCause(
                cause=_HAZARD_CAUSES[site.hazard],
                kind="bailout",
                certain=site.certain,
                detail=f"{site.buffer}: {site.detail}",
            )
        )
    for flag in sorted(facts.flags):
        bailout = _BAILOUT_FLAG_CAUSES.get(flag)
        if bailout is not None:
            causes.append(
                PredictedCause(cause=bailout, kind="bailout", certain=False, detail=flag)
            )
    if facts.step_estimate == float("inf"):
        causes.append(
            PredictedCause(
                cause="step budget exceeded (possible timeout)",
                kind="bailout",
                certain=False,
                detail="statically unbounded loop",
            )
        )

    if rejected:
        classification = Classification.REJECTED
    elif any(cause.kind == "bailout" and cause.certain for cause in causes):
        classification = Classification.BAILOUT
    elif _is_safe(facts, barriers, races, causes):
        classification = Classification.SAFE
    else:
        classification = Classification.UNKNOWN

    return KernelVerdict(
        kernel_name=facts.kernel_name,
        classification=classification,
        causes=tuple(causes),
        divergent_barriers=barriers.divergent_count,
        barrier_count=barriers.total,
        race_sites=len(races),
        step_estimate=facts.step_estimate,
        flags=frozenset(facts.flags),
        specialization=derive_specialization(
            facts, races, safe=classification is Classification.SAFE
        ),
    )


def _is_safe(
    facts: KernelFacts,
    barriers: BarrierReport,
    races: list[RaceSite],
    causes: list[PredictedCause],
) -> bool:
    """The conservative never-bails criterion (see the module docstring)."""
    if causes:
        return False
    if facts.flags - _SAFE_FLAGS:
        return False
    if barriers.total:
        # Uniform kernel-body barriers never bail by themselves, but they
        # force group-sequential mode and interact with the hazard epochs;
        # stay out of the safe class until that interaction is modelled.
        return False
    if races:
        return False
    if not facts.step_estimate <= SAFE_STEP_ALLOWANCE:
        return False
    # Local address-space usage rides on group-mode lane numbering, which
    # the affine-injectivity argument does not cover.
    if any(space == "local" for space in facts.buffer_spaces.values()):
        return False
    return True
