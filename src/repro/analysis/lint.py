"""The ``repro lint`` front end: static verdicts over kernel sets.

Linting is analysis without execution: each kernel is compiled (with the
shim), pushed through the dataflow passes, and reported with its
classification, predicted causes and pass counters.  The CLI uses this for
ad-hoc files and the benchmark suites; the synthesis pipeline uses it as an
optional pre-execution filter (``PipelineConfig.lint_filter``), persisting
the verdicts as a fingerprinted store artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import analyze_source
from repro.analysis.classify import Classification, KernelVerdict


@dataclass(slots=True)
class LintRecord:
    """The lint outcome for one named kernel source."""

    name: str
    verdict: KernelVerdict | None = None
    error: str = ""

    @property
    def classification(self) -> str:
        if self.verdict is None:
            return "uncompilable"
        return self.verdict.classification.value

    def to_dict(self) -> dict:
        payload = {"name": self.name, "classification": self.classification}
        if self.verdict is not None:
            payload["verdict"] = self.verdict.to_dict()
        if self.error:
            payload["error"] = self.error
        return payload


@dataclass
class LintReport:
    """Lint outcomes over one kernel set, with summary counters."""

    records: list[LintRecord] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.records)

    def by_classification(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.classification] = counts.get(record.classification, 0) + 1
        return counts

    @property
    def bailout_certain(self) -> list[LintRecord]:
        return [
            record
            for record in self.records
            if record.verdict is not None
            and record.verdict.classification is Classification.BAILOUT
        ]

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "by_classification": self.by_classification(),
            "records": [record.to_dict() for record in self.records],
        }

    def summary(self) -> str:
        counts = self.by_classification()
        parts = [f"{self.total} kernels"]
        parts.extend(f"{name}={count}" for name, count in sorted(counts.items()))
        return ", ".join(parts)


def lint_source(source: str, name: str = "<kernel>") -> LintRecord:
    """Lint one kernel source string."""
    try:
        verdict = analyze_source(source)
    except Exception as error:  # pragma: no cover - defensive
        return LintRecord(name=name, error=f"{type(error).__name__}: {error}")
    if verdict is None:
        return LintRecord(name=name, error="does not compile")
    return LintRecord(name=name, verdict=verdict)


def lint_sources(named_sources) -> LintReport:
    """Lint an iterable of ``(name, source)`` pairs."""
    report = LintReport()
    for name, source in named_sources:
        report.records.append(lint_source(source, name=name))
    return report


def lint_paths(paths) -> LintReport:
    """Lint kernel files (each file is one translation unit)."""

    def _iter():
        for raw in paths:
            path = Path(raw)
            try:
                text = path.read_text(encoding="utf-8", errors="replace")
            except OSError as error:
                yield str(path), None, str(error)
                continue
            yield str(path), text, ""

    report = LintReport()
    for name, text, error in _iter():
        if text is None:
            report.records.append(LintRecord(name=name, error=error))
        else:
            report.records.append(lint_source(text, name=name))
    return report


def lint_suites() -> LintReport:
    """Lint every benchmark kernel of every suite."""
    from repro.suites.registry import all_benchmarks

    return lint_sources(
        (benchmark.qualified_name, benchmark.source) for benchmark in all_benchmarks()
    )
