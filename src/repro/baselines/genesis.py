"""A GENESIS-style template benchmark generator (related-work baseline).

GENESIS (Chiu, Garvey and Abdelrahman, CF 2015) is the template approach the
paper contrasts against: an expert annotates a parameterised program
skeleton with statistical distributions over features, and instances are
drawn from those distributions.  It is effective inside a constrained domain
(stencils are the canonical example) but cannot invent programs outside the
templates an expert wrote.

This module reproduces that approach for the comparison experiments: a
handful of expert-written stencil/map skeletons whose knobs (footprint,
compute intensity, bounds handling) are drawn from user-supplied
distributions.  Used by the ablation benchmarks to show where template
generation sits between CLSmith and CLgen in feature-space coverage.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass
class FeatureDistribution:
    """A discrete distribution over a template parameter."""

    values: list[int | float | str]
    weights: list[float] | None = None

    def sample(self, rng: random.Random):
        return rng.choices(self.values, weights=self.weights, k=1)[0]


@dataclass
class GenesisConfig:
    """Distributions over the template parameters."""

    stencil_radius: FeatureDistribution = field(
        default_factory=lambda: FeatureDistribution([1, 1, 2, 3])
    )
    compute_intensity: FeatureDistribution = field(
        default_factory=lambda: FeatureDistribution([1, 2, 4, 8])
    )
    data_type: FeatureDistribution = field(
        default_factory=lambda: FeatureDistribution(["float", "float", "double"])
    )
    bounds_check: FeatureDistribution = field(
        default_factory=lambda: FeatureDistribution([True, False], [0.8, 0.2])
    )
    seed: int = 0


class GenesisGenerator:
    """Instantiates stencil/map templates from statistical distributions."""

    def __init__(self, config: GenesisConfig | None = None):
        self.config = config or GenesisConfig()
        self._rng = random.Random(self.config.seed)

    def generate_kernel(self, index: int = 0) -> str:
        rng = self._rng
        template = rng.choice(["stencil1d", "map"])
        if template == "stencil1d":
            return self._stencil1d(index)
        return self._map(index)

    def generate_kernels(self, count: int) -> list[str]:
        return [self.generate_kernel(i) for i in range(count)]

    # ------------------------------------------------------------------

    def _stencil1d(self, index: int) -> str:
        rng = self._rng
        radius = int(self.config.stencil_radius.sample(rng))
        dtype = str(self.config.data_type.sample(rng))
        intensity = int(self.config.compute_intensity.sample(rng))
        taps = []
        for offset in range(-radius, radius + 1):
            weight = round(1.0 / (2 * radius + 1), 4)
            sign = "+" if offset >= 0 else "-"
            taps.append(f"{weight}f * in[i {sign} {abs(offset)}]")
        accumulate = " + ".join(taps)
        compute = "\n".join(
            f"    acc = acc * 0.99f + {0.01 * (k + 1):.3f}f;" for k in range(intensity)
        )
        return (
            f"__kernel void genesis_stencil_{index}(__global const {dtype}* in, "
            f"__global {dtype}* out, const int n) {{\n"
            f"  int i = get_global_id(0);\n"
            f"  if (i >= {radius} && i < n - {radius}) {{\n"
            f"    {dtype} acc = {accumulate};\n"
            f"{compute}\n"
            f"    out[i] = acc;\n"
            f"  }}\n"
            f"}}\n"
        )

    def _map(self, index: int) -> str:
        rng = self._rng
        dtype = str(self.config.data_type.sample(rng))
        intensity = int(self.config.compute_intensity.sample(rng))
        bounds = bool(self.config.bounds_check.sample(rng))
        compute = "\n".join(
            f"  v = v * 1.01f + {0.5 / (k + 1):.3f}f;" for k in range(intensity)
        )
        check = "  if (i >= n) return;\n" if bounds else ""
        return (
            f"__kernel void genesis_map_{index}(__global const {dtype}* in, "
            f"__global {dtype}* out, const int n) {{\n"
            f"  int i = get_global_id(0);\n"
            f"{check}"
            f"  {dtype} v = in[i];\n"
            f"{compute}\n"
            f"  out[i] = v;\n"
            f"}}\n"
        )


def generate_genesis_kernels(count: int, seed: int = 0) -> list[str]:
    """Convenience wrapper: *count* template-generated kernels."""
    return GenesisGenerator(GenesisConfig(seed=seed)).generate_kernels(count)
