"""``repro.baselines`` — comparator program generators (CLSmith, GENESIS)."""

from repro.baselines.clsmith import CLSmithConfig, CLSmithGenerator, generate_clsmith_kernels
from repro.baselines.genesis import (
    FeatureDistribution,
    GenesisConfig,
    GenesisGenerator,
    generate_genesis_kernels,
)

__all__ = [
    "CLSmithConfig",
    "CLSmithGenerator",
    "FeatureDistribution",
    "GenesisConfig",
    "GenesisGenerator",
    "generate_clsmith_kernels",
    "generate_genesis_kernels",
]
