"""The Grewe et al. feature set (Table 2b) and its §8.2 extension.

The original model uses four *combined* features built from the raw static
and dynamic measurements:

========  ===============================  =================================
feature   definition                        interpretation
========  ===============================  =================================
F1        transfer / (comp + mem)           communication–computation ratio
F2        coalesced / mem                   % coalesced memory accesses
F3        (localmem / mem) × wgsize         local/global ratio × work-items
F4        comp / mem                        computation–memory ratio
========  ===============================  =================================

§8.2 extends the model with the raw feature values *and* a static branch
count after the synthetic benchmarks exposed two failure modes of the
combined-only features (sparsity of F3 and feature collisions on branching
behaviour, Listing 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.driver.harness import KernelMeasurement
from repro.features.dynamic_features import DynamicFeatures
from repro.features.static_features import StaticFeatures

#: Feature names, in vector order, for the original Grewe et al. model.
GREWE_FEATURE_NAMES = ("F1_transfer_per_op", "F2_coalesced_per_mem", "F3_local_per_mem_x_wg", "F4_comp_per_mem")

#: Feature names, in vector order, for the extended model of §8.2.
EXTENDED_FEATURE_NAMES = (
    "comp",
    "mem",
    "localmem",
    "coalesced",
    "branches",
    "transfer",
    "wgsize",
) + GREWE_FEATURE_NAMES


def _safe_ratio(numerator: float, denominator: float) -> float:
    if denominator == 0:
        return 0.0
    return numerator / denominator


@dataclass(frozen=True)
class GreweFeatures:
    """The four combined features of the original model."""

    f1_communication_computation: float
    f2_coalesced_fraction: float
    f3_local_work: float
    f4_computation_memory: float

    @classmethod
    def from_raw(cls, static: StaticFeatures, dynamic: DynamicFeatures) -> "GreweFeatures":
        return cls(
            f1_communication_computation=_safe_ratio(
                dynamic.transfer, static.comp + static.mem
            ),
            f2_coalesced_fraction=_safe_ratio(static.coalesced, static.mem),
            f3_local_work=_safe_ratio(static.localmem, static.mem) * dynamic.wgsize,
            f4_computation_memory=_safe_ratio(static.comp, static.mem),
        )

    def vector(self) -> list[float]:
        return [
            self.f1_communication_computation,
            self.f2_coalesced_fraction,
            self.f3_local_work,
            self.f4_computation_memory,
        ]


@dataclass(frozen=True)
class FeatureVector:
    """A named feature vector for one kernel/dataset observation."""

    names: tuple[str, ...]
    values: tuple[float, ...]

    def as_list(self) -> list[float]:
        return list(self.values)

    def __len__(self) -> int:
        return len(self.values)


def static_features_of(measurement: KernelMeasurement) -> StaticFeatures:
    """Static features for a measurement's kernel."""
    return StaticFeatures.from_compilation(measurement.compilation, measurement.kernel_name)


def grewe_feature_vector(measurement: KernelMeasurement) -> FeatureVector:
    """The original 4-element Grewe et al. feature vector."""
    static = static_features_of(measurement)
    dynamic = DynamicFeatures.from_measurement(measurement)
    return FeatureVector(
        names=GREWE_FEATURE_NAMES, values=tuple(GreweFeatures.from_raw(static, dynamic).vector())
    )


def extended_feature_vector(measurement: KernelMeasurement) -> FeatureVector:
    """The §8.2 extended vector: raw features + branch count + combined features."""
    static = static_features_of(measurement)
    dynamic = DynamicFeatures.from_measurement(measurement)
    combined = GreweFeatures.from_raw(static, dynamic)
    values = (
        float(static.comp),
        float(static.mem),
        float(static.localmem),
        float(static.coalesced),
        float(static.branches),
        float(dynamic.transfer),
        float(dynamic.wgsize),
        *combined.vector(),
    )
    return FeatureVector(names=EXTENDED_FEATURE_NAMES, values=values)
