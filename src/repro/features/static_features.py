"""Static code features (Table 2a of the paper).

The four static features of the Grewe et al. model — compute operations,
global memory accesses, local memory accesses and coalesced memory accesses
— plus the *branch* feature added in §8.2, are all defined over the PTX-like
IR produced by :mod:`repro.clc.codegen`, giving a single consistent
definition for the rejection filter, the feature extractor and the
feature-space comparisons of Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clc import CompilationResult, compile_source
from repro.clc.ir import IRFunction
from repro.errors import CompileError
from repro.preprocess.shim import shim_include_resolver, with_shim


@dataclass(frozen=True)
class StaticFeatures:
    """Static per-kernel feature counts."""

    comp: int  #: number of compute operations
    mem: int  #: number of accesses to global memory
    localmem: int  #: number of accesses to local memory
    coalesced: int  #: number of coalesced global memory accesses
    branches: int  #: number of branching operations (the §8.2 extension)
    static_instructions: int = 0
    #: Static-analyzer columns (``with_analysis``): the divergent-barrier
    #: and race-site counts from the dataflow passes, and the classifier's
    #: integer class code (:data:`repro.analysis.BAILOUT_CLASS_CODES`).
    #: Zero unless analysis was explicitly requested, so the default
    #: extraction path (the rejection filter's hot loop) never pays for it.
    divergent_barriers: int = 0
    race_sites: int = 0
    bailout_class: int = 0

    def as_tuple(self) -> tuple[int, int, int, int]:
        """The Table 2a quadruple (without the branch extension)."""
        return (self.comp, self.mem, self.localmem, self.coalesced)

    def as_extended_tuple(self) -> tuple[int, int, int, int, int]:
        """The quadruple plus the branch feature."""
        return (self.comp, self.mem, self.localmem, self.coalesced, self.branches)

    def as_analysis_tuple(self) -> tuple[int, int, int, int, int, int, int, int]:
        """The extended tuple plus the static-analyzer columns."""
        return self.as_extended_tuple() + (
            self.divergent_barriers,
            self.race_sites,
            self.bailout_class,
        )

    def with_analysis(
        self, compilation: CompilationResult, kernel_name: str | None = None
    ) -> "StaticFeatures":
        """A copy with the analyzer columns filled from *compilation*.

        Analysis is opt-in: it costs a dataflow fixpoint per kernel, which
        the rejection filter must not pay for every candidate.
        """
        import dataclasses

        from repro.execution.cache import analysis_verdict_for

        verdict = analysis_verdict_for(compilation.unit, kernel_name)
        return dataclasses.replace(
            self,
            divergent_barriers=verdict.divergent_barriers,
            race_sites=verdict.race_sites,
            bailout_class=verdict.bailout_class,
        )

    @classmethod
    def from_ir_function(cls, function: IRFunction) -> "StaticFeatures":
        return cls(
            comp=function.compute_operations,
            mem=function.global_memory_accesses,
            localmem=function.local_memory_accesses,
            coalesced=function.coalesced_memory_accesses,
            branches=function.branch_operations,
            static_instructions=function.static_instruction_count,
        )

    @classmethod
    def from_compilation(
        cls, compilation: CompilationResult, kernel_name: str | None = None
    ) -> "StaticFeatures":
        """Features of one kernel (plus its helper functions' contributions)."""
        kernels = compilation.unit.kernels
        if not kernels:
            raise ValueError("compilation contains no kernels")
        target = kernel_name or kernels[0].name
        ir_function = compilation.ir.function(target)
        features = cls.from_ir_function(ir_function)

        # Helper functions called from the kernel contribute their operations
        # too (a compiler would inline them); add them once each.
        helper_totals = [
            cls.from_ir_function(f)
            for f in compilation.ir.functions
            if not f.is_kernel
        ]
        if not helper_totals:
            return features
        return cls(
            comp=features.comp + sum(h.comp for h in helper_totals),
            mem=features.mem + sum(h.mem for h in helper_totals),
            localmem=features.localmem + sum(h.localmem for h in helper_totals),
            coalesced=features.coalesced + sum(h.coalesced for h in helper_totals),
            branches=features.branches + sum(h.branches for h in helper_totals),
            static_instructions=features.static_instructions
            + sum(h.static_instructions for h in helper_totals),
        )


def extract_static_features(
    source: str, kernel_name: str | None = None, with_analysis: bool = False
) -> StaticFeatures | None:
    """Compile *source* (with the shim) and extract static features.

    Returns ``None`` if the source does not compile — mirroring how kernels
    that fail to build are excluded from feature-space comparisons.  With
    ``with_analysis`` the analyzer columns are filled too (opt-in: a
    dataflow fixpoint per kernel).
    """
    try:
        compilation = compile_source(
            with_shim(source), include_resolver=shim_include_resolver, strict=False
        )
    except CompileError:
        return None
    if not compilation.unit.kernels:
        return None
    features = StaticFeatures.from_compilation(compilation, kernel_name)
    if with_analysis:
        features = features.with_analysis(compilation, kernel_name)
    return features
