"""``repro.features`` — the Grewe et al. feature set and its extension."""

from repro.features.dynamic_features import DynamicFeatures
from repro.features.grewe import (
    EXTENDED_FEATURE_NAMES,
    GREWE_FEATURE_NAMES,
    FeatureVector,
    GreweFeatures,
    extended_feature_vector,
    grewe_feature_vector,
    static_features_of,
)
from repro.features.pca import PCA, PCAResult
from repro.features.static_features import StaticFeatures, extract_static_features

__all__ = [
    "DynamicFeatures",
    "EXTENDED_FEATURE_NAMES",
    "FeatureVector",
    "GREWE_FEATURE_NAMES",
    "GreweFeatures",
    "PCA",
    "PCAResult",
    "StaticFeatures",
    "extended_feature_vector",
    "extract_static_features",
    "grewe_feature_vector",
    "static_features_of",
]
