"""Dynamic features (Table 2a): data-transfer size and work-group size.

These come from the OpenCL runtime in the paper; here they come from the
host driver's payload accounting and launch configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.driver.harness import KernelMeasurement


@dataclass(frozen=True)
class DynamicFeatures:
    """Dynamic per-execution features."""

    transfer: float  #: size of host↔device data transfers, in bytes
    wgsize: int  #: number of work-items per kernel (work-group size)

    @classmethod
    def from_measurement(cls, measurement: KernelMeasurement) -> "DynamicFeatures":
        return cls(
            transfer=float(measurement.transfer_bytes),
            wgsize=int(measurement.work_group_size),
        )

    def as_tuple(self) -> tuple[float, int]:
        return (self.transfer, self.wgsize)
