"""Principal Component Analysis, used for the Figure 3 feature-space plots.

A small from-scratch implementation (numpy SVD on standardized data) — the
paper uses PCA purely to project the multi-dimensional Grewe feature space
onto two dimensions for visualisation of which benchmarks have neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class PCAResult:
    """A fitted projection."""

    components: np.ndarray  # (n_components, n_features)
    mean: np.ndarray
    scale: np.ndarray
    explained_variance_ratio: np.ndarray

    def transform(self, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data, dtype=float)
        centred = (data - self.mean) / self.scale
        return centred @ self.components.T


class PCA:
    """Fit/transform interface over standardized input columns."""

    def __init__(self, n_components: int = 2):
        self.n_components = n_components

    def fit(self, data: np.ndarray) -> PCAResult:
        data = np.asarray(data, dtype=float)
        if data.ndim != 2 or data.shape[0] < 2:
            raise ValueError("PCA needs a 2D array with at least two rows")
        mean = data.mean(axis=0)
        scale = data.std(axis=0)
        scale[scale == 0] = 1.0
        centred = (data - mean) / scale
        _, singular_values, v_transposed = np.linalg.svd(centred, full_matrices=False)
        components = v_transposed[: self.n_components]
        variance = singular_values**2
        total = variance.sum() or 1.0
        explained = variance[: self.n_components] / total
        return PCAResult(
            components=components, mean=mean, scale=scale, explained_variance_ratio=explained
        )

    def fit_transform(self, data: np.ndarray) -> tuple[np.ndarray, PCAResult]:
        result = self.fit(data)
        return result.transform(data), result
