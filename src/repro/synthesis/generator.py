"""CLgen: the benchmark synthesizer facade (paper §4).

Ties the pipeline together: a language corpus (mined or provided), a trained
character-level model, Algorithm-1 sampling from an argument-specification
seed, and the same rejection filter used on GitHub content files.  The
output is a stream of unique, compilable synthetic kernels ready for the
host driver.
"""

from __future__ import annotations

import hashlib
import random
import re
from dataclasses import dataclass, field

from repro.clc import CompilationResult
from repro.corpus.corpus import Corpus
from repro.errors import CompileError, RewriterError, SynthesisError
from repro.model.backend import LanguageModel
from repro.model.lstm import LSTMConfig
from repro.model.trainer import TrainerConfig, ModelTrainer
from repro.preprocess.rejection import RejectionFilter
from repro.preprocess.rewriter import CodeRewriter
from repro.preprocess.shim import SHIM_FEATURE_MACROS, SHIM_TYPEDEFS
from repro.synthesis.argspec import ArgumentSpec
from repro.synthesis.sampler import KernelSampler, SamplerConfig, stream_rng

#: Candidates matching this pattern take the slow text rewrite path.  The
#: rejection check compiles under the shim prelude's macro table while the
#: rewriter's text path predefines only ``SHIM_CONSTANTS`` and re-seeds the
#: typedefs itself, so a candidate mentioning a feature-macro or typedef
#: name — or carrying its own preprocessor directive — could legitimately
#: expand differently between the two environments.  Everything else (the
#: overwhelming majority of sampled kernels) rewrites straight from the
#: check's already-parsed AST, byte-identically.
_REWRITE_TEXT_PATH = re.compile(
    "#|\\b(?:" + "|".join(sorted(set(SHIM_FEATURE_MACROS) | set(SHIM_TYPEDEFS))) + ")\\b"
)


@dataclass
class SyntheticKernel:
    """One accepted synthetic benchmark kernel."""

    source: str
    raw_sample: str
    argument_spec: ArgumentSpec
    attempt_index: int
    static_instruction_count: int = 0

    @property
    def content_hash(self) -> str:
        return hashlib.sha1(self.source.encode("utf-8")).hexdigest()[:16]


@dataclass
class SynthesisStatistics:
    """Bookkeeping over a synthesis run (used by EXPERIMENTS.md and tests)."""

    requested: int = 0
    generated: int = 0
    attempts: int = 0
    rejected: int = 0
    duplicates: int = 0
    incomplete_samples: int = 0
    characters_sampled: int = 0
    rejection_reasons: dict[str, int] = field(default_factory=dict)

    @property
    def acceptance_rate(self) -> float:
        if self.attempts == 0:
            return 0.0
        return self.generated / self.attempts


@dataclass
class SynthesisResult:
    """Kernels plus statistics from one :meth:`CLgen.generate_kernels` call."""

    kernels: list[SyntheticKernel]
    statistics: SynthesisStatistics

    @property
    def sources(self) -> list[str]:
        return [kernel.source for kernel in self.kernels]


@dataclass
class KernelStreamResult:
    """What one independently-seeded kernel stream produced.

    Stream *index* samples with :func:`repro.synthesis.sampler.stream_rng`
    ``(sample_seed, index)`` and its own attempt budget/statistics, entirely
    unaware of every other stream — which is what lets sample shards fan out
    like execute shards.  ``kernel`` is ``None`` when the stream exhausted
    its attempt budget.  Batch-level uniqueness is restored afterwards by
    :func:`merge_stream_results`.
    """

    index: int
    kernel: SyntheticKernel | None
    statistics: SynthesisStatistics


def merge_stream_results(
    entries: list[KernelStreamResult], requested: int
) -> SynthesisResult:
    """Combine per-stream results into one batch, deduplicating across streams.

    Entries must arrive in stream-index order (shard merges concatenate
    range shards, which preserves it).  Deduplication keeps the first
    occurrence of a source by index and reclassifies later occurrences as
    duplicate rejections — the deterministic, store-mediated replacement for
    the old sequential chain's shared seen-hash set.  Pure recombination
    (no RNG, no wall-clock): merging the same entries always produces the
    same bytes, whichever worker runs it.
    """
    statistics = SynthesisStatistics(requested=requested)
    kernels: list[SyntheticKernel] = []
    seen_sources: set[str] = set()
    for entry in entries:
        stream = entry.statistics
        statistics.attempts += stream.attempts
        statistics.generated += stream.generated
        statistics.rejected += stream.rejected
        statistics.duplicates += stream.duplicates
        statistics.incomplete_samples += stream.incomplete_samples
        statistics.characters_sampled += stream.characters_sampled
        for reason, count in stream.rejection_reasons.items():
            statistics.rejection_reasons[reason] = (
                statistics.rejection_reasons.get(reason, 0) + count
            )
        if entry.kernel is None:
            continue
        if entry.kernel.source in seen_sources:
            # The stream accepted this kernel locally, but an earlier stream
            # got there first: reclassify its accepting attempt as a
            # duplicate rejection so `generated + rejected == attempts`
            # stays invariant.
            statistics.generated -= 1
            statistics.duplicates += 1
            statistics.rejected += 1
            statistics.rejection_reasons["duplicate"] = (
                statistics.rejection_reasons.get("duplicate", 0) + 1
            )
            continue
        seen_sources.add(entry.kernel.source)
        kernels.append(entry.kernel)
    return SynthesisResult(kernels=kernels, statistics=statistics)


class _WavefrontLane:
    """One active attempt of one kernel stream riding in the sample batch.

    Carries everything that makes its stream independent — the stream's own
    RNG, statistics and dedup set — plus the finished attempt's suffix and
    outcome (written by the wavefront driver, which tracks the in-flight
    per-character state itself).  A lane outlives attempts: a rejected
    attempt keeps the stream state, and a resolved stream hands its lane to
    the next pending stream index.
    """

    __slots__ = (
        "index",
        "rng",
        "statistics",
        "seen_hashes",
        "attempt",
        "suffix",
        "sampled",
        "completed",
    )

    def __init__(self, index: int, seed: int):
        self.index = index
        self.rng = stream_rng(seed, index)
        self.statistics = SynthesisStatistics(requested=1)
        self.seen_hashes: set[str] = set()
        self.attempt = 0
        self.suffix: list[str] = []
        self.sampled = 0
        self.completed = False

    def start_attempt(self) -> None:
        self.attempt += 1


class CLgen:
    """The benchmark synthesizer."""

    #: Bound on the memo of per-candidate rejection/normalization outcomes.
    _CANDIDATE_CACHE_LIMIT = 8192

    def __init__(
        self,
        model: LanguageModel,
        corpus: Corpus | None = None,
        sampler_config: SamplerConfig | None = None,
        min_static_instructions: int = 3,
        normalize_output: bool = True,
    ):
        self.model = model
        self.corpus = corpus
        self.sampler = KernelSampler(model, sampler_config)
        self.rejection_filter = RejectionFilter(
            min_static_instructions=min_static_instructions, use_shim=True
        )
        self.rewriter = CodeRewriter(rename_identifiers=True)
        self.normalize_output = normalize_output
        #: candidate text -> (accepted, rejection reason, normalized source
        #: or None, static instruction count).  The n-gram recombines corpus
        #: fragments, so roughly a third of completed candidates across a
        #: full-scale run are exact repeats of an earlier stream's text; the
        #: verdict and rewrite are pure functions of the text, so replaying
        #: the memo is byte-identical to re-running the filter chain.  Only
        #: scalars are retained — compilation results (ASTs, IR) are dropped
        #: as soon as the outcome is extracted.
        self._candidate_cache: dict[str, tuple[bool, str, str | None, int]] = {}

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------

    @classmethod
    def from_corpus(
        cls,
        corpus: Corpus,
        backend: str = "ngram",
        ngram_order: int = 10,
        lstm_config: LSTMConfig | None = None,
        sampler_config: SamplerConfig | None = None,
    ) -> "CLgen":
        """Train a model on *corpus* and wrap it in a synthesizer."""
        trainer = ModelTrainer(
            TrainerConfig(backend=backend, ngram_order=ngram_order, lstm=lstm_config)
        )
        trained = trainer.train(corpus)
        return cls(model=trained.model, corpus=corpus, sampler_config=sampler_config)

    @classmethod
    def from_github(
        cls,
        repository_count: int = 100,
        seed: int = 0,
        backend: str = "ngram",
        ngram_order: int = 10,
        sampler_config: SamplerConfig | None = None,
    ) -> "CLgen":
        """Mine a (synthetic) GitHub corpus, train and return a synthesizer."""
        corpus = Corpus.mine_and_build(repository_count=repository_count, seed=seed)
        return cls.from_corpus(
            corpus, backend=backend, ngram_order=ngram_order, sampler_config=sampler_config
        )

    # ------------------------------------------------------------------
    # Synthesis.
    # ------------------------------------------------------------------

    def sample_candidate(self, spec: ArgumentSpec | None, rng: random.Random):
        """Draw one raw (unfiltered) candidate."""
        spec = spec or ArgumentSpec.paper_default()
        seed_text = spec.seed_text(self.sampler.config.seed_kernel_name)
        return self.sampler.sample(seed_text, rng)

    def generate_kernel(
        self,
        spec: ArgumentSpec | None = None,
        rng: random.Random | None = None,
        max_attempts: int = 50,
        statistics: SynthesisStatistics | None = None,
        seen_hashes: set[str] | None = None,
    ) -> SyntheticKernel | None:
        """Generate one accepted kernel, or ``None`` after *max_attempts*."""
        spec = spec or ArgumentSpec.paper_default()
        rng = rng or random.Random(0)
        statistics = statistics if statistics is not None else SynthesisStatistics()
        seen_hashes = seen_hashes if seen_hashes is not None else set()

        for attempt in range(max_attempts):
            statistics.attempts += 1
            candidate = self.sample_candidate(spec, rng)
            statistics.characters_sampled += candidate.characters_sampled
            if not candidate.completed:
                statistics.incomplete_samples += 1
                statistics.rejected += 1
                self._count_reason(statistics, "incomplete sample")
                continue

            accepted, reason, source, instruction_count = self._evaluate_candidate(
                candidate.text
            )
            if not accepted:
                statistics.rejected += 1
                self._count_reason(statistics, reason)
                continue

            digest = hashlib.sha1(source.encode("utf-8")).hexdigest()
            if digest in seen_hashes:
                statistics.duplicates += 1
                statistics.rejected += 1
                self._count_reason(statistics, "duplicate")
                continue
            seen_hashes.add(digest)

            statistics.generated += 1
            return SyntheticKernel(
                source=source,
                raw_sample=candidate.text,
                argument_spec=spec,
                attempt_index=attempt,
                static_instruction_count=instruction_count,
            )
        return None

    def _evaluate_candidate(self, text: str) -> tuple[bool, str, str | None, int]:
        """Memoized rejection verdict + normalized source for one candidate.

        Pure function of the candidate text (the filter and the rewriter are
        deterministic), so repeated candidates — common across independently
        seeded streams, since the n-gram recombines the same corpus
        fragments — replay the first outcome byte-for-byte instead of
        re-compiling.  ``source`` is the normalized text for accepted
        candidates and ``None`` for rejected ones.
        """
        outcome = self._candidate_cache.get(text)
        if outcome is None:
            verdict = self.rejection_filter.check(text)
            source: str | None = None
            instruction_count = 0
            if verdict.accepted:
                source = text
                if self.normalize_output:
                    normalized = self._normalize_candidate(text, verdict.compilation)
                    if normalized is not None:
                        source = normalized
                instruction_count = (
                    verdict.compilation.static_instruction_count
                    if verdict.compilation
                    else 0
                )
            outcome = (verdict.accepted, verdict.reason.value, source, instruction_count)
            if len(self._candidate_cache) >= self._CANDIDATE_CACHE_LIMIT:
                self._candidate_cache.clear()
            self._candidate_cache[text] = outcome
        return outcome

    def _normalize_candidate(
        self, text: str, compilation: CompilationResult | None
    ) -> str | None:
        """Normalized source for the accepted candidate *text*, or ``None``.

        When the rejection check's compilation carries the candidate's own
        parsed subtree and the text cannot expand differently outside the
        shim prelude environment (no directives, no feature-macro or typedef
        names — see :data:`_REWRITE_TEXT_PATH`), the rewriter renames and
        re-prints that AST directly, skipping a second preprocess + parse of
        the same text.  Otherwise the byte-equivalent text path runs.  The
        AST is consumed (renamed in place); only the printed text survives
        into the memo.
        """
        body_unit = compilation.body_unit if compilation is not None else None
        if body_unit is not None and _REWRITE_TEXT_PATH.search(text) is None:
            try:
                normalized = self.rewriter.rewrite_parsed(text, body_unit).text
            except RewriterError:
                return None
            self._seed_measure_compilation(normalized, body_unit)
            return normalized
        rewritten = self.rewriter.rewrite_or_none(text)
        return None if rewritten is None else rewritten.text

    @staticmethod
    def _seed_measure_compilation(normalized: str, body_unit) -> None:
        """Hand the renamed AST to the execute phase as a pre-built compile.

        After :meth:`repro.preprocess.rewriter.CodeRewriter.rewrite_parsed`,
        *body_unit* is the parse tree of exactly the text it printed — the
        normalized source the measurement harness will later compile with
        ``cached_compile_source(with_shim(source), include_resolver=
        shim_include_resolver, strict=False)``.  Building the
        :class:`~repro.clc.CompilationResult` here (semantic check + IR
        lowering on the merged shim+body tree, no tokenize/parse) and
        seeding the process-wide source cache under that same key turns the
        execute phase's per-kernel frontend cost into a cache hit.  Purely
        an optimization: any gate failure falls back to the real compile.
        """
        from repro.clc import compile_parsed_body
        from repro.execution.cache import analysis_verdict_for, seed_compiled_source
        from repro.preprocess.shim import shim_include_resolver, with_shim

        source = with_shim(normalized)
        try:
            result = compile_parsed_body(
                source,
                body_unit,
                include_resolver=shim_include_resolver,
                require_kernel=True,
                strict=False,
            )
        except CompileError:
            return
        if result is None:
            return
        seed_compiled_source(
            source,
            result,
            include_resolver=shim_include_resolver,
            strict=False,
        )
        # Derive the static analyzer's verdict now, while the kernel is being
        # accepted: the verdict is a synthesis-time classification (it never
        # depends on payloads or step budgets — the cache pins its key to the
        # default), and the execute phase's engine router then finds it
        # identity-cached on this same unit instead of analyzing mid-measure.
        kernels = result.unit.kernels
        if kernels:
            analysis_verdict_for(result.unit, kernels[0].name)

    def generate_kernel_range(
        self,
        start: int,
        stop: int,
        spec: ArgumentSpec | None = None,
        seed: int = 0,
        max_attempts_per_kernel: int = 50,
    ) -> list[KernelStreamResult]:
        """Run the independently-seeded kernel streams ``start..stop``.

        Stream *index* depends only on ``(seed, index)`` — never on any
        other stream — so any index range can be computed on any worker in
        any order and concatenated back (see :func:`merge_stream_results`).
        A stream that exhausts its attempt budget yields ``kernel=None``
        without affecting later streams.

        When the configured wavefront width
        (:meth:`repro.synthesis.sampler.SamplerConfig.resolved_batch_size`,
        i.e. ``REPRO_SAMPLE_BATCH``) is above one and the backend exposes a
        batch sampler, the range is computed by
        :meth:`generate_kernel_wavefront` — byte-identical output, the
        streams just advance through the model together.  Width one is the
        sequential reference path below.
        """
        if stop - start > 1 and callable(getattr(self.model, "make_batch_sampler", None)):
            width = self.sampler.config.resolved_batch_size()
            if width > 1:
                return self.generate_kernel_wavefront(
                    start,
                    stop,
                    spec=spec,
                    seed=seed,
                    max_attempts_per_kernel=max_attempts_per_kernel,
                    batch_size=width,
                )
        entries: list[KernelStreamResult] = []
        for index in range(start, stop):
            statistics = SynthesisStatistics(requested=1)
            kernel = self.generate_kernel(
                spec=spec,
                rng=stream_rng(seed, index),
                max_attempts=max_attempts_per_kernel,
                statistics=statistics,
                seen_hashes=set(),
            )
            entries.append(
                KernelStreamResult(index=index, kernel=kernel, statistics=statistics)
            )
        return entries

    def generate_kernel_wavefront(
        self,
        start: int,
        stop: int,
        spec: ArgumentSpec | None = None,
        seed: int = 0,
        max_attempts_per_kernel: int = 50,
        batch_size: int | None = None,
    ) -> list[KernelStreamResult]:
        """Batched :meth:`generate_kernel_range`: advance all pending streams
        one character per model step.

        Up to *batch_size* lanes ride in one batch sampler; each lane is one
        stream's in-flight attempt, carrying the stream's own
        :func:`repro.synthesis.sampler.stream_rng`, statistics and dedup
        set, so a lane consumes exactly the draws its stream would consume
        sequentially — which is why the output is bit-identical to the
        sequential reference at every width.  As lanes complete they run the
        same rejection/normalization/dedup chain; a failed attempt refills
        its lane with the stream's next attempt (the lane rewinds to the
        seed context) and a resolved stream hands the lane to the next
        pending stream, so the batch stays full until every stream has an
        accepted kernel or an exhausted budget.
        """
        if stop <= start:
            return []
        spec = spec or ArgumentSpec.paper_default()
        config = self.sampler.config
        width = batch_size if batch_size is not None else config.resolved_batch_size()
        width = max(1, min(width, stop - start))
        batch_factory = getattr(self.model, "make_batch_sampler", None)
        if not callable(batch_factory):
            raise SynthesisError(
                f"model {type(self.model).__name__} exposes no batch sampler"
            )

        seed_text = spec.seed_text(config.seed_kernel_name)
        initial_depth = seed_text.count("{") - seed_text.count("}")
        if initial_depth <= 0:
            initial_depth = 1
        temperature = config.temperature
        max_length = config.max_kernel_length
        budget = max_attempts_per_kernel

        sampler = batch_factory(seed_text, width)
        lanes = [_WavefrontLane(index, seed) for index in range(start, start + width)]
        next_index = start + width
        entries: dict[int, KernelStreamResult] = {}

        # Hot-loop state lives in parallel lists rather than on the lane
        # objects: rngs are gathered once and patched on refill, brace
        # depths are only touched at brace characters (found by C-level
        # ``str.find`` over the step's joined characters), a lane's sampled
        # count is ``step - started_at`` instead of a per-char increment,
        # and max-length cutoffs are a schedule keyed by expiry step rather
        # than a per-lane check every step.
        rngs = [lane.rng for lane in lanes]
        suffixes: list[list[str]] = [[] for _ in lanes]
        depths = [initial_depth] * width
        started_at = [0] * width
        #: expiry step -> [(position, started_at when scheduled)]; an entry
        #: whose started_at no longer matches is stale (the lane was
        #: refilled first) and is skipped.
        expirations: dict[int, list[tuple[int, int]]] = {
            max_length: [(position, 0) for position in range(width)]
        }
        step = 0

        while lanes:
            step += 1
            characters = sampler.sample(rngs, temperature)
            for suffix, character in zip(suffixes, characters):
                suffix.append(character)
            step_text = "".join(characters)
            finished: list[tuple[int, bool]] = []
            position = step_text.find("{")
            while position != -1:
                depths[position] += 1
                position = step_text.find("{", position + 1)
            position = step_text.find("}")
            while position != -1:
                depth = depths[position] - 1
                depths[position] = depth
                if depth <= 0:
                    # Completed — even when this step also hits max length.
                    finished.append((position, True))
                position = step_text.find("}", position + 1)
            due = expirations.pop(step, None)
            if due:
                completed_positions = {position for position, _ in finished}
                finished.extend(
                    (position, False)
                    for position, started in due
                    if started_at[position] == started
                    and position not in completed_positions
                )
            if not finished:
                continue

            dropped: set[int] = set()
            for position, completed in finished:
                lane = lanes[position]
                lane.suffix = suffixes[position]
                lane.completed = completed
                lane.sampled = step - started_at[position]
                kernel = self._finish_wavefront_attempt(lane, seed_text, spec)
                resolved = kernel is not None or lane.attempt + 1 >= budget
                if not resolved:
                    # Same stream, next attempt: the lane rewinds to the
                    # seed context and keeps its RNG position.
                    lane.start_attempt()
                    sampler.reset_lane(position)
                elif next_index < stop:
                    entries[lane.index] = KernelStreamResult(
                        index=lane.index, kernel=kernel, statistics=lane.statistics
                    )
                    lanes[position] = _WavefrontLane(next_index, seed)
                    rngs[position] = lanes[position].rng
                    next_index += 1
                    sampler.reset_lane(position)
                else:
                    entries[lane.index] = KernelStreamResult(
                        index=lane.index, kernel=kernel, statistics=lane.statistics
                    )
                    dropped.add(position)
                    continue
                suffixes[position] = []
                depths[position] = initial_depth
                started_at[position] = step
                expirations.setdefault(step + max_length, []).append((position, step))
            if dropped:
                keep = [p for p in range(len(lanes)) if p not in dropped]
                sampler.compact(keep)
                lanes = [lanes[p] for p in keep]
                rngs = [rngs[p] for p in keep]
                suffixes = [suffixes[p] for p in keep]
                depths = [depths[p] for p in keep]
                started_at = [started_at[p] for p in keep]
                # Positions shifted: rebuild the schedule from scratch (one
                # pending expiry per surviving lane).
                expirations = {}
                for position, started in enumerate(started_at):
                    expirations.setdefault(started + max_length, []).append(
                        (position, started)
                    )

        return [entries[index] for index in range(start, stop)]

    def _finish_wavefront_attempt(
        self, lane: _WavefrontLane, seed_text: str, spec: ArgumentSpec
    ) -> SyntheticKernel | None:
        """Run one finished lane attempt through the acceptance chain.

        Mirrors one iteration of :meth:`generate_kernel`'s attempt loop —
        same statistics bookkeeping, same rejection reasons, same per-stream
        dedup — and returns the accepted kernel or ``None``.
        """
        statistics = lane.statistics
        statistics.attempts += 1
        statistics.characters_sampled += lane.sampled
        if not lane.completed:
            statistics.incomplete_samples += 1
            statistics.rejected += 1
            self._count_reason(statistics, "incomplete sample")
            return None

        text = seed_text + "".join(lane.suffix)
        accepted, reason, source, instruction_count = self._evaluate_candidate(text)
        if not accepted:
            statistics.rejected += 1
            self._count_reason(statistics, reason)
            return None

        digest = hashlib.sha1(source.encode("utf-8")).hexdigest()
        if digest in lane.seen_hashes:
            statistics.duplicates += 1
            statistics.rejected += 1
            self._count_reason(statistics, "duplicate")
            return None
        lane.seen_hashes.add(digest)

        statistics.generated += 1
        return SyntheticKernel(
            source=source,
            raw_sample=text,
            argument_spec=spec,
            attempt_index=lane.attempt,
            static_instruction_count=instruction_count,
        )

    def generate_kernels(
        self,
        count: int,
        spec: ArgumentSpec | None = None,
        seed: int = 0,
        max_attempts_per_kernel: int = 50,
    ) -> SynthesisResult:
        """Generate up to *count* unique kernels.

        Each kernel position is an independently-seeded stream (see
        :meth:`generate_kernel_range`); positions whose streams exhaust the
        attempt budget, or whose kernels duplicate an earlier position, are
        dropped (without raising), so experiment code can report partial
        coverage rather than crash.
        """
        if count <= 0:
            raise SynthesisError("kernel count must be positive")
        return merge_stream_results(
            self.generate_kernel_range(
                0, count, spec=spec, seed=seed, max_attempts_per_kernel=max_attempts_per_kernel
            ),
            requested=count,
        )

    @staticmethod
    def _count_reason(statistics: SynthesisStatistics, reason: str) -> None:
        statistics.rejection_reasons[reason] = statistics.rejection_reasons.get(reason, 0) + 1
