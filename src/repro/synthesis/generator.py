"""CLgen: the benchmark synthesizer facade (paper §4).

Ties the pipeline together: a language corpus (mined or provided), a trained
character-level model, Algorithm-1 sampling from an argument-specification
seed, and the same rejection filter used on GitHub content files.  The
output is a stream of unique, compilable synthetic kernels ready for the
host driver.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.corpus.corpus import Corpus
from repro.errors import SynthesisError
from repro.model.backend import LanguageModel
from repro.model.lstm import LSTMConfig
from repro.model.trainer import TrainerConfig, ModelTrainer
from repro.preprocess.rejection import RejectionFilter, RejectionResult
from repro.preprocess.rewriter import CodeRewriter
from repro.synthesis.argspec import ArgumentSpec
from repro.synthesis.sampler import KernelSampler, SamplerConfig, stream_rng


@dataclass
class SyntheticKernel:
    """One accepted synthetic benchmark kernel."""

    source: str
    raw_sample: str
    argument_spec: ArgumentSpec
    attempt_index: int
    static_instruction_count: int = 0

    @property
    def content_hash(self) -> str:
        return hashlib.sha1(self.source.encode("utf-8")).hexdigest()[:16]


@dataclass
class SynthesisStatistics:
    """Bookkeeping over a synthesis run (used by EXPERIMENTS.md and tests)."""

    requested: int = 0
    generated: int = 0
    attempts: int = 0
    rejected: int = 0
    duplicates: int = 0
    incomplete_samples: int = 0
    characters_sampled: int = 0
    rejection_reasons: dict[str, int] = field(default_factory=dict)

    @property
    def acceptance_rate(self) -> float:
        if self.attempts == 0:
            return 0.0
        return self.generated / self.attempts


@dataclass
class SynthesisResult:
    """Kernels plus statistics from one :meth:`CLgen.generate_kernels` call."""

    kernels: list[SyntheticKernel]
    statistics: SynthesisStatistics

    @property
    def sources(self) -> list[str]:
        return [kernel.source for kernel in self.kernels]


@dataclass
class KernelStreamResult:
    """What one independently-seeded kernel stream produced.

    Stream *index* samples with :func:`repro.synthesis.sampler.stream_rng`
    ``(sample_seed, index)`` and its own attempt budget/statistics, entirely
    unaware of every other stream — which is what lets sample shards fan out
    like execute shards.  ``kernel`` is ``None`` when the stream exhausted
    its attempt budget.  Batch-level uniqueness is restored afterwards by
    :func:`merge_stream_results`.
    """

    index: int
    kernel: SyntheticKernel | None
    statistics: SynthesisStatistics


def merge_stream_results(
    entries: list[KernelStreamResult], requested: int
) -> SynthesisResult:
    """Combine per-stream results into one batch, deduplicating across streams.

    Entries must arrive in stream-index order (shard merges concatenate
    range shards, which preserves it).  Deduplication keeps the first
    occurrence of a source by index and reclassifies later occurrences as
    duplicate rejections — the deterministic, store-mediated replacement for
    the old sequential chain's shared seen-hash set.  Pure recombination
    (no RNG, no wall-clock): merging the same entries always produces the
    same bytes, whichever worker runs it.
    """
    statistics = SynthesisStatistics(requested=requested)
    kernels: list[SyntheticKernel] = []
    seen_sources: set[str] = set()
    for entry in entries:
        stream = entry.statistics
        statistics.attempts += stream.attempts
        statistics.generated += stream.generated
        statistics.rejected += stream.rejected
        statistics.duplicates += stream.duplicates
        statistics.incomplete_samples += stream.incomplete_samples
        statistics.characters_sampled += stream.characters_sampled
        for reason, count in stream.rejection_reasons.items():
            statistics.rejection_reasons[reason] = (
                statistics.rejection_reasons.get(reason, 0) + count
            )
        if entry.kernel is None:
            continue
        if entry.kernel.source in seen_sources:
            # The stream accepted this kernel locally, but an earlier stream
            # got there first: reclassify its accepting attempt as a
            # duplicate rejection so `generated + rejected == attempts`
            # stays invariant.
            statistics.generated -= 1
            statistics.duplicates += 1
            statistics.rejected += 1
            statistics.rejection_reasons["duplicate"] = (
                statistics.rejection_reasons.get("duplicate", 0) + 1
            )
            continue
        seen_sources.add(entry.kernel.source)
        kernels.append(entry.kernel)
    return SynthesisResult(kernels=kernels, statistics=statistics)


class CLgen:
    """The benchmark synthesizer."""

    def __init__(
        self,
        model: LanguageModel,
        corpus: Corpus | None = None,
        sampler_config: SamplerConfig | None = None,
        min_static_instructions: int = 3,
        normalize_output: bool = True,
    ):
        self.model = model
        self.corpus = corpus
        self.sampler = KernelSampler(model, sampler_config)
        self.rejection_filter = RejectionFilter(
            min_static_instructions=min_static_instructions, use_shim=True
        )
        self.rewriter = CodeRewriter(rename_identifiers=True)
        self.normalize_output = normalize_output

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------

    @classmethod
    def from_corpus(
        cls,
        corpus: Corpus,
        backend: str = "ngram",
        ngram_order: int = 10,
        lstm_config: LSTMConfig | None = None,
        sampler_config: SamplerConfig | None = None,
    ) -> "CLgen":
        """Train a model on *corpus* and wrap it in a synthesizer."""
        trainer = ModelTrainer(
            TrainerConfig(backend=backend, ngram_order=ngram_order, lstm=lstm_config)
        )
        trained = trainer.train(corpus)
        return cls(model=trained.model, corpus=corpus, sampler_config=sampler_config)

    @classmethod
    def from_github(
        cls,
        repository_count: int = 100,
        seed: int = 0,
        backend: str = "ngram",
        ngram_order: int = 10,
        sampler_config: SamplerConfig | None = None,
    ) -> "CLgen":
        """Mine a (synthetic) GitHub corpus, train and return a synthesizer."""
        corpus = Corpus.mine_and_build(repository_count=repository_count, seed=seed)
        return cls.from_corpus(
            corpus, backend=backend, ngram_order=ngram_order, sampler_config=sampler_config
        )

    # ------------------------------------------------------------------
    # Synthesis.
    # ------------------------------------------------------------------

    def sample_candidate(self, spec: ArgumentSpec | None, rng: random.Random):
        """Draw one raw (unfiltered) candidate."""
        spec = spec or ArgumentSpec.paper_default()
        seed_text = spec.seed_text(self.sampler.config.seed_kernel_name)
        return self.sampler.sample(seed_text, rng)

    def generate_kernel(
        self,
        spec: ArgumentSpec | None = None,
        rng: random.Random | None = None,
        max_attempts: int = 50,
        statistics: SynthesisStatistics | None = None,
        seen_hashes: set[str] | None = None,
    ) -> SyntheticKernel | None:
        """Generate one accepted kernel, or ``None`` after *max_attempts*."""
        spec = spec or ArgumentSpec.paper_default()
        rng = rng or random.Random(0)
        statistics = statistics if statistics is not None else SynthesisStatistics()
        seen_hashes = seen_hashes if seen_hashes is not None else set()

        for attempt in range(max_attempts):
            statistics.attempts += 1
            candidate = self.sample_candidate(spec, rng)
            statistics.characters_sampled += candidate.characters_sampled
            if not candidate.completed:
                statistics.incomplete_samples += 1
                statistics.rejected += 1
                self._count_reason(statistics, "incomplete sample")
                continue

            verdict: RejectionResult = self.rejection_filter.check(candidate.text)
            if not verdict.accepted:
                statistics.rejected += 1
                self._count_reason(statistics, verdict.reason.value)
                continue

            source = candidate.text
            if self.normalize_output:
                rewritten = self.rewriter.rewrite_or_none(candidate.text)
                if rewritten is not None:
                    source = rewritten.text

            digest = hashlib.sha1(source.encode("utf-8")).hexdigest()
            if digest in seen_hashes:
                statistics.duplicates += 1
                statistics.rejected += 1
                self._count_reason(statistics, "duplicate")
                continue
            seen_hashes.add(digest)

            statistics.generated += 1
            instruction_count = (
                verdict.compilation.static_instruction_count if verdict.compilation else 0
            )
            return SyntheticKernel(
                source=source,
                raw_sample=candidate.text,
                argument_spec=spec,
                attempt_index=attempt,
                static_instruction_count=instruction_count,
            )
        return None

    def generate_kernel_range(
        self,
        start: int,
        stop: int,
        spec: ArgumentSpec | None = None,
        seed: int = 0,
        max_attempts_per_kernel: int = 50,
    ) -> list[KernelStreamResult]:
        """Run the independently-seeded kernel streams ``start..stop``.

        Stream *index* depends only on ``(seed, index)`` — never on any
        other stream — so any index range can be computed on any worker in
        any order and concatenated back (see :func:`merge_stream_results`).
        A stream that exhausts its attempt budget yields ``kernel=None``
        without affecting later streams.
        """
        entries: list[KernelStreamResult] = []
        for index in range(start, stop):
            statistics = SynthesisStatistics(requested=1)
            kernel = self.generate_kernel(
                spec=spec,
                rng=stream_rng(seed, index),
                max_attempts=max_attempts_per_kernel,
                statistics=statistics,
                seen_hashes=set(),
            )
            entries.append(
                KernelStreamResult(index=index, kernel=kernel, statistics=statistics)
            )
        return entries

    def generate_kernels(
        self,
        count: int,
        spec: ArgumentSpec | None = None,
        seed: int = 0,
        max_attempts_per_kernel: int = 50,
    ) -> SynthesisResult:
        """Generate up to *count* unique kernels.

        Each kernel position is an independently-seeded stream (see
        :meth:`generate_kernel_range`); positions whose streams exhaust the
        attempt budget, or whose kernels duplicate an earlier position, are
        dropped (without raising), so experiment code can report partial
        coverage rather than crash.
        """
        if count <= 0:
            raise SynthesisError("kernel count must be positive")
        return merge_stream_results(
            self.generate_kernel_range(
                0, count, spec=spec, seed=seed, max_attempts_per_kernel=max_attempts_per_kernel
            ),
            requested=count,
        )

    @staticmethod
    def _count_reason(statistics: SynthesisStatistics, reason: str) -> None:
        statistics.rejection_reasons[reason] = statistics.rejection_reasons.get(reason, 0) + 1
