"""Kernel argument specifications (paper §4.3).

The first of CLgen's two sampling modes takes an *argument specification*
"stating the data types and modifiers of all kernel arguments"; the model
then synthesizes kernels matching that signature.  The second mode omits the
specification and lets the corpus distribution dictate the signature.  This
module models both: an :class:`ArgumentSpec` renders the seed text of
Algorithm 1, and can also be recovered from existing kernel source (used by
the host driver to build payloads).
"""

from __future__ import annotations

import string
from dataclasses import dataclass, field

from repro.clc import parse
from repro.clc.types import PointerType
from repro.errors import SynthesisError


@dataclass(frozen=True)
class KernelArgument:
    """One kernel argument in a specification."""

    type_name: str  # e.g. "float", "int", "float4"
    is_pointer: bool = False
    address_space: str = "global"  # "global" | "local" | "constant" | "private"
    is_const: bool = False

    def render(self, name: str) -> str:
        """Render the argument as it appears in a kernel signature."""
        parts: list[str] = []
        if self.is_pointer and self.address_space in ("global", "local", "constant"):
            parts.append(f"__{self.address_space}")
        if self.is_const:
            parts.append("const")
        parts.append(self.type_name + ("*" if self.is_pointer else ""))
        parts.append(name)
        return " ".join(parts)

    @property
    def is_scalar(self) -> bool:
        return not self.is_pointer


@dataclass(frozen=True)
class ArgumentSpec:
    """An ordered list of kernel arguments."""

    arguments: tuple[KernelArgument, ...] = field(default_factory=tuple)

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------

    @classmethod
    def paper_default(cls) -> "ArgumentSpec":
        """The specification used throughout the paper's examples (Fig. 6):
        three single-precision floating-point arrays and a read-only signed
        integer."""
        return cls(
            arguments=(
                KernelArgument("float", is_pointer=True),
                KernelArgument("float", is_pointer=True),
                KernelArgument("float", is_pointer=True),
                KernelArgument("int", is_const=True),
            )
        )

    @classmethod
    def from_kernel_source(cls, source: str, kernel_name: str | None = None) -> "ArgumentSpec":
        """Recover the specification of an existing kernel."""
        unit = parse(source)
        kernels = unit.kernels
        if not kernels:
            raise SynthesisError("source contains no kernel to derive a specification from")
        kernel = kernels[0]
        if kernel_name is not None:
            kernel = unit.kernel(kernel_name)
        arguments = []
        for parameter in kernel.parameters:
            declared = parameter.declared_type
            if isinstance(declared, PointerType):
                arguments.append(
                    KernelArgument(
                        type_name=str(declared.pointee),
                        is_pointer=True,
                        address_space=declared.address_space.value,
                        is_const=declared.is_const or parameter.is_const,
                    )
                )
            else:
                arguments.append(
                    KernelArgument(
                        type_name=str(declared) if declared is not None else parameter.type_name,
                        is_pointer=False,
                        address_space="private",
                        is_const=parameter.is_const,
                    )
                )
        return cls(arguments=tuple(arguments))

    # ------------------------------------------------------------------

    @property
    def argument_count(self) -> int:
        return len(self.arguments)

    @property
    def pointer_arguments(self) -> list[KernelArgument]:
        return [argument for argument in self.arguments if argument.is_pointer]

    @property
    def scalar_arguments(self) -> list[KernelArgument]:
        return [argument for argument in self.arguments if argument.is_scalar]

    def argument_names(self) -> list[str]:
        """Sequential names matching the rewriter's convention (a, b, c, ...)."""
        names = []
        alphabet = string.ascii_lowercase
        for index in range(len(self.arguments)):
            if index < len(alphabet):
                names.append(alphabet[index])
            else:
                names.append(alphabet[index // len(alphabet) - 1] + alphabet[index % len(alphabet)])
        return names

    def render_signature(self, kernel_name: str = "A") -> str:
        """Render the full kernel signature (without the opening brace)."""
        rendered = ", ".join(
            argument.render(name) for argument, name in zip(self.arguments, self.argument_names())
        )
        return f"__kernel void {kernel_name}({rendered})"

    def seed_text(self, kernel_name: str = "A") -> str:
        """The Algorithm 1 seed text: the signature plus the opening brace."""
        return self.render_signature(kernel_name) + " {"
