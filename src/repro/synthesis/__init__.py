"""``repro.synthesis`` — CLgen, the benchmark synthesizer."""

from repro.synthesis.argspec import ArgumentSpec, KernelArgument
from repro.synthesis.generator import (
    CLgen,
    SynthesisResult,
    SynthesisStatistics,
    SyntheticKernel,
)
from repro.synthesis.sampler import KernelSampler, SampledCandidate, SamplerConfig

__all__ = [
    "ArgumentSpec",
    "CLgen",
    "KernelArgument",
    "KernelSampler",
    "SampledCandidate",
    "SamplerConfig",
    "SynthesisResult",
    "SynthesisStatistics",
    "SyntheticKernel",
]
