"""Algorithm 1: sampling a candidate kernel from a seed text.

Characters are sampled from the language model one at a time, while a brace
depth counter tracks when the kernel's function block closes; sampling stops
when the depth returns to zero or a maximum length is reached.  The result
is a *candidate* — the rejection filter decides whether it becomes a
synthetic benchmark.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Sequence

from repro.model.backend import LanguageModel


def stream_seed(sample_seed: int, index: int) -> int:
    """The RNG seed of kernel stream *index* under batch seed *sample_seed*.

    Derived through SHA-256 so it is stable across processes, sessions and
    machines (no ``PYTHONHASHSEED`` dependence) and so neighbouring indices
    get statistically unrelated streams.  This is what makes sample shards
    embarrassingly parallel: stream *index* is a pure function of
    ``(sample_seed, index)`` with no carried RNG state.
    """
    digest = hashlib.sha256(f"repro-sample:{sample_seed}:{index}".encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


def stream_rng(sample_seed: int, index: int) -> random.Random:
    """A fresh :class:`random.Random` positioned at the start of stream *index*."""
    return random.Random(stream_seed(sample_seed, index))


#: Default wavefront width when neither ``SamplerConfig.batch_size`` nor
#: ``REPRO_SAMPLE_BATCH`` says otherwise (chosen by the batch-width sweep in
#: ARCHITECTURE.md "Sample wavefront": throughput flattens past 64, and a
#: wider batch only holds more lanes open near the tail of a range).
DEFAULT_SAMPLE_BATCH = 64


@dataclass
class SamplerConfig:
    """Knobs of the character-level sampler."""

    max_kernel_length: int = 2048
    temperature: float = 0.7
    seed_kernel_name: str = "A"
    #: Wavefront width for batched cross-stream synthesis
    #: (:meth:`repro.synthesis.generator.CLgen.generate_kernel_wavefront`).
    #: ``None`` defers to the ``REPRO_SAMPLE_BATCH`` environment knob, then
    #: to :data:`DEFAULT_SAMPLE_BATCH`.  Purely an execution-shape knob:
    #: every width produces byte-identical kernels (per-stream RNG
    #: isolation), so it is never fingerprinted.
    batch_size: int | None = None

    def resolved_batch_size(self) -> int:
        """The effective wavefront width (explicit config > env > default)."""
        if self.batch_size is not None:
            return max(1, self.batch_size)
        from repro.envutil import env_int

        return env_int("REPRO_SAMPLE_BATCH", DEFAULT_SAMPLE_BATCH, minimum=1)


@dataclass
class SampledCandidate:
    """One raw sample from the model (not yet filtered)."""

    text: str
    completed: bool  # True if the brace depth returned to zero
    characters_sampled: int


class KernelSampler:
    """Implements Algorithm 1 over any :class:`LanguageModel` backend."""

    def __init__(self, model: LanguageModel, config: SamplerConfig | None = None):
        self._model = model
        self.config = config or SamplerConfig()

    def sample(self, seed_text: str, rng: random.Random) -> SampledCandidate:
        """Sample one candidate kernel continuing *seed_text*.

        The seed text is expected to end just after the opening ``{`` of the
        kernel body (depth 1), as produced by
        :meth:`repro.synthesis.argspec.ArgumentSpec.seed_text`.
        """
        depth = seed_text.count("{") - seed_text.count("}")
        if depth <= 0:
            depth = 1

        # Prefer a stateful sampler when the backend provides one (the LSTM);
        # fall back to the generic interface otherwise.
        incremental = getattr(self._model, "make_sampler", None)
        sampler = incremental(seed_text) if callable(incremental) else None

        text = seed_text
        sampled = 0
        completed = False
        while sampled < self.config.max_kernel_length:
            if sampler is not None:
                character = sampler.sample(rng, self.config.temperature)
            else:
                character = self._model.sample_next(text, rng, self.config.temperature)
            text += character
            sampled += 1
            if character == "{":
                depth += 1
            elif character == "}":
                depth -= 1
                if depth <= 0:
                    completed = True
                    break
        return SampledCandidate(text=text, completed=completed, characters_sampled=sampled)

    def sample_many(
        self,
        seed_text: str,
        count: int,
        rng: random.Random | None = None,
        rngs: Sequence[random.Random] | None = None,
    ) -> list[SampledCandidate]:
        """Draw *count* independent candidates from the same seed.

        When the backend exposes a batch sampler, all candidates advance
        through the model in lock-step as one batch; otherwise candidates
        are sampled sequentially.

        Randomness comes either from one shared *rng* (candidate *k*'s
        stream then depends on every draw candidates ``0..k-1`` made before
        it) or from *rngs* — one independent generator per candidate, as
        produced by :func:`stream_rng`.  With per-candidate generators each
        candidate consumes only its own stream, so batched and sequential
        sampling produce identical candidates and any subset can be
        resampled in isolation.  (This per-candidate mode is what the
        wavefront driver —
        :meth:`repro.synthesis.generator.CLgen.generate_kernel_wavefront` —
        builds on to batch attempts *across* kernel streams, including the
        rejection/refill loop; see ARCHITECTURE "The sample wavefront".)
        """
        if count <= 0:
            return []
        if (rng is None) == (rngs is None):
            raise ValueError("pass exactly one of rng= or rngs=")
        if rngs is not None and len(rngs) != count:
            raise ValueError(f"expected {count} per-candidate rngs, got {len(rngs)}")
        batch_factory = getattr(self._model, "make_batch_sampler", None)
        if count == 1 or not callable(batch_factory):
            if rngs is not None:
                return [self.sample(seed_text, rngs[index]) for index in range(count)]
            return [self.sample(seed_text, rng) for _ in range(count)]
        return self._sample_batched(seed_text, count, rng, rngs, batch_factory)

    def _sample_batched(
        self,
        seed_text: str,
        count: int,
        rng: random.Random | None,
        rngs: Sequence[random.Random] | None,
        batch_factory,
    ) -> list[SampledCandidate]:
        initial_depth = seed_text.count("{") - seed_text.count("}")
        if initial_depth <= 0:
            initial_depth = 1

        sampler = batch_factory(seed_text, count)
        suffixes: list[list[str]] = [[] for _ in range(count)]
        depths = [initial_depth] * count
        completed = [False] * count
        sampled = [0] * count
        #: Position -> original candidate index for the still-active chains.
        active = list(range(count))

        steps = 0
        while active and steps < self.config.max_kernel_length:
            # Per-candidate generators ride along with their chains: after a
            # compact() the batch sampler sees exactly the streams of the
            # still-active candidates, in position order.
            source = rng if rngs is None else [rngs[candidate] for candidate in active]
            characters = sampler.sample(source, self.config.temperature)
            finished_positions: set[int] = set()
            for position, character in enumerate(characters):
                candidate = active[position]
                suffixes[candidate].append(character)
                sampled[candidate] += 1
                if character == "{":
                    depths[candidate] += 1
                elif character == "}":
                    depths[candidate] -= 1
                    if depths[candidate] <= 0:
                        completed[candidate] = True
                        finished_positions.add(position)
            steps += 1
            if finished_positions:
                keep = [p for p in range(len(active)) if p not in finished_positions]
                sampler.compact(keep)
                active = [active[p] for p in keep]

        return [
            SampledCandidate(
                text=seed_text + "".join(suffixes[index]),
                completed=completed[index],
                characters_sampled=sampled[index],
            )
            for index in range(count)
        ]
