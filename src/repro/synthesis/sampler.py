"""Algorithm 1: sampling a candidate kernel from a seed text.

Characters are sampled from the language model one at a time, while a brace
depth counter tracks when the kernel's function block closes; sampling stops
when the depth returns to zero or a maximum length is reached.  The result
is a *candidate* — the rejection filter decides whether it becomes a
synthetic benchmark.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.model.backend import LanguageModel


@dataclass
class SamplerConfig:
    """Knobs of the character-level sampler."""

    max_kernel_length: int = 2048
    temperature: float = 0.7
    seed_kernel_name: str = "A"


@dataclass
class SampledCandidate:
    """One raw sample from the model (not yet filtered)."""

    text: str
    completed: bool  # True if the brace depth returned to zero
    characters_sampled: int


class KernelSampler:
    """Implements Algorithm 1 over any :class:`LanguageModel` backend."""

    def __init__(self, model: LanguageModel, config: SamplerConfig | None = None):
        self._model = model
        self.config = config or SamplerConfig()

    def sample(self, seed_text: str, rng: random.Random) -> SampledCandidate:
        """Sample one candidate kernel continuing *seed_text*.

        The seed text is expected to end just after the opening ``{`` of the
        kernel body (depth 1), as produced by
        :meth:`repro.synthesis.argspec.ArgumentSpec.seed_text`.
        """
        depth = seed_text.count("{") - seed_text.count("}")
        if depth <= 0:
            depth = 1

        # Prefer a stateful sampler when the backend provides one (the LSTM);
        # fall back to the generic interface otherwise.
        incremental = getattr(self._model, "make_sampler", None)
        sampler = incremental(seed_text) if callable(incremental) else None

        text = seed_text
        sampled = 0
        completed = False
        while sampled < self.config.max_kernel_length:
            if sampler is not None:
                character = sampler.sample(rng, self.config.temperature)
            else:
                character = self._model.sample_next(text, rng, self.config.temperature)
            text += character
            sampled += 1
            if character == "{":
                depth += 1
            elif character == "}":
                depth -= 1
                if depth <= 0:
                    completed = True
                    break
        return SampledCandidate(text=text, completed=completed, characters_sampled=sampled)

    def sample_many(self, seed_text: str, count: int, rng: random.Random) -> list[SampledCandidate]:
        """Draw *count* independent candidates from the same seed."""
        return [self.sample(seed_text, rng) for _ in range(count)]
