"""repro — a from-scratch reproduction of CLgen (CGO 2017).

"Synthesizing Benchmarks for Predictive Modeling", C. Cummins, P. Petoumenos,
Z. Wang and H. Leather.

The package is organised as the paper's pipeline (Figure 4):

* :mod:`repro.corpus` — mining an OpenCL language corpus (simulated GitHub).
* :mod:`repro.preprocess` — shim header, rejection filter, code rewriter.
* :mod:`repro.clc` — the OpenCL C frontend the toolchain is built on.
* :mod:`repro.model` — character-level language models (numpy LSTM, n-gram).
* :mod:`repro.synthesis` — CLgen, the benchmark synthesizer.
* :mod:`repro.driver` — host driver: payloads, dynamic checker, profiling.
* :mod:`repro.execution` — simulated OpenCL devices and NDRange interpreter.
* :mod:`repro.features` / :mod:`repro.predictive` — the Grewe et al. model.
* :mod:`repro.suites` — the seven GPGPU benchmark suites of Table 3.
* :mod:`repro.baselines` — CLSmith- and GENESIS-style comparators.
* :mod:`repro.experiments` — regeneration of every table and figure.
"""

from repro.corpus import Corpus
from repro.driver import DynamicChecker, HostDriver
from repro.errors import CompileError, ReproError
from repro.model import LSTMLanguageModel, NgramLanguageModel
from repro.predictive import ExtendedModel, GreweModel
from repro.synthesis import ArgumentSpec, CLgen

__version__ = "1.0.0"

__all__ = [
    "ArgumentSpec",
    "CLgen",
    "CompileError",
    "Corpus",
    "DynamicChecker",
    "ExtendedModel",
    "GreweModel",
    "HostDriver",
    "LSTMLanguageModel",
    "NgramLanguageModel",
    "ReproError",
    "__version__",
]
