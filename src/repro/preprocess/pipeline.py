"""The end-to-end preprocessing pipeline: content files → language corpus.

Mirrors the left half of Figure 4 in the paper: content files mined from
GitHub flow through the rejection filter and the code rewriter to produce
the final language corpus of normalized kernel functions, together with the
statistics reported in §4.1 (discard rates with and without the shim,
line counts, kernel counts, vocabulary reduction).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.preprocess.rejection import RejectionFilter, RejectionReason, RejectionResult
from repro.preprocess.rewriter import CodeRewriter, bag_of_words_vocabulary


def count_lines(text: str) -> int:
    """Number of non-empty lines in *text*."""
    return sum(1 for line in text.splitlines() if line.strip())


@dataclass
class CorpusStatistics:
    """The §4.1 numbers for one preprocessing run."""

    content_files: int = 0
    content_lines: int = 0
    accepted_files: int = 0
    accepted_lines: int = 0
    rejected_files: int = 0
    rewritten_files: int = 0
    rewritten_lines: int = 0
    kernel_functions: int = 0
    discard_rate: float = 0.0
    rejection_reasons: dict[str, int] = field(default_factory=dict)
    original_vocabulary: int = 0
    rewritten_vocabulary: int = 0

    @property
    def vocabulary_reduction(self) -> float:
        if self.original_vocabulary == 0:
            return 0.0
        return 1.0 - self.rewritten_vocabulary / self.original_vocabulary


@dataclass
class PipelineResult:
    """Output of a full preprocessing run."""

    corpus_texts: list[str]
    statistics: CorpusStatistics
    rejections: list[RejectionResult]


class PreprocessingPipeline:
    """Runs rejection filtering and code rewriting over content files."""

    def __init__(
        self,
        use_shim: bool = True,
        rename_identifiers: bool = True,
        min_static_instructions: int = 3,
    ):
        self.rejection_filter = RejectionFilter(
            min_static_instructions=min_static_instructions, use_shim=use_shim
        )
        self.rewriter = CodeRewriter(rename_identifiers=rename_identifiers)

    def run(self, content_files: list[str]) -> PipelineResult:
        """Process *content_files* and return the normalized corpus texts."""
        statistics = CorpusStatistics()
        statistics.content_files = len(content_files)
        statistics.content_lines = sum(count_lines(text) for text in content_files)

        original_vocabulary: set[str] = set()
        rewritten_vocabulary: set[str] = set()
        corpus_texts: list[str] = []
        rejections: list[RejectionResult] = []

        for text in content_files:
            result = self.rejection_filter.check(text)
            rejections.append(result)
            if not result.accepted:
                statistics.rejected_files += 1
                reason = result.reason.value
                statistics.rejection_reasons[reason] = (
                    statistics.rejection_reasons.get(reason, 0) + 1
                )
                continue

            statistics.accepted_files += 1
            statistics.accepted_lines += count_lines(text)
            original_vocabulary |= bag_of_words_vocabulary(text)

            rewritten = self.rewriter.rewrite_or_none(text)
            if rewritten is None:
                statistics.rejection_reasons["rewriter failure"] = (
                    statistics.rejection_reasons.get("rewriter failure", 0) + 1
                )
                continue

            statistics.rewritten_files += 1
            statistics.rewritten_lines += count_lines(rewritten.text)
            rewritten_vocabulary |= bag_of_words_vocabulary(rewritten.text)
            if result.compilation is not None:
                statistics.kernel_functions += len(result.compilation.kernels)
            corpus_texts.append(rewritten.text)

        if statistics.content_files:
            statistics.discard_rate = statistics.rejected_files / statistics.content_files
        statistics.original_vocabulary = len(original_vocabulary)
        statistics.rewritten_vocabulary = len(rewritten_vocabulary)
        return PipelineResult(
            corpus_texts=corpus_texts, statistics=statistics, rejections=rejections
        )


def preprocess_content_files(
    content_files: list[str], use_shim: bool = True, rename_identifiers: bool = True
) -> PipelineResult:
    """Convenience wrapper around :class:`PreprocessingPipeline`."""
    pipeline = PreprocessingPipeline(use_shim=use_shim, rename_identifiers=rename_identifiers)
    return pipeline.run(content_files)


def discard_rate_with_and_without_shim(content_files: list[str]) -> dict[str, float]:
    """Reproduce the paper's shim ablation: discard rate with and without the shim.

    The paper reports the shim reducing the discard rate from 40% to 32%.
    """
    with_shim = PreprocessingPipeline(use_shim=True).run(content_files).statistics.discard_rate
    without_shim = (
        PreprocessingPipeline(use_shim=False).run(content_files).statistics.discard_rate
    )
    return {"with_shim": with_shim, "without_shim": without_shim}
