"""The end-to-end preprocessing pipeline: content files → language corpus.

Mirrors the left half of Figure 4 in the paper: content files mined from
GitHub flow through the rejection filter and the code rewriter to produce
the final language corpus of normalized kernel functions, together with the
statistics reported in §4.1 (discard rates with and without the shim,
line counts, kernel counts, vocabulary reduction).

Per-file work (rejection check + rewrite) is a pure function of the file
text and the pipeline configuration, so it is

* **cached** content-addressably (in-process always, on disk when
  configured — see :mod:`repro.preprocess.cache`), making repeated corpus
  builds near-free, and
* **parallelizable** across a ``multiprocessing`` pool (``jobs=`` or the
  ``REPRO_PREPROCESS_JOBS`` environment variable) for cold builds of large
  corpora.

Statistics are folded from the per-file outcomes in input order, so cached,
parallel and serial runs produce byte-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.envutil import env_int
from repro.preprocess.cache import PreprocessCache, outcome_key, resolve_cache
from repro.preprocess.rejection import RejectionFilter, RejectionReason, RejectionResult
from repro.preprocess.rewriter import CodeRewriter, bag_of_words_vocabulary


def count_lines(text: str) -> int:
    """Number of non-empty lines in *text*."""
    return sum(1 for line in text.splitlines() if line.strip())


@dataclass
class CorpusStatistics:
    """The §4.1 numbers for one preprocessing run."""

    content_files: int = 0
    content_lines: int = 0
    accepted_files: int = 0
    accepted_lines: int = 0
    rejected_files: int = 0
    rewritten_files: int = 0
    rewritten_lines: int = 0
    kernel_functions: int = 0
    discard_rate: float = 0.0
    rejection_reasons: dict[str, int] = field(default_factory=dict)
    original_vocabulary: int = 0
    rewritten_vocabulary: int = 0

    @property
    def vocabulary_reduction(self) -> float:
        if self.original_vocabulary == 0:
            return 0.0
        return 1.0 - self.rewritten_vocabulary / self.original_vocabulary


@dataclass
class FileOutcome:
    """Everything the pipeline needs to know about one processed file.

    This is the unit of caching and of inter-process transfer: compact,
    picklable, and independent of AST objects.
    """

    accepted: bool
    reason_value: str
    detail: str = ""
    kernel_count: int = 0
    content_line_count: int = 0
    rewritten_text: str | None = None
    rewritten_line_count: int = 0
    #: Sorted tuples rather than sets: outcomes are store artifacts (the
    #: per-file cache and the preprocess shards), and set iteration order
    #: depends on PYTHONHASHSEED — sorted tuples keep an outcome's
    #: serialized bytes identical across processes and machines.
    original_vocabulary: tuple[str, ...] = ()
    rewritten_vocabulary: tuple[str, ...] = ()

    def to_rejection_result(self) -> RejectionResult:
        return RejectionResult(
            accepted=self.accepted,
            reason=RejectionReason(self.reason_value),
            detail=self.detail,
        )


@dataclass
class PipelineResult:
    """Output of a full preprocessing run."""

    corpus_texts: list[str]
    statistics: CorpusStatistics
    rejections: list[RejectionResult]


# ---------------------------------------------------------------------------
# Worker-side processing (module level so multiprocessing can pickle it).
# ---------------------------------------------------------------------------

_WORKER_PROCESSOR = None


def _init_worker(use_shim: bool, rename_identifiers: bool, min_static_instructions: int) -> None:
    global _WORKER_PROCESSOR
    _WORKER_PROCESSOR = _FileProcessor(use_shim, rename_identifiers, min_static_instructions)


def _process_in_worker(text: str) -> FileOutcome:
    return _WORKER_PROCESSOR.process(text)


class _FileProcessor:
    """Runs the rejection filter and rewriter over one content file."""

    def __init__(self, use_shim: bool, rename_identifiers: bool, min_static_instructions: int):
        self.rejection_filter = RejectionFilter(
            min_static_instructions=min_static_instructions, use_shim=use_shim
        )
        self.rewriter = CodeRewriter(rename_identifiers=rename_identifiers)

    def process(self, text: str) -> FileOutcome:
        result = self.rejection_filter.check(text)
        kernel_count = (
            len(result.compilation.kernels) if result.compilation is not None else 0
        )
        outcome = FileOutcome(
            accepted=result.accepted,
            reason_value=result.reason.value,
            detail=result.detail,
            kernel_count=kernel_count,
            content_line_count=count_lines(text),
        )
        if not result.accepted:
            return outcome

        outcome.original_vocabulary = tuple(sorted(bag_of_words_vocabulary(text)))
        rewritten = self.rewriter.rewrite_or_none(text)
        if rewritten is not None:
            outcome.rewritten_text = rewritten.text
            outcome.rewritten_line_count = count_lines(rewritten.text)
            outcome.rewritten_vocabulary = tuple(
                sorted(bag_of_words_vocabulary(rewritten.text))
            )
        return outcome


def _default_jobs() -> int:
    return env_int("REPRO_PREPROCESS_JOBS", default=1, minimum=1)


def fold_outcomes(outcomes: list[FileOutcome]) -> PipelineResult:
    """Fold per-file *outcomes* (in input order) into a :class:`PipelineResult`.

    This is the whole statistics computation of a preprocessing run: because
    it consumes only the per-file outcomes, folding the concatenation of
    several shards' outcomes is bit-identical to one unsharded run over the
    concatenated files (the invariant the sharded ``preprocess`` merge stage
    relies on — see :mod:`repro.store.shards`).
    """
    statistics = CorpusStatistics()
    statistics.content_files = len(outcomes)
    original_vocabulary: set[str] = set()
    rewritten_vocabulary: set[str] = set()
    corpus_texts: list[str] = []
    rejections: list[RejectionResult] = []

    for outcome in outcomes:
        statistics.content_lines += outcome.content_line_count
        rejections.append(outcome.to_rejection_result())
        if not outcome.accepted:
            statistics.rejected_files += 1
            reason = outcome.reason_value
            statistics.rejection_reasons[reason] = (
                statistics.rejection_reasons.get(reason, 0) + 1
            )
            continue

        statistics.accepted_files += 1
        statistics.accepted_lines += outcome.content_line_count
        original_vocabulary.update(outcome.original_vocabulary)

        if outcome.rewritten_text is None:
            statistics.rejection_reasons["rewriter failure"] = (
                statistics.rejection_reasons.get("rewriter failure", 0) + 1
            )
            continue

        statistics.rewritten_files += 1
        statistics.rewritten_lines += outcome.rewritten_line_count
        rewritten_vocabulary.update(outcome.rewritten_vocabulary)
        statistics.kernel_functions += outcome.kernel_count
        corpus_texts.append(outcome.rewritten_text)

    if statistics.content_files:
        statistics.discard_rate = statistics.rejected_files / statistics.content_files
    statistics.original_vocabulary = len(original_vocabulary)
    statistics.rewritten_vocabulary = len(rewritten_vocabulary)
    return PipelineResult(
        corpus_texts=corpus_texts, statistics=statistics, rejections=rejections
    )


class PreprocessingPipeline:
    """Runs rejection filtering and code rewriting over content files."""

    #: Below this many uncached files a worker pool costs more than it saves.
    PARALLEL_THRESHOLD = 16

    def __init__(
        self,
        use_shim: bool = True,
        rename_identifiers: bool = True,
        min_static_instructions: int = 3,
        cache: PreprocessCache | None = None,
        cache_dir: str | None = None,
        jobs: int | None = None,
    ):
        self.use_shim = use_shim
        self.rename_identifiers = rename_identifiers
        self.min_static_instructions = min_static_instructions
        self.cache = cache if cache is not None else resolve_cache(cache_dir)
        self.jobs = jobs if jobs is not None else _default_jobs()
        self._processor = _FileProcessor(use_shim, rename_identifiers, min_static_instructions)
        self.rejection_filter = self._processor.rejection_filter
        self.rewriter = self._processor.rewriter

    # ------------------------------------------------------------------

    def run(self, content_files: list[str]) -> PipelineResult:
        """Process *content_files* and return the normalized corpus texts."""
        return fold_outcomes(self.outcomes(content_files))

    def outcomes(self, content_files: list[str]) -> list[FileOutcome]:
        """Per-file outcomes in input order (the shardable half of a run:
        pure per-file work, cache-served and parallelizable; all global
        aggregation lives in :func:`fold_outcomes`)."""
        return self._outcomes_for(content_files)

    # ------------------------------------------------------------------

    def _outcomes_for(self, content_files: list[str]) -> list[FileOutcome]:
        """Per-file outcomes in input order, consulting the cache first."""
        keys = [
            outcome_key(
                text, self.use_shim, self.rename_identifiers, self.min_static_instructions
            )
            for text in content_files
        ]
        outcomes: list[FileOutcome | None] = [self.cache.get(key) for key in keys]

        missing = [index for index, outcome in enumerate(outcomes) if outcome is None]
        if not missing:
            return outcomes  # type: ignore[return-value]

        # Identical files repeated within one corpus (GitHub forks) only
        # need processing once.
        by_key: dict[str, list[int]] = {}
        for index in missing:
            by_key.setdefault(keys[index], []).append(index)
        unique_indices = [indices[0] for indices in by_key.values()]

        fresh = self._process_batch([content_files[i] for i in unique_indices])
        for index, outcome in zip(unique_indices, fresh):
            self.cache.put(keys[index], outcome)
            for duplicate in by_key[keys[index]]:
                outcomes[duplicate] = outcome
        return outcomes  # type: ignore[return-value]

    def _process_batch(self, texts: list[str]) -> list[FileOutcome]:
        if self.jobs > 1 and len(texts) >= self.PARALLEL_THRESHOLD:
            try:
                return self._process_parallel(texts)
            except (ImportError, OSError):
                pass  # no multiprocessing support in this environment
        return [self._processor.process(text) for text in texts]

    def _process_parallel(self, texts: list[str]) -> list[FileOutcome]:
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = multiprocessing.get_context()
        chunksize = max(1, len(texts) // (self.jobs * 4))
        with context.Pool(
            processes=self.jobs,
            initializer=_init_worker,
            initargs=(self.use_shim, self.rename_identifiers, self.min_static_instructions),
        ) as pool:
            return pool.map(_process_in_worker, texts, chunksize=chunksize)


def preprocess_content_files(
    content_files: list[str],
    use_shim: bool = True,
    rename_identifiers: bool = True,
    jobs: int | None = None,
) -> PipelineResult:
    """Convenience wrapper around :class:`PreprocessingPipeline`."""
    pipeline = PreprocessingPipeline(
        use_shim=use_shim, rename_identifiers=rename_identifiers, jobs=jobs
    )
    return pipeline.run(content_files)


def discard_rate_with_and_without_shim(content_files: list[str]) -> dict[str, float]:
    """Reproduce the paper's shim ablation: discard rate with and without the shim.

    The paper reports the shim reducing the discard rate from 40% to 32%.
    """
    with_shim = PreprocessingPipeline(use_shim=True).run(content_files).statistics.discard_rate
    without_shim = (
        PreprocessingPipeline(use_shim=False).run(content_files).statistics.discard_rate
    )
    return {"with_shim": with_shim, "without_shim": without_shim}
