"""``repro.preprocess`` — the paper's LLVM-based rejection/rewriting toolchain.

Contains the shim header (Listing 1), the rejection filter, the code
rewriter (Figure 5) and the end-to-end preprocessing pipeline that turns
mined content files into the language corpus.
"""

from repro.preprocess.cache import (
    GLOBAL_PREPROCESS_CACHE,
    PreprocessCache,
    resolve_cache,
)
from repro.preprocess.pipeline import (
    CorpusStatistics,
    FileOutcome,
    PipelineResult,
    PreprocessingPipeline,
    discard_rate_with_and_without_shim,
    preprocess_content_files,
)
from repro.preprocess.rejection import (
    RejectionFilter,
    RejectionReason,
    RejectionResult,
    filter_sources,
)
from repro.preprocess.rewriter import (
    CodeRewriter,
    RewriteResult,
    bag_of_words_vocabulary,
    name_sequence,
    rewrite_source,
)
from repro.preprocess.shim import (
    SHIM_CONSTANTS,
    SHIM_TYPEDEFS,
    shim_header_text,
    shim_include_resolver,
    with_shim,
)

__all__ = [
    "CodeRewriter",
    "CorpusStatistics",
    "FileOutcome",
    "GLOBAL_PREPROCESS_CACHE",
    "PipelineResult",
    "PreprocessCache",
    "resolve_cache",
    "PreprocessingPipeline",
    "RejectionFilter",
    "RejectionReason",
    "RejectionResult",
    "RewriteResult",
    "SHIM_CONSTANTS",
    "SHIM_TYPEDEFS",
    "bag_of_words_vocabulary",
    "discard_rate_with_and_without_shim",
    "filter_sources",
    "name_sequence",
    "preprocess_content_files",
    "rewrite_source",
    "shim_header_text",
    "shim_include_resolver",
    "with_shim",
]
