"""The shim header (Listing 1 of the paper).

Isolating OpenCL device code from its host project leaves many content files
referring to project-specific type aliases and constants (``FLOAT_T``,
``WG_SIZE``, ...).  The paper found that 50% of undeclared-identifier errors
were caused by only 60 unique identifiers and added a *shim header* with
inferred definitions, cutting the discard rate from 40% to 32%.

This module provides the same shim: a block of inferred typedefs and
constants, plus an include resolver that satisfies ``#include`` directives
for common OpenCL headers (``clc/clc.h`` and friends) so they do not cause
rejection.
"""

from __future__ import annotations

import functools

#: Inferred type aliases, in the spirit of Listing 1 ("36 more").
SHIM_TYPEDEFS: dict[str, str] = {
    "FLOAT_T": "float",
    "FLOAT_TYPE": "float",
    "FPTYPE": "float",
    "REAL": "float",
    "REAL_T": "float",
    "real": "float",
    "real_t": "float",
    "real4": "float4",
    "DTYPE": "float",
    "DATA_TYPE": "float",
    "DATATYPE": "float",
    "VALUE_TYPE": "float",
    "TYPE": "float",
    "T": "float",
    "VECTYPE": "float4",
    "FLOATN": "float4",
    "INDEX_TYPE": "unsigned int",
    "INT_TYPE": "int",
    "UINT_TYPE": "unsigned int",
    "SIZE_TYPE": "unsigned int",
    "COUNT_T": "unsigned int",
    "KEY_T": "unsigned int",
    "KEY_TYPE": "unsigned int",
    "VAL_T": "float",
    "NODE_T": "int",
    "EDGE_T": "int",
    "WEIGHT_T": "float",
    "PIXEL_T": "float",
    "CL_DTYPE": "float",
    "hmc_float": "float",
    "spinor": "float4",
    "su3vec": "float4",
    "scalar_t": "float",
    "fptype": "float",
    "cl_float_type": "float",
    "Dtype": "float",
    "wtype": "float",
    "itype": "int",
}

#: Inferred constants, in the spirit of Listing 1 ("185 more").
SHIM_CONSTANTS: dict[str, str] = {
    "M_PI": "3.14025",
    "M_PI_F": "3.14025f",
    "PI": "3.14159265358979f",
    "TWOPI": "6.28318530717958f",
    "EPSILON": "1e-6f",
    "EPS": "1e-6f",
    "WG_SIZE": "128",
    "WGSIZE": "128",
    "WORKGROUP_SIZE": "128",
    "WORK_GROUP_SIZE": "128",
    "GROUP_SIZE": "128",
    "LOCAL_SIZE": "128",
    "LOCAL_WORK_SIZE": "128",
    "LSIZE": "128",
    "BLOCK_SIZE": "16",
    "BLOCKSIZE": "16",
    "BLOCK_DIM": "16",
    "BLOCK": "16",
    "TILE_SIZE": "16",
    "TILE_DIM": "16",
    "TILE_WIDTH": "16",
    "TILE": "16",
    "WARP_SIZE": "32",
    "WAVE_SIZE": "64",
    "SIMD_WIDTH": "32",
    "N": "1024",
    "SIZE": "1024",
    "DATA_SIZE": "1024",
    "ARRAY_SIZE": "1024",
    "BUFFER_SIZE": "1024",
    "NUM_ELEMENTS": "1024",
    "ELEMENTS": "1024",
    "LENGTH": "1024",
    "WIDTH": "256",
    "HEIGHT": "256",
    "DEPTH": "64",
    "COLS": "256",
    "ROWS": "256",
    "NX": "256",
    "NY": "256",
    "NZ": "64",
    "DIM": "3",
    "NDIM": "3",
    "RADIUS": "4",
    "HALO": "1",
    "STRIDE": "1",
    "OFFSET": "0",
    "ALPHA": "1.5f",
    "BETA": "0.5f",
    "GAMMA": "0.9f",
    "SCALE": "1.0f",
    "THRESHOLD": "0.5f",
    "MAX_ITER": "100",
    "MAX_ITERATIONS": "100",
    "ITERATIONS": "100",
    "NUM_ITERATIONS": "100",
    "STEPS": "100",
    "UNROLL": "4",
    "UNROLL_FACTOR": "4",
    "VECTOR_SIZE": "4",
    "VEC_SIZE": "4",
    "CHUNK_SIZE": "64",
    "BATCH_SIZE": "64",
    "BINS": "256",
    "NUM_BINS": "256",
    "HISTOGRAM_SIZE": "256",
    "MASK_SIZE": "3",
    "FILTER_SIZE": "3",
    "KERNEL_SIZE": "3",
    "WINDOW_SIZE": "8",
    "LOG2_SIZE": "10",
    "INF": "(1.0f / 0.0f)",
    "MAX_FLOAT": "3.402823e38f",
    "MIN_FLOAT": "1.175494e-38f",
    "BIG_NUMBER": "1e30f",
    "SMALL_NUMBER": "1e-30f",
    "ZERO": "0.0f",
    "ONE": "1.0f",
    "TRUE": "1",
    "FALSE": "0",
}

#: Feature-test macros usually defined by the OpenCL compiler driver.
SHIM_FEATURE_MACROS: dict[str, str] = {
    "cl_clang_storage_class_specifiers": "1",
    "cl_khr_fp64": "1",
    "cl_khr_fp16": "1",
    "cl_khr_byte_addressable_store": "1",
    "cl_khr_global_int32_base_atomics": "1",
    "cl_khr_local_int32_base_atomics": "1",
    "cl_amd_fp64": "1",
    "cl_nv_pragma_unroll": "1",
    "__OPENCL_VERSION__": "120",
    "__ENDIAN_LITTLE__": "1",
    "FP_FAST_FMAF": "1",
}

#: Headers commonly included by OpenCL device code on GitHub.  Resolving them
#: to an empty (or shim) body prevents spurious rejections.
KNOWN_HEADERS = frozenset(
    {
        "clc/clc.h",
        "clc.h",
        "opencl.h",
        "cl.h",
        "CL/cl.h",
        "cl_platform.h",
        "common.h",
        "defines.h",
        "config.h",
        "constants.h",
        "types.h",
        "kernel.h",
        "util.h",
        "utils.h",
        "header.h",
        "macros.h",
        "params.h",
        "precision.h",
        "real.h",
    }
)


@functools.lru_cache(maxsize=None)
def shim_header_text(include_feature_macros: bool = True) -> str:
    """Render the shim header as OpenCL C source (Listing 1).

    The tables above are module constants, so the rendering is memoized —
    the rejection filter prepends this header to every candidate it checks.
    """
    lines = ["/* Enable OpenCL features */"]
    if include_feature_macros:
        for name, value in SHIM_FEATURE_MACROS.items():
            lines.append(f"#define {name} {value}")
    lines.append("")
    lines.append("/* Inferred types */")
    for name, target in SHIM_TYPEDEFS.items():
        lines.append(f"typedef {target} {name};")
    lines.append("")
    lines.append("/* Inferred constants */")
    for name, value in SHIM_CONSTANTS.items():
        lines.append(f"#define {name} {value}")
    lines.append("")
    return "\n".join(lines)


def shim_include_resolver(header_name: str) -> str | None:
    """An include resolver that satisfies known OpenCL headers with the shim.

    Unknown headers resolve to an empty string so that a missing project
    header does not by itself cause a rejection — any identifiers it would
    have declared will still be caught by the semantic checker.
    """
    if header_name in KNOWN_HEADERS or header_name.endswith((".h", ".cl", ".clh", ".inc")):
        return ""
    return ""


_PRELUDE_REGISTERED = False


def with_shim(source: str) -> str:
    """Prepend the shim header to *source* (the rejection filter's view).

    The first call registers the header as a pre-compiled prelude with the
    frontend, so the ~3 KB of shim typedefs and macros are preprocessed and
    parsed once per process instead of once per content file / candidate.
    """
    global _PRELUDE_REGISTERED
    header = shim_header_text() + "\n"
    if not _PRELUDE_REGISTERED:
        from repro.clc import register_prelude

        register_prelude(header, include_resolver=shim_include_resolver)
        _PRELUDE_REGISTERED = True
    return header + source
