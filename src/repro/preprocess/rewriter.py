"""The code rewriter (paper §4.1, Figure 5).

Three-step normalization of content files to make them amenable to language
modeling:

1. Pre-process to remove macros, conditional compilation and comments.
2. Rewrite identifiers to short sequential names — ``{a, b, c, ...}`` for
   variables and ``{A, B, C, ...}`` for functions — preserving program
   behaviour and leaving OpenCL built-ins untouched.
3. Enforce a consistent code style (braces, parentheses, white space), which
   we obtain by unparsing the AST with the canonical printer.

The rewriter also reports the vocabulary reduction achieved, which the
corpus-statistics experiment compares with the paper's 84% figure.
"""

from __future__ import annotations

import itertools
import re
import string
from dataclasses import dataclass, field

from repro.clc import ast_nodes as ast
from repro.clc.builtins import is_builtin
from repro.clc.parser import Parser
from repro.clc.lexer import tokenize
from repro.clc.preprocessor import Preprocessor
from repro.clc.printer import print_source
from repro.clc.types import TypeTable
from repro.errors import CompileError, RewriterError
from repro.preprocess.shim import SHIM_CONSTANTS, SHIM_TYPEDEFS, shim_include_resolver


def name_sequence(alphabet: str) -> "itertools.chain":
    """The infinite sequential naming series {a, b, ..., z, aa, ab, ...}."""

    def generate():
        length = 1
        while True:
            for combo in itertools.product(alphabet, repeat=length):
                yield "".join(combo)
            length += 1

    return generate()


@dataclass
class RewriteResult:
    """Output of rewriting one content file."""

    text: str
    variable_mapping: dict[str, str] = field(default_factory=dict)
    function_mapping: dict[str, str] = field(default_factory=dict)
    original_vocabulary: int = 0
    rewritten_vocabulary: int = 0

    @property
    def vocabulary_reduction(self) -> float:
        """Fractional reduction in bag-of-words vocabulary size."""
        if self.original_vocabulary == 0:
            return 0.0
        return 1.0 - self.rewritten_vocabulary / self.original_vocabulary


_WORD_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def bag_of_words_vocabulary(text: str) -> set[str]:
    """The set of identifier-like words in *text* (bag-of-words vocabulary)."""
    return set(_WORD_RE.findall(text))


class _Renamer:
    """Assigns sequential names and rewrites identifier references in the AST."""

    def __init__(self) -> None:
        self._variable_names = name_sequence(string.ascii_lowercase)
        self._function_names = name_sequence(string.ascii_uppercase)
        self.variable_mapping: dict[str, str] = {}
        self.function_mapping: dict[str, str] = {}

    # -- name allocation -------------------------------------------------

    def _variable_name(self, original: str) -> str:
        if original not in self.variable_mapping:
            self.variable_mapping[original] = next(self._variable_names)
        return self.variable_mapping[original]

    def _function_name(self, original: str) -> str:
        if original not in self.function_mapping:
            self.function_mapping[original] = next(self._function_names)
        return self.function_mapping[original]

    # -- rewriting ---------------------------------------------------------

    def rewrite_unit(self, unit: ast.TranslationUnit) -> None:
        for function in unit.functions:
            if function.body is not None:
                self._function_name(function.name)

        for declaration in unit.globals:
            if declaration.declarator is not None:
                self._variable_name(declaration.declarator.name)

        # Declare every name in order of appearance, then rewrite references.
        for function in unit.functions:
            for parameter in function.parameters:
                if parameter.name:
                    self._variable_name(parameter.name)
            if function.body is not None:
                self._collect_declarations(function.body)

        for declaration in unit.globals:
            if declaration.declarator is not None:
                declaration.declarator.name = self.variable_mapping[declaration.declarator.name]
                if declaration.declarator.initializer is not None:
                    self._rewrite_expression(declaration.declarator.initializer)

        for function in unit.functions:
            if function.name in self.function_mapping:
                function.name = self.function_mapping[function.name]
            for parameter in function.parameters:
                if parameter.name:
                    parameter.name = self.variable_mapping[parameter.name]
            if function.body is not None:
                self._rewrite_statement(function.body)

    def _collect_declarations(self, node: ast.Node) -> None:
        for child in ast.walk(node):
            if isinstance(child, ast.Declarator):
                self._variable_name(child.name)

    def _rewrite_statement(self, statement: ast.Statement | None) -> None:
        if statement is None:
            return
        for node in ast.walk(statement):
            if isinstance(node, ast.Declarator):
                node.name = self.variable_mapping.get(node.name, node.name)
            elif isinstance(node, ast.Identifier):
                self._rewrite_identifier(node)
            elif isinstance(node, ast.Call):
                if node.callee in self.function_mapping:
                    node.callee = self.function_mapping[node.callee]

    def _rewrite_expression(self, expression: ast.Expression) -> None:
        for node in ast.walk(expression):
            if isinstance(node, ast.Identifier):
                self._rewrite_identifier(node)
            elif isinstance(node, ast.Call) and node.callee in self.function_mapping:
                node.callee = self.function_mapping[node.callee]

    def _rewrite_identifier(self, node: ast.Identifier) -> None:
        if is_builtin(node.name):
            return
        if node.name in self.variable_mapping:
            node.name = self.variable_mapping[node.name]
        elif node.name in self.function_mapping:
            node.name = self.function_mapping[node.name]


class CodeRewriter:
    """Normalizes OpenCL content files (preprocess → rename → re-style)."""

    def __init__(self, rename_identifiers: bool = True, use_shim_types: bool = True):
        self.rename_identifiers = rename_identifiers
        self.use_shim_types = use_shim_types

    def rewrite(self, source: str) -> RewriteResult:
        """Rewrite *source*, raising :class:`RewriterError` if it cannot be parsed."""
        original_vocabulary = bag_of_words_vocabulary(source)

        predefined = dict(SHIM_CONSTANTS) if self.use_shim_types else {}
        preprocessor = Preprocessor(
            include_resolver=shim_include_resolver, predefined=predefined
        )
        try:
            preprocessed = preprocessor.preprocess(source)
        except CompileError as error:
            raise RewriterError(f"preprocessing failed: {error}") from error

        type_table = TypeTable()
        if self.use_shim_types:
            for alias, target in SHIM_TYPEDEFS.items():
                resolved = type_table.lookup(target)
                if resolved is not None:
                    type_table.define_typedef(alias, resolved)

        try:
            tokens = tokenize(preprocessed.text)
            unit = Parser(tokens, type_table).parse_translation_unit()
        except CompileError as error:
            raise RewriterError(f"parsing failed: {error}") from error

        return self._rename_and_print(source, unit, original_vocabulary)

    def rewrite_parsed(self, source: str, unit: ast.TranslationUnit) -> RewriteResult:
        """Rename + re-style an already-parsed *source* (the synthesis hot path).

        Skips the preprocess/tokenize/parse of :meth:`rewrite` when the
        caller already holds *source*'s parsed body unit from the rejection
        check's compilation (:attr:`repro.clc.CompilationResult.body_unit`).
        Byte-identical to :meth:`rewrite` provided the unit came from an
        equivalent macro/typedef environment — in particular *source* must
        contain no preprocessor directives and reference no shim name that
        only one of the two environments defines; the synthesizer gates on
        exactly that before calling this.  *unit* is renamed in place: the
        caller hands over ownership.
        """
        return self._rename_and_print(source, unit, bag_of_words_vocabulary(source))

    def _rename_and_print(
        self,
        source: str,
        unit: ast.TranslationUnit,
        original_vocabulary: set[str],
    ) -> RewriteResult:
        variable_mapping: dict[str, str] = {}
        function_mapping: dict[str, str] = {}
        if self.rename_identifiers:
            renamer = _Renamer()
            renamer.rewrite_unit(unit)
            variable_mapping = renamer.variable_mapping
            function_mapping = renamer.function_mapping

        # Typedefs have been resolved into the declarations themselves; drop
        # them (and any shim remnants) from the normalized output.
        unit.typedefs = []

        text = print_source(unit)
        rewritten_vocabulary = bag_of_words_vocabulary(text)
        return RewriteResult(
            text=text,
            variable_mapping=variable_mapping,
            function_mapping=function_mapping,
            original_vocabulary=len(original_vocabulary),
            rewritten_vocabulary=len(rewritten_vocabulary),
        )

    def rewrite_or_none(self, source: str) -> RewriteResult | None:
        """Rewrite *source*, returning ``None`` instead of raising on failure."""
        try:
            return self.rewrite(source)
        except RewriterError:
            return None


def rewrite_source(source: str, rename_identifiers: bool = True) -> str:
    """Convenience wrapper returning only the rewritten text."""
    return CodeRewriter(rename_identifiers=rename_identifiers).rewrite(source).text
