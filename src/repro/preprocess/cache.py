"""Content-addressable caching of per-file preprocessing outcomes.

Rejection filtering and rewriting are pure functions of ``(content file,
pipeline configuration)``, and corpus builds repeat the same content files
constantly — unit tests mine the same synthetic repositories dozens of
times, the benchmark harness rebuilds the corpus per session, and shim
ablations run the pipeline twice over identical inputs.  Keying outcomes by
a content hash makes every repeat near-free.

Two layers:

* an in-process bounded LRU, always on (shared process-wide), and
* an optional on-disk store (one pickle per entry, sharded by hash prefix)
  enabled by passing ``directory=`` or setting the
  ``REPRO_PREPROCESS_CACHE_DIR`` environment variable, which makes repeated
  corpus builds cheap *across* processes (benchmarks, experiments, CI).

Disk entries embed a schema version; unreadable or stale entries are
silently recomputed.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from pathlib import Path

#: Bump when the cached record layout or pipeline semantics change.
CACHE_SCHEMA_VERSION = 1


def default_cache_directory() -> str | None:
    """The on-disk cache location from the environment, if configured."""
    return os.environ.get("REPRO_PREPROCESS_CACHE_DIR") or None


def outcome_key(
    text: str,
    use_shim: bool,
    rename_identifiers: bool,
    min_static_instructions: int,
) -> str:
    """Content-address of one (file, configuration) preprocessing outcome."""
    tag = (
        f"v{CACHE_SCHEMA_VERSION}|shim={int(use_shim)}|rename={int(rename_identifiers)}"
        f"|min={min_static_instructions}|"
    )
    digest = hashlib.sha1()
    digest.update(tag.encode("ascii"))
    digest.update(text.encode("utf-8", "replace"))
    return digest.hexdigest()


class PreprocessCache:
    """Bounded in-memory LRU with an optional on-disk mirror."""

    def __init__(self, directory: str | None = None, memory_entries: int = 8192):
        self._memory: OrderedDict[str, object] = OrderedDict()
        self._memory_entries = memory_entries
        self._lock = threading.Lock()
        self._directory = Path(directory) if directory else None
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------

    def get(self, key: str):
        """The cached record for *key*, or ``None``."""
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self.hits += 1
                return self._memory[key]
        record = self._read_disk(key)
        if record is not None:
            with self._lock:
                self.hits += 1
                self._remember(key, record)
            return record
        with self._lock:
            self.misses += 1
        return None

    def put(self, key: str, record) -> None:
        with self._lock:
            self._remember(key, record)
        self._write_disk(key, record)

    def _remember(self, key: str, record) -> None:
        self._memory[key] = record
        self._memory.move_to_end(key)
        while len(self._memory) > self._memory_entries:
            self._memory.popitem(last=False)

    # ------------------------------------------------------------------

    def _entry_path(self, key: str) -> Path | None:
        if self._directory is None:
            return None
        return self._directory / key[:2] / f"{key}.pkl"

    def _read_disk(self, key: str):
        path = self._entry_path(key)
        if path is None:
            return None
        try:
            with open(path, "rb") as handle:
                version, record = pickle.load(handle)
        except Exception:
            return None
        if version != CACHE_SCHEMA_VERSION:
            return None
        return record

    def _write_disk(self, key: str, record) -> None:
        path = self._entry_path(key)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            temp = path.with_suffix(f".tmp.{os.getpid()}")
            with open(temp, "wb") as handle:
                pickle.dump((CACHE_SCHEMA_VERSION, record), handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp, path)
        except Exception:
            # Disk caching is best-effort; never fail a corpus build over it.
            return

    def clear(self) -> None:
        with self._lock:
            self._memory.clear()
            self.hits = 0
            self.misses = 0


#: Process-wide in-memory cache shared by every pipeline instance.  The
#: on-disk layer is attached per-pipeline (directory may differ per caller).
GLOBAL_PREPROCESS_CACHE = PreprocessCache(directory=None)

_DIRECTORY_CACHES: dict[str, PreprocessCache] = {}
_DIRECTORY_LOCK = threading.Lock()


def resolve_cache(directory: str | None = None) -> PreprocessCache:
    """The cache instance for *directory* (or the env-configured default).

    Without a directory this is the shared in-memory cache; with one, a
    per-directory singleton so the in-memory layer is still shared between
    pipelines pointing at the same store.
    """
    directory = directory or default_cache_directory()
    if directory is None:
        return GLOBAL_PREPROCESS_CACHE
    directory = os.path.abspath(directory)
    with _DIRECTORY_LOCK:
        cache = _DIRECTORY_CACHES.get(directory)
        if cache is None:
            cache = PreprocessCache(directory=directory)
            _DIRECTORY_CACHES[directory] = cache
        return cache
