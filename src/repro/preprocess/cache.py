"""Content-addressable caching of per-file preprocessing outcomes.

Rejection filtering and rewriting are pure functions of ``(content file,
pipeline configuration)``, and corpus builds repeat the same content files
constantly, so outcomes are keyed by a content hash — the original of the
design that :mod:`repro.store` generalizes to whole pipeline stages (see
ARCHITECTURE.md).

Two layers:

* an in-process bounded LRU of live outcome records, always on, and
* an optional on-disk layer delegated to the generic
  :class:`repro.store.artifact_store.ArtifactStore` (artifact kind
  ``preprocess-file``), enabled by passing ``directory=`` or setting
  ``REPRO_PREPROCESS_CACHE_DIR`` (falling back to ``REPRO_STORE_DIR``, so
  one store root serves both per-file outcomes and stage artifacts).

Disk entries embed a schema version; unreadable or stale entries are
silently recomputed.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from pathlib import Path

from repro.store.artifact_store import ArtifactStore
from repro.store.fingerprint import schema_version

#: Artifact kind under which outcomes live in the store.  The single
#: invalidation knob is ``SCHEMA_VERSIONS["preprocess-file"]`` in
#: :mod:`repro.store.fingerprint`: it is baked into every outcome key (so
#: stale entries stop being addressed) *and* validated inside each stored
#: entry by the store — bump it there when the record layout or the
#: pipeline semantics change.
ARTIFACT_KIND = "preprocess-file"


def default_cache_directory() -> str | None:
    """The on-disk cache location from the environment, if configured.

    Hardened like every other ``REPRO_*`` knob: a path that exists but is
    not a directory is ignored with a warning instead of silently
    disabling the cache through swallowed write errors.
    """
    from repro.envutil import env_directory

    return env_directory("REPRO_PREPROCESS_CACHE_DIR") or env_directory("REPRO_STORE_DIR")


def outcome_key(
    text: str,
    use_shim: bool,
    rename_identifiers: bool,
    min_static_instructions: int,
) -> str:
    """Content-address of one (file, configuration) preprocessing outcome."""
    tag = (
        f"v{schema_version(ARTIFACT_KIND)}|shim={int(use_shim)}"
        f"|rename={int(rename_identifiers)}|min={min_static_instructions}|"
    )
    digest = hashlib.sha1()
    digest.update(tag.encode("ascii"))
    digest.update(text.encode("utf-8", "replace"))
    return digest.hexdigest()


class PreprocessCache:
    """Bounded in-memory LRU with an optional on-disk artifact-store mirror.

    Unlike the stage-level store, the memory layer here holds *live* records
    rather than serialized bytes: outcomes are treated as immutable by every
    consumer and the per-file path is hot enough that a deserialization per
    hit would show up in corpus builds.
    """

    def __init__(self, directory: str | None = None, memory_entries: int = 8192):
        self._memory: OrderedDict[str, object] = OrderedDict()
        self._memory_entries = memory_entries
        self._lock = threading.Lock()
        self._store = ArtifactStore(directory=directory, memory_entries=0) if directory else None
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------

    @property
    def directory(self) -> Path | None:
        return self._store.directory if self._store is not None else None

    def entry_path(self, key: str) -> Path | None:
        """Where the on-disk entry for *key* lives, if a directory is set."""
        if self._store is None:
            return None
        return self._store.entry_path(ARTIFACT_KIND, key)

    def get(self, key: str):
        """The cached record for *key*, or ``None``."""
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self.hits += 1
                return self._memory[key]
        record = self._store.get(ARTIFACT_KIND, key) if self._store is not None else None
        if record is not None:
            with self._lock:
                self.hits += 1
                self._remember(key, record)
            return record
        with self._lock:
            self.misses += 1
        return None

    def put(self, key: str, record) -> None:
        with self._lock:
            self._remember(key, record)
        if self._store is not None:
            self._store.put(ARTIFACT_KIND, key, record)

    def _remember(self, key: str, record) -> None:
        self._memory[key] = record
        self._memory.move_to_end(key)
        while len(self._memory) > self._memory_entries:
            self._memory.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._memory.clear()
            self.hits = 0
            self.misses = 0


#: Process-wide in-memory cache shared by every pipeline instance.  The
#: on-disk layer is attached per-pipeline (directory may differ per caller).
GLOBAL_PREPROCESS_CACHE = PreprocessCache(directory=None)

_DIRECTORY_CACHES: dict[str, PreprocessCache] = {}
_DIRECTORY_LOCK = threading.Lock()


def resolve_cache(directory: str | None = None) -> PreprocessCache:
    """The cache instance for *directory* (or the env-configured default).

    Without a directory this is the shared in-memory cache; with one, a
    per-directory singleton so the in-memory layer is still shared between
    pipelines pointing at the same store.
    """
    directory = directory or default_cache_directory()
    if directory is None:
        return GLOBAL_PREPROCESS_CACHE
    directory = os.path.abspath(directory)
    with _DIRECTORY_LOCK:
        cache = _DIRECTORY_CACHES.get(directory)
        if cache is None:
            cache = PreprocessCache(directory=directory)
            _DIRECTORY_CACHES[directory] = cache
        return cache
