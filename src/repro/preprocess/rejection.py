"""The rejection filter (paper §4.1).

"The rejection filter accepts as input a content file and returns whether or
not it contains compilable, executable OpenCL code.  To do this we attempt
to compile the input to NVIDIA PTX bytecode and perform static analysis to
ensure a minimum static instruction count of three."

Here the compilation step uses the pure-Python frontend of :mod:`repro.clc`
and its PTX-like IR; the decision logic is identical: reject anything that
does not compile, contains no kernel, or lowers to fewer than three static
instructions.  The same filter is applied both to mined GitHub content files
and to candidate kernels sampled from the language model (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.clc import CompilationResult, compile_source
from repro.errors import CompileError
from repro.preprocess.shim import shim_include_resolver, with_shim


class RejectionReason(Enum):
    """Why a content file or candidate kernel was rejected."""

    NONE = "accepted"
    PREPROCESSOR_ERROR = "preprocessor error"
    LEXER_ERROR = "lexer error"
    PARSE_ERROR = "parse error"
    UNDECLARED_IDENTIFIER = "undeclared identifier"
    UNDECLARED_FUNCTION = "undeclared function"
    WRONG_ARITY = "wrong call arity"
    NO_KERNEL = "no kernel function"
    TOO_FEW_INSTRUCTIONS = "fewer than minimum static instructions"
    CODEGEN_ERROR = "code generation error"


@dataclass
class RejectionResult:
    """The verdict of the rejection filter for one input."""

    accepted: bool
    reason: RejectionReason
    detail: str = ""
    compilation: CompilationResult | None = None

    @property
    def kernel_count(self) -> int:
        if self.compilation is None:
            return 0
        return len(self.compilation.kernels)


class RejectionFilter:
    """Accepts compilable, executable OpenCL inputs; rejects everything else."""

    def __init__(self, min_static_instructions: int = 3, use_shim: bool = True):
        self.min_static_instructions = min_static_instructions
        self.use_shim = use_shim

    def check(self, source: str) -> RejectionResult:
        """Classify *source*; never raises."""
        text = with_shim(source) if self.use_shim else source
        try:
            compilation = compile_source(
                text,
                include_resolver=shim_include_resolver,
                require_kernel=True,
                strict=False,
            )
        except CompileError as error:
            return RejectionResult(
                accepted=False, reason=self._classify_compile_error(error), detail=str(error)
            )

        report = compilation.semantics
        if not report.ok:
            first = report.issues[0]
            if first.kind == "no-kernel":
                return RejectionResult(
                    accepted=False,
                    reason=RejectionReason.NO_KERNEL,
                    detail=first.message,
                    compilation=compilation,
                )
            reason = {
                "undeclared-function": RejectionReason.UNDECLARED_FUNCTION,
                "wrong-arity": RejectionReason.WRONG_ARITY,
            }.get(first.kind, RejectionReason.UNDECLARED_IDENTIFIER)
            return RejectionResult(
                accepted=False, reason=reason, detail=first.message, compilation=compilation
            )

        # Count only the instructions of kernel functions plus their helpers,
        # excluding anything the shim itself might contribute.
        instruction_count = sum(
            function.static_instruction_count for function in compilation.ir.functions
        )
        if instruction_count < self.min_static_instructions:
            return RejectionResult(
                accepted=False,
                reason=RejectionReason.TOO_FEW_INSTRUCTIONS,
                detail=f"{instruction_count} static instructions",
                compilation=compilation,
            )

        return RejectionResult(
            accepted=True, reason=RejectionReason.NONE, compilation=compilation
        )

    def accepts(self, source: str) -> bool:
        """Convenience wrapper returning only the verdict."""
        return self.check(source).accepted

    @staticmethod
    def _classify_compile_error(error: CompileError) -> RejectionReason:
        from repro.errors import (  # local import to avoid a cycle at module load
            LexerError,
            ParseError,
            PreprocessorError,
            SemanticError,
        )

        if isinstance(error, PreprocessorError):
            return RejectionReason.PREPROCESSOR_ERROR
        if isinstance(error, LexerError):
            return RejectionReason.LEXER_ERROR
        if isinstance(error, ParseError):
            return RejectionReason.PARSE_ERROR
        if isinstance(error, SemanticError):
            return RejectionReason.UNDECLARED_IDENTIFIER
        return RejectionReason.CODEGEN_ERROR


def filter_sources(
    sources: list[str], min_static_instructions: int = 3, use_shim: bool = True
) -> tuple[list[str], list[RejectionResult]]:
    """Partition *sources* into accepted texts and per-input results.

    Returns a pair ``(accepted_sources, all_results)`` where ``all_results``
    is index-aligned with *sources*.
    """
    rejection_filter = RejectionFilter(min_static_instructions, use_shim)
    results = [rejection_filter.check(source) for source in sources]
    accepted = [source for source, result in zip(sources, results) if result.accepted]
    return accepted, results
