"""AMD APP SDK sample stand-ins.

Twelve samples in the AMD SDK style: sorting networks, transforms,
histograms and simple image processing — more integer work and more
data-dependent branching than the NVIDIA samples, which places this suite
in a different region of the feature space (the Fast Walsh transform here is
the benchmark involved in the Listing 2 feature-collision example).
"""

from __future__ import annotations

from repro.suites.registry import Benchmark, Dataset

SUITE_NAME = "AMD SDK"

_DATASETS = (Dataset("default", 64.0),)

_BINARY_SEARCH = r"""
__kernel void binarySearch(__global const int* sortedArray, __global int* results,
                           const int key, const int n) {
  int tid = get_global_id(0);
  if (tid >= n) {
    return;
  }
  int low = 0;
  int high = n - 1;
  int found = -1;
  for (int step = 0; step < 12; step++) {
    if (low > high) {
      break;
    }
    int mid = (low + high) / 2;
    int value = sortedArray[mid];
    if (value == key + tid % 4) {
      found = mid;
      break;
    } else if (value < key) {
      low = mid + 1;
    } else {
      high = mid - 1;
    }
  }
  results[tid] = found;
}
"""

_BITONIC_SORT = r"""
__kernel void bitonicSort(__global int* keys, const int stage, const int passOfStage,
                          const int n) {
  int tid = get_global_id(0);
  int pairDistance = 1 << (stage - passOfStage > 0 ? stage - passOfStage : 0);
  int blockWidth = 2 * pairDistance;
  int leftId = (tid % pairDistance) + (tid / pairDistance) * blockWidth;
  int rightId = leftId + pairDistance;
  if (rightId >= n) {
    return;
  }
  int leftKey = keys[leftId];
  int rightKey = keys[rightId];
  int direction = ((tid / (1 << stage)) % 2) == 0;
  if ((leftKey > rightKey) == direction) {
    keys[leftId] = rightKey;
    keys[rightId] = leftKey;
  }
}
"""

_DCT = r"""
__kernel void DCT(__global const float* input, __global float* output,
                  __local float* block, const int width) {
  int gid = get_global_id(0);
  int lid = get_local_id(0);
  block[lid] = input[gid];
  barrier(CLK_LOCAL_MEM_FENCE);
  float acc = 0.0f;
  for (int k = 0; k < 8; k++) {
    float angle = 3.14159f * (float)(lid % 8) * ((float)k + 0.5f) / 8.0f;
    acc += block[(lid / 8) * 8 + k] * cos(angle);
  }
  output[gid] = acc * 0.5f;
}
"""

_FASTWALSH = r"""
__kernel void fastWalshTransform(__global float* tArray, const int step, const int n) {
  int tid = get_global_id(0);
  int group = tid % step;
  int pair = 2 * step * (tid / step) + group;
  int match = pair + step;
  if (match < 4 && match < n) {
    float t1 = tArray[pair];
    float t2 = tArray[match];
    tArray[pair] = t1 + t2;
    tArray[match] = t1 - t2;
  }
}
"""

_HISTOGRAM = r"""
__kernel void histogram256(__global const unsigned int* data, __global unsigned int* binResult,
                           __local unsigned int* sharedBins, const int n) {
  int gid = get_global_id(0);
  int lid = get_local_id(0);
  sharedBins[lid] = 0;
  barrier(CLK_LOCAL_MEM_FENCE);
  if (gid < n) {
    unsigned int value = data[gid] % 256;
    atomic_add(&sharedBins[value % get_local_size(0)], 1);
  }
  barrier(CLK_LOCAL_MEM_FENCE);
  atomic_add(&binResult[lid % 256], sharedBins[lid]);
}
"""

_MATRIX_TRANSPOSE = r"""
__kernel void matrixTranspose(__global const float* input, __global float* output,
                              const int width, const int height) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  if (x < width && y < height) {
    output[x * height + y] = input[y * width + x];
  }
}
"""

_PREFIX_SUM = r"""
__kernel void prefixSum(__global const float* input, __global float* output,
                        __local float* block, const int n) {
  int gid = get_global_id(0);
  int lid = get_local_id(0);
  block[lid] = (gid < n) ? input[gid] : 0.0f;
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int offset = 1; offset < get_local_size(0); offset <<= 1) {
    float value = 0.0f;
    if (lid >= offset) {
      value = block[lid - offset];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    block[lid] += value;
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  output[gid] = block[lid];
}
"""

_SIMPLE_CONVOLUTION = r"""
__kernel void simpleConvolution(__global const float* input, __global const float* mask,
                                __global float* output, const int width, const int height) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  if (x >= width || y >= height) {
    return;
  }
  float sum = 0.0f;
  for (int ky = 0; ky < 3; ky++) {
    for (int kx = 0; kx < 3; kx++) {
      int px = x + kx - 1;
      int py = y + ky - 1;
      if (px >= 0 && px < width && py >= 0 && py < height) {
        sum += input[py * width + px] * mask[ky * 3 + kx];
      }
    }
  }
  output[y * width + x] = sum;
}
"""

_FLOYD_WARSHALL = r"""
__kernel void floydWarshall(__global int* distances, const int k, const int width) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  if (x >= width || y >= width) {
    return;
  }
  int direct = distances[y * width + x];
  int through = distances[y * width + k % width] + distances[(k % width) * width + x];
  if (through < direct) {
    distances[y * width + x] = through;
  }
}
"""

_MONTE_CARLO = r"""
__kernel void monteCarloAsian(__global const float* randomSeeds, __global float* prices,
                              const float strike, const int n) {
  int tid = get_global_id(0);
  if (tid >= n) {
    return;
  }
  float seed = fabs(randomSeeds[tid]) + 0.001f;
  float path = 100.0f;
  float payoff = 0.0f;
  for (int step = 0; step < 32; step++) {
    seed = seed * 16807.0f;
    seed = seed - floor(seed);
    float gaussian = (seed - 0.5f) * 3.464f;
    path = path * exp(0.0005f + 0.02f * gaussian);
    payoff += path;
  }
  float average = payoff / 32.0f;
  prices[tid] = fmax(average - strike, 0.0f) * exp(-0.05f);
}
"""

_URNG = r"""
__kernel void uniformRandomNoise(__global const float* input, __global float* output,
                                 const int factor, const int n) {
  int tid = get_global_id(0);
  if (tid >= n) {
    return;
  }
  unsigned int state = (unsigned int)(tid * 1103515245 + 12345);
  state = (state / 65536) % 32768;
  float noise = ((float)state / 32768.0f - 0.5f) * (float)factor * 0.1f;
  output[tid] = input[tid] + noise;
}
"""

_SOBEL = r"""
__kernel void sobelFilter(__global const float* input, __global float* output,
                          const int width, const int height) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  if (x <= 0 || y <= 0 || x >= width - 1 || y >= height - 1) {
    return;
  }
  int i = y * width + x;
  float gx = input[i - width - 1] - input[i - width + 1]
           + 2.0f * input[i - 1] - 2.0f * input[i + 1]
           + input[i + width - 1] - input[i + width + 1];
  float gy = input[i - width - 1] + 2.0f * input[i - width] + input[i - width + 1]
           - input[i + width - 1] - 2.0f * input[i + width] - input[i + width + 1];
  output[i] = sqrt(gx * gx + gy * gy);
}
"""

BENCHMARKS = [
    Benchmark(SUITE_NAME, "BinarySearch", _BINARY_SEARCH, datasets=_DATASETS, kernels_in_program=1),
    Benchmark(SUITE_NAME, "BitonicSort", _BITONIC_SORT, datasets=_DATASETS, kernels_in_program=1),
    Benchmark(SUITE_NAME, "DCT", _DCT, datasets=_DATASETS, kernels_in_program=1),
    Benchmark(SUITE_NAME, "FastWalshTransform", _FASTWALSH, datasets=_DATASETS, kernels_in_program=1),
    Benchmark(SUITE_NAME, "Histogram", _HISTOGRAM, datasets=_DATASETS, kernels_in_program=2),
    Benchmark(SUITE_NAME, "MatrixTranspose", _MATRIX_TRANSPOSE, datasets=_DATASETS, kernels_in_program=1),
    Benchmark(SUITE_NAME, "PrefixSum", _PREFIX_SUM, datasets=_DATASETS, kernels_in_program=1),
    Benchmark(SUITE_NAME, "SimpleConvolution", _SIMPLE_CONVOLUTION, datasets=_DATASETS, kernels_in_program=1),
    Benchmark(SUITE_NAME, "FloydWarshall", _FLOYD_WARSHALL, datasets=_DATASETS, kernels_in_program=1),
    Benchmark(SUITE_NAME, "MonteCarloAsian", _MONTE_CARLO, datasets=_DATASETS, kernels_in_program=2),
    Benchmark(SUITE_NAME, "URNG", _URNG, datasets=_DATASETS, kernels_in_program=1),
    Benchmark(SUITE_NAME, "SobelFilter", _SOBEL, datasets=_DATASETS, kernels_in_program=3),
]
