"""PolyBench/GPU benchmark suite stand-ins.

Fourteen affine-loop linear-algebra and data-mining kernels in the
PolyBench style: dense, regular, loop-dominated, large data transfers
relative to the computation on several of them — which is why Table 1 shows
models trained on Parboil transferring so poorly to PolyBench (11.5% of the
oracle in the paper).
"""

from __future__ import annotations

from repro.suites.registry import Benchmark, Dataset

SUITE_NAME = "PolyBench"

_DATASETS = (Dataset("default", 80.0),)
_LARGE = (Dataset("default", 80.0), Dataset("large", 640.0))


def _gemm_like(name: str, inner: int, epilogue: str) -> str:
    return f"""
__kernel void {name}(__global const float* A, __global const float* B, __global float* C,
                     const int n) {{
  int i = get_global_id(1);
  int j = get_global_id(0);
  float acc = 0.0f;
  for (int k = 0; k < {inner}; k++) {{
    acc += A[(i * {inner} + k) % n] * B[(k * {inner} + j) % n];
  }}
  {epilogue}
}}
"""


_2MM = _gemm_like("mm2_kernel1", 24, "C[(i * 24 + j) % n] = acc * 1.5f;")
_3MM = _gemm_like("mm3_kernel1", 20, "C[(i * 20 + j) % n] = acc;")
_GEMM = _gemm_like("gemm_kernel", 32, "C[(i * 32 + j) % n] = 1.2f * acc + 0.8f * C[(i * 32 + j) % n];")
_SYRK = _gemm_like("syrk_kernel", 16, "C[(i * 16 + j) % n] = acc + C[(j * 16 + i) % n];")
_SYR2K = _gemm_like("syr2k_kernel", 16, "C[(i * 16 + j) % n] = 2.0f * acc + C[(i * 16 + j) % n];")

_ATAX = r"""
__kernel void atax_kernel(__global const float* A, __global const float* x,
                          __global float* tmp, const int n) {
  int i = get_global_id(0);
  if (i >= n) {
    return;
  }
  float acc = 0.0f;
  for (int j = 0; j < 24; j++) {
    acc += A[(i * 24 + j) % n] * x[j % n];
  }
  tmp[i] = acc;
}
"""

_BICG = r"""
__kernel void bicg_kernel(__global const float* A, __global const float* p,
                          __global float* q, const int n) {
  int i = get_global_id(0);
  if (i >= n) {
    return;
  }
  float acc = 0.0f;
  for (int j = 0; j < 20; j++) {
    acc += A[(i * 20 + j) % n] * p[j % n];
  }
  q[i] = acc;
}
"""

_GESUMMV = r"""
__kernel void gesummv_kernel(__global const float* A, __global const float* B,
                             __global const float* x, __global float* y, const int n) {
  int i = get_global_id(0);
  if (i >= n) {
    return;
  }
  float tmp = 0.0f;
  float acc = 0.0f;
  for (int j = 0; j < 16; j++) {
    tmp += A[(i * 16 + j) % n] * x[j % n];
    acc += B[(i * 16 + j) % n] * x[j % n];
  }
  y[i] = 0.5f * tmp + 0.5f * acc;
}
"""

_MVT = r"""
__kernel void mvt_kernel(__global float* x1, __global const float* A,
                         __global const float* y1, const int n) {
  int i = get_global_id(0);
  if (i >= n) {
    return;
  }
  float acc = x1[i];
  for (int j = 0; j < 16; j++) {
    acc += A[(i * 16 + j) % n] * y1[j % n];
  }
  x1[i] = acc;
}
"""

_CORRELATION = r"""
__kernel void correlation_kernel(__global const float* data, __global float* corr,
                                 __global const float* mean, const int n) {
  int i = get_global_id(0);
  if (i >= n) {
    return;
  }
  float acc = 0.0f;
  for (int k = 0; k < 24; k++) {
    float a = data[(k * 8 + i) % n] - mean[i % 8];
    float b = data[(k * 8 + (i + 1)) % n] - mean[(i + 1) % 8];
    acc += a * b;
  }
  corr[i] = acc / 24.0f;
}
"""

_COVARIANCE = r"""
__kernel void covariance_kernel(__global const float* data, __global float* cov,
                                __global const float* mean, const int n) {
  int i = get_global_id(0);
  if (i >= n) {
    return;
  }
  float acc = 0.0f;
  for (int k = 0; k < 20; k++) {
    acc += (data[(k * 4 + i) % n] - mean[i % 4]) * (data[(k * 4 + i + 2) % n] - mean[(i + 2) % 4]);
  }
  cov[i] = acc / 19.0f;
}
"""

_GRAMSCHMIDT = r"""
__kernel void gramschmidt_kernel(__global float* A, __global const float* R,
                                 __global const float* Q, const int n) {
  int i = get_global_id(0);
  if (i >= n) {
    return;
  }
  float value = A[i];
  for (int k = 0; k < 12; k++) {
    value -= Q[(i + k) % n] * R[k % n];
  }
  A[i] = value;
}
"""

_FDTD2D = r"""
__kernel void fdtd2d_kernel(__global float* ey, __global const float* hz, const int nx,
                            const int ny) {
  int i = get_global_id(0);
  int j = get_global_id(1);
  if (i <= 0 || i >= nx || j >= ny) {
    return;
  }
  int index = j * nx + i;
  ey[index] = ey[index] - 0.5f * (hz[index] - hz[index - 1]);
}
"""

_JACOBI2D = r"""
__kernel void jacobi2d_kernel(__global const float* A, __global float* B, const int nx,
                              const int ny) {
  int i = get_global_id(0);
  int j = get_global_id(1);
  if (i <= 0 || j <= 0 || i >= nx - 1 || j >= ny - 1) {
    return;
  }
  int index = j * nx + i;
  B[index] = 0.2f * (A[index] + A[index - 1] + A[index + 1] + A[index - nx] + A[index + nx]);
}
"""

BENCHMARKS = [
    Benchmark(SUITE_NAME, "2mm", _2MM, datasets=_LARGE, kernels_in_program=2),
    Benchmark(SUITE_NAME, "3mm", _3MM, datasets=_LARGE, kernels_in_program=3),
    Benchmark(SUITE_NAME, "atax", _ATAX, datasets=_DATASETS, kernels_in_program=2),
    Benchmark(SUITE_NAME, "bicg", _BICG, datasets=_DATASETS, kernels_in_program=2),
    Benchmark(SUITE_NAME, "correlation", _CORRELATION, datasets=_DATASETS, kernels_in_program=4),
    Benchmark(SUITE_NAME, "covariance", _COVARIANCE, datasets=_DATASETS, kernels_in_program=3),
    Benchmark(SUITE_NAME, "fdtd2d", _FDTD2D, datasets=_DATASETS, kernels_in_program=3),
    Benchmark(SUITE_NAME, "gemm", _GEMM, datasets=_LARGE, kernels_in_program=1),
    Benchmark(SUITE_NAME, "gesummv", _GESUMMV, datasets=_DATASETS, kernels_in_program=1),
    Benchmark(SUITE_NAME, "gramschmidt", _GRAMSCHMIDT, datasets=_DATASETS, kernels_in_program=3),
    Benchmark(SUITE_NAME, "jacobi2d", _JACOBI2D, datasets=_DATASETS, kernels_in_program=1),
    Benchmark(SUITE_NAME, "mvt", _MVT, datasets=_DATASETS, kernels_in_program=1),
    Benchmark(SUITE_NAME, "syr2k", _SYR2K, datasets=_DATASETS, kernels_in_program=1),
    Benchmark(SUITE_NAME, "syrk", _SYRK, datasets=_DATASETS, kernels_in_program=1),
]
