"""Rodinia benchmark suite stand-ins.

Rodinia covers irregular and structured heterogeneous-computing dwarfs:
graph traversal (bfs), structured grids (hotspot, srad), dense linear
algebra (lud), dynamic programming (pathfinder, needle), clustering
(kmeans, streamcluster), and back-propagation.  The kernels below follow the
originals' access patterns (uncoalesced gathers in bfs/kmeans, branchy
boundary handling in hotspot/pathfinder) so the suite occupies a different
region of the Grewe feature space than NPB or PolyBench.
"""

from __future__ import annotations

from repro.suites.registry import Benchmark, Dataset

SUITE_NAME = "Rodinia"

_DATASETS = (Dataset("default", 96.0),)

_BFS = r"""
__kernel void bfs_kernel(__global const int* edges, __global const int* offsets,
                         __global int* costs, __global int* frontier, const int n) {
  int tid = get_global_id(0);
  if (tid >= n) {
    return;
  }
  if (frontier[tid] == 1) {
    frontier[tid] = 0;
    int start = offsets[tid];
    int degree = 4 + (tid % 3);
    for (int e = 0; e < degree; e++) {
      int neighbour = edges[(start + e) % n];
      if (costs[neighbour] > costs[tid] + 1) {
        costs[neighbour] = costs[tid] + 1;
        frontier[neighbour] = 1;
      }
    }
  }
}
"""

_HOTSPOT = r"""
__kernel void hotspot_step(__global const float* temp, __global const float* power,
                           __global float* dst, const int width, const int height) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  if (x >= width || y >= height) {
    return;
  }
  int index = y * width + x;
  float centre = temp[index];
  float north = (y > 0) ? temp[index - width] : centre;
  float south = (y < height - 1) ? temp[index + width] : centre;
  float west = (x > 0) ? temp[index - 1] : centre;
  float east = (x < width - 1) ? temp[index + 1] : centre;
  float delta = 0.001f * (power[index] + (north + south - 2.0f * centre) * 0.5f
                          + (east + west - 2.0f * centre) * 0.5f);
  dst[index] = centre + delta;
}
"""

_SRAD = r"""
__kernel void srad_diffuse(__global float* image, __global const float* coeff,
                           const int width, const int height) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  if (x >= width || y >= height) {
    return;
  }
  int index = y * width + x;
  float c = coeff[index];
  float value = image[index];
  float gradient = 0.0f;
  if (x > 0) {
    gradient += image[index - 1] - value;
  }
  if (x < width - 1) {
    gradient += image[index + 1] - value;
  }
  if (y > 0) {
    gradient += image[index - width] - value;
  }
  if (y < height - 1) {
    gradient += image[index + width] - value;
  }
  image[index] = value + 0.25f * c * gradient;
}
"""

_KMEANS = r"""
__kernel void kmeans_assign(__global const float* points, __global const float* centroids,
                            __global int* membership, const int n) {
  int tid = get_global_id(0);
  if (tid >= n) {
    return;
  }
  float best_distance = 1.0e30f;
  int best_cluster = 0;
  for (int c = 0; c < 8; c++) {
    float distance = 0.0f;
    for (int d = 0; d < 4; d++) {
      float diff = points[(tid * 4 + d) % n] - centroids[c * 4 + d];
      distance += diff * diff;
    }
    if (distance < best_distance) {
      best_distance = distance;
      best_cluster = c;
    }
  }
  membership[tid] = best_cluster;
}
"""

_LUD = r"""
__kernel void lud_perimeter(__global float* matrix, __local float* dia, const int n) {
  int gid = get_global_id(0);
  int lid = get_local_id(0);
  dia[lid] = matrix[gid];
  barrier(CLK_LOCAL_MEM_FENCE);
  float value = dia[lid];
  for (int k = 0; k < 8; k++) {
    float factor = dia[(lid + k) % get_local_size(0)] + 1.0e-3f;
    value = value - (value / factor) * 0.5f;
  }
  matrix[gid] = value;
}
"""

_NW = r"""
__kernel void needle_diag(__global int* score, __global const int* reference, const int n) {
  int tid = get_global_id(0);
  if (tid >= n || tid == 0) {
    return;
  }
  int up = score[tid - 1];
  int left = score[(tid + n - 1) % n];
  int diag = score[(tid + n - 2) % n];
  int match = reference[tid] - 5;
  int best = diag + match;
  if (up - 10 > best) {
    best = up - 10;
  }
  if (left - 10 > best) {
    best = left - 10;
  }
  score[tid] = best;
}
"""

_BACKPROP = r"""
__kernel void backprop_layer(__global const float* input, __global const float* weights,
                             __global float* hidden, __local float* partial, const int n) {
  int gid = get_global_id(0);
  int lid = get_local_id(0);
  float sum = 0.0f;
  for (int j = 0; j < 16; j++) {
    sum += input[(gid + j) % n] * weights[(gid * 16 + j) % n];
  }
  partial[lid] = sum;
  barrier(CLK_LOCAL_MEM_FENCE);
  hidden[gid] = 1.0f / (1.0f + exp(-partial[lid]));
}
"""

_PATHFINDER = r"""
__kernel void pathfinder_step(__global const int* wall, __global const int* src,
                              __global int* dst, const int cols) {
  int tid = get_global_id(0);
  if (tid >= cols) {
    return;
  }
  int left = (tid > 0) ? src[tid - 1] : src[tid];
  int centre = src[tid];
  int right = (tid < cols - 1) ? src[tid + 1] : src[tid];
  int shortest = centre;
  if (left < shortest) {
    shortest = left;
  }
  if (right < shortest) {
    shortest = right;
  }
  dst[tid] = shortest + wall[tid];
}
"""

_STREAMCLUSTER = r"""
__kernel void streamcluster_gain(__global const float* points, __global const float* centre,
                                 __global float* gains, const int n) {
  int tid = get_global_id(0);
  if (tid >= n) {
    return;
  }
  float cost = 0.0f;
  for (int d = 0; d < 8; d++) {
    float diff = points[(tid * 8 + d) % n] - centre[d % 8];
    cost += diff * diff;
  }
  gains[tid] = sqrt(cost) * 0.5f;
}
"""

_NN = r"""
__kernel void nn_distance(__global const float* latitudes, __global const float* longitudes,
                          __global float* distances, const float target_lat,
                          const float target_long, const int n) {
  int tid = get_global_id(0);
  if (tid < n) {
    float dlat = latitudes[tid] - target_lat;
    float dlong = longitudes[tid] - target_long;
    distances[tid] = sqrt(dlat * dlat + dlong * dlong);
  }
}
"""

_CFD = r"""
__kernel void cfd_compute_flux(__global const float* density, __global const float* momentum,
                               __global float* fluxes, const int n) {
  int tid = get_global_id(0);
  if (tid >= n) {
    return;
  }
  float rho = density[tid] + 1.0e-4f;
  float speed = momentum[tid] / rho;
  float pressure = 0.4f * (momentum[tid] - 0.5f * rho * speed * speed);
  float flux = 0.0f;
  for (int face = 0; face < 4; face++) {
    float neighbour = density[(tid + face + 1) % n];
    flux += (neighbour - rho) * speed + pressure * 0.25f;
  }
  fluxes[tid] = flux;
}
"""

_LAVAMD = r"""
__kernel void lavamd_forces(__global const float* positions, __global float* forces,
                            __local float* box, const int n) {
  int gid = get_global_id(0);
  int lid = get_local_id(0);
  box[lid] = positions[gid];
  barrier(CLK_LOCAL_MEM_FENCE);
  float force = 0.0f;
  for (int j = 0; j < 32; j++) {
    float r = box[lid] - box[(lid + j) % get_local_size(0)];
    float r2 = r * r + 0.01f;
    force += r / (r2 * r2);
  }
  forces[gid] = force;
}
"""

_HEARTWALL = r"""
__kernel void heartwall_correlate(__global const float* frame, __global const float* sample,
                                  __global float* scores, const int n) {
  int tid = get_global_id(0);
  if (tid >= n) {
    return;
  }
  float score = 0.0f;
  for (int k = 0; k < 25; k++) {
    score += frame[(tid + k) % n] * sample[k % 25];
  }
  scores[tid] = score;
}
"""

_LEUKOCYTE = r"""
__kernel void leukocyte_gicov(__global const float* gradient, __global float* gicov,
                              const int width, const int height) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  if (x >= width || y >= height) {
    return;
  }
  float sum = 0.0f;
  float sum_sq = 0.0f;
  for (int t = 0; t < 12; t++) {
    float g = gradient[(y * width + x + t) % (width * height)];
    sum += g;
    sum_sq += g * g;
  }
  float mean = sum / 12.0f;
  float variance = sum_sq / 12.0f - mean * mean + 1.0e-6f;
  gicov[y * width + x] = mean * mean / variance;
}
"""

BENCHMARKS = [
    Benchmark(SUITE_NAME, "bfs", _BFS, datasets=_DATASETS, kernels_in_program=2),
    Benchmark(SUITE_NAME, "hotspot", _HOTSPOT, datasets=_DATASETS, kernels_in_program=1),
    Benchmark(SUITE_NAME, "srad", _SRAD, datasets=_DATASETS, kernels_in_program=2),
    Benchmark(SUITE_NAME, "kmeans", _KMEANS, datasets=_DATASETS, kernels_in_program=2),
    Benchmark(SUITE_NAME, "lud", _LUD, datasets=_DATASETS, kernels_in_program=3),
    Benchmark(SUITE_NAME, "nw", _NW, datasets=_DATASETS, kernels_in_program=2),
    Benchmark(SUITE_NAME, "backprop", _BACKPROP, datasets=_DATASETS, kernels_in_program=2),
    Benchmark(SUITE_NAME, "pathfinder", _PATHFINDER, datasets=_DATASETS, kernels_in_program=1),
    Benchmark(SUITE_NAME, "streamcluster", _STREAMCLUSTER, datasets=_DATASETS, kernels_in_program=1),
    Benchmark(SUITE_NAME, "nn", _NN, datasets=_DATASETS, kernels_in_program=1),
    Benchmark(SUITE_NAME, "cfd", _CFD, datasets=_DATASETS, kernels_in_program=3),
    Benchmark(SUITE_NAME, "lavamd", _LAVAMD, datasets=_DATASETS, kernels_in_program=1),
    Benchmark(SUITE_NAME, "heartwall", _HEARTWALL, datasets=_DATASETS, kernels_in_program=1),
    Benchmark(SUITE_NAME, "leukocyte", _LEUKOCYTE, datasets=_DATASETS, kernels_in_program=3),
]
