"""Benchmark-suite registry (paper Table 3).

The paper evaluates on 71 programs / 256 kernels drawn from the seven most
frequently used GPGPU benchmark suites (NPB, Rodinia, NVIDIA SDK, AMD SDK,
Parboil, PolyBench, SHOC).  This registry holds our stand-in suites: every
benchmark is an OpenCL kernel written in the style of its suite, together
with the datasets it ships with (NPB gets its S/W/A/B/C problem classes,
Parboil several datasets, everything else a default dataset), expressed as
dataset *scale factors* consumed by the host driver's analytic runtime
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BenchmarkError


@dataclass(frozen=True)
class Dataset:
    """One input configuration of a benchmark."""

    name: str
    scale: float  #: multiplier applied to the executed payload when estimating runtimes

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Benchmark:
    """One benchmark program: a kernel source plus its datasets."""

    suite: str
    name: str
    source: str
    kernel_name: str | None = None
    datasets: tuple[Dataset, ...] = (Dataset("default", 64.0),)
    kernels_in_program: int = 1

    @property
    def qualified_name(self) -> str:
        return f"{self.suite}.{self.name}"

    def dataset(self, name: str) -> Dataset:
        for dataset in self.datasets:
            if dataset.name == name:
                return dataset
        raise BenchmarkError(f"{self.qualified_name} has no dataset named {name!r}")


@dataclass
class Suite:
    """A named collection of benchmarks."""

    name: str
    benchmarks: list[Benchmark] = field(default_factory=list)

    @property
    def benchmark_count(self) -> int:
        return len(self.benchmarks)

    @property
    def kernel_count(self) -> int:
        return sum(benchmark.kernels_in_program for benchmark in self.benchmarks)

    def benchmark(self, name: str) -> Benchmark:
        for benchmark in self.benchmarks:
            if benchmark.name == name:
                return benchmark
        raise BenchmarkError(f"suite {self.name!r} has no benchmark named {name!r}")


#: The NPB problem classes and their relative sizes (S < W < A < B < C).
NPB_CLASSES: tuple[Dataset, ...] = (
    Dataset("S", 2.0),
    Dataset("W", 12.0),
    Dataset("A", 80.0),
    Dataset("B", 400.0),
    Dataset("C", 1600.0),
)

#: Dataset ladders reused by other suites.
DEFAULT_DATASET: tuple[Dataset, ...] = (Dataset("default", 64.0),)
SMALL_LARGE_DATASETS: tuple[Dataset, ...] = (Dataset("small", 8.0), Dataset("large", 512.0))


def _build_suites() -> dict[str, Suite]:
    # Imported lazily to keep module import cheap and cycle-free.
    from repro.suites import kernels_amd, kernels_npb, kernels_nvidia, kernels_parboil
    from repro.suites import kernels_polybench, kernels_rodinia, kernels_shoc

    suites: dict[str, Suite] = {}
    for module in (
        kernels_npb,
        kernels_rodinia,
        kernels_nvidia,
        kernels_amd,
        kernels_parboil,
        kernels_polybench,
        kernels_shoc,
    ):
        suite = Suite(name=module.SUITE_NAME, benchmarks=list(module.BENCHMARKS))
        suites[suite.name] = suite
    return suites


_SUITES_CACHE: dict[str, Suite] | None = None


def all_suites() -> list[Suite]:
    """Every suite, in the paper's Table 3 order."""
    global _SUITES_CACHE
    if _SUITES_CACHE is None:
        _SUITES_CACHE = _build_suites()
    order = ["NPB", "Rodinia", "NVIDIA SDK", "AMD SDK", "Parboil", "PolyBench", "SHOC"]
    return [_SUITES_CACHE[name] for name in order if name in _SUITES_CACHE]


def suite(name: str) -> Suite:
    """Look up one suite by name (case-insensitive)."""
    for candidate in all_suites():
        if candidate.name.lower() == name.lower():
            return candidate
    raise BenchmarkError(f"unknown benchmark suite {name!r}")


def all_benchmarks() -> list[Benchmark]:
    """Every benchmark of every suite."""
    benchmarks: list[Benchmark] = []
    for candidate in all_suites():
        benchmarks.extend(candidate.benchmarks)
    return benchmarks


def suite_summary() -> list[dict]:
    """The Table 3 inventory: suite name, #benchmarks, #kernels."""
    rows = []
    for candidate in all_suites():
        rows.append(
            {
                "suite": candidate.name,
                "benchmarks": candidate.benchmark_count,
                "kernels": candidate.kernel_count,
            }
        )
    rows.append(
        {
            "suite": "Total",
            "benchmarks": sum(row["benchmarks"] for row in rows),
            "kernels": sum(row["kernels"] for row in rows),
        }
    )
    return rows
