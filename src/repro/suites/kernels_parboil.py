"""Parboil benchmark suite stand-ins.

Six throughput-computing programs, each shipped with between one and four
datasets (as in the paper's methodology section).  Parboil programs are
compute-dense scientific codes (electrostatics, MRI reconstruction, dense
and sparse linear algebra) — the suite whose outliers motivate Figure 3.
"""

from __future__ import annotations

from repro.suites.registry import Benchmark, Dataset

SUITE_NAME = "Parboil"

_CUTCP = r"""
__kernel void cutcp_lattice(__global const float* atoms, __global float* lattice,
                            const int natoms, const int n) {
  int tid = get_global_id(0);
  if (tid >= n) {
    return;
  }
  float x = (float)(tid % 16);
  float y = (float)((tid / 16) % 16);
  float potential = 0.0f;
  for (int a = 0; a < 64; a++) {
    float ax = atoms[(a * 4) % natoms];
    float ay = atoms[(a * 4 + 1) % natoms];
    float charge = atoms[(a * 4 + 3) % natoms];
    float dx = x - ax;
    float dy = y - ay;
    float r2 = dx * dx + dy * dy + 0.01f;
    if (r2 < 144.0f) {
      float s = 1.0f - r2 / 144.0f;
      potential += charge * s * s / sqrt(r2);
    }
  }
  lattice[tid] = potential;
}
"""

_MRI_Q = r"""
__kernel void mriq_computeQ(__global const float* kValues, __global const float* x,
                            __global float* Qr, __global float* Qi, const int numK,
                            const int n) {
  int tid = get_global_id(0);
  if (tid >= n) {
    return;
  }
  float position = x[tid];
  float realAcc = 0.0f;
  float imagAcc = 0.0f;
  for (int k = 0; k < 48; k++) {
    float phi = kValues[(k * 4) % numK];
    float angle = 6.2831853f * phi * position * 0.01f;
    realAcc += phi * cos(angle);
    imagAcc += phi * sin(angle);
  }
  Qr[tid] = realAcc;
  Qi[tid] = imagAcc;
}
"""

_SGEMM = r"""
__kernel void sgemm_nn(__global const float* A, __global const float* B, __global float* C,
                       const float alpha, const float beta, const int n) {
  int row = get_global_id(1);
  int col = get_global_id(0);
  float acc = 0.0f;
  for (int k = 0; k < 32; k++) {
    acc += A[(row * 32 + k) % n] * B[(k * 32 + col) % n];
  }
  int index = (row * 32 + col) % n;
  C[index] = alpha * acc + beta * C[index];
}
"""

_SPMV = r"""
__kernel void spmv_jds(__global const float* data, __global const int* indices,
                       __global const float* x, __global float* y, const int n) {
  int row = get_global_id(0);
  if (row >= n) {
    return;
  }
  float sum = 0.0f;
  for (int j = 0; j < 12; j++) {
    int column = indices[(row + j * 7) % n];
    sum += data[(row * 12 + j) % n] * x[column % n];
  }
  y[row] = sum;
}
"""

_STENCIL = r"""
__kernel void stencil_probe(__global const float* A0, __global float* Anext,
                            const int nx, const int ny) {
  int i = get_global_id(0);
  int j = get_global_id(1);
  if (i <= 0 || j <= 0 || i >= nx - 1 || j >= ny - 1) {
    return;
  }
  int index = j * nx + i;
  Anext[index] = 0.2f * (A0[index] + A0[index - 1] + A0[index + 1]
                         + A0[index - nx] + A0[index + nx])
               - 0.8f * A0[index];
}
"""

_HISTO = r"""
__kernel void histo_main(__global const unsigned int* image, __global unsigned int* bins,
                         const int n) {
  int tid = get_global_id(0);
  if (tid >= n) {
    return;
  }
  unsigned int pixel = image[tid];
  unsigned int bin = pixel % 256;
  atomic_add(&bins[bin % n], 1);
}
"""

BENCHMARKS = [
    Benchmark(SUITE_NAME, "cutcp", _CUTCP, kernels_in_program=1,
              datasets=(Dataset("small", 16.0), Dataset("large", 256.0))),
    Benchmark(SUITE_NAME, "mri-q", _MRI_Q, kernels_in_program=2,
              datasets=(Dataset("small", 24.0), Dataset("large", 320.0))),
    Benchmark(SUITE_NAME, "sgemm", _SGEMM, kernels_in_program=1,
              datasets=(Dataset("small", 32.0), Dataset("medium", 128.0), Dataset("large", 512.0))),
    Benchmark(SUITE_NAME, "spmv", _SPMV, kernels_in_program=1,
              datasets=(Dataset("small", 12.0), Dataset("medium", 96.0), Dataset("large", 384.0))),
    Benchmark(SUITE_NAME, "stencil", _STENCIL, kernels_in_program=1,
              datasets=(Dataset("small", 20.0), Dataset("default", 160.0))),
    Benchmark(SUITE_NAME, "histo", _HISTO, kernels_in_program=2,
              datasets=(Dataset("small", 16.0), Dataset("default", 96.0),
                        Dataset("large", 448.0), Dataset("huge", 1024.0))),
]
