"""SHOC (Scalable HeterOgeneous Computing) benchmark suite stand-ins.

Twelve level-0/level-1 SHOC benchmarks: bandwidth-bound primitives (Triad,
Sort, Scan, Reduction), compute-bound kernels (MD, FFT, GEMM) and irregular
ones (BFS, SpMV) — the suite spans both extremes of the
communication–computation ratio, which is what makes it a strong training
suite in Table 1.
"""

from __future__ import annotations

from repro.suites.registry import Benchmark, Dataset

SUITE_NAME = "SHOC"

_DATASETS = (Dataset("default", 72.0),)
_SIZES = (Dataset("size1", 16.0), Dataset("size4", 256.0))

_TRIAD = r"""
__kernel void Triad(__global const float* memA, __global const float* memB,
                    __global float* memC, const float scalar, const int n) {
  int gid = get_global_id(0);
  if (gid < n) {
    memC[gid] = memA[gid] + scalar * memB[gid];
  }
}
"""

_REDUCTION = r"""
__kernel void reduce_shoc(__global const float* g_idata, __global float* g_odata,
                          __local float* sdata, const int n) {
  int tid = get_local_id(0);
  int gid = get_global_id(0);
  sdata[tid] = (gid < n) ? g_idata[gid] : 0.0f;
  barrier(CLK_LOCAL_MEM_FENCE);
  for (unsigned int s = get_local_size(0) / 2; s > 0; s >>= 1) {
    if (tid < s) {
      sdata[tid] += sdata[tid + s];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  if (tid == 0) {
    g_odata[get_group_id(0)] = sdata[0];
  }
}
"""

_SCAN = r"""
__kernel void scan_local(__global const float* in, __global float* out,
                         __local float* temp, const int n) {
  int gid = get_global_id(0);
  int lid = get_local_id(0);
  temp[lid] = (gid < n) ? in[gid] : 0.0f;
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int offset = 1; offset < get_local_size(0); offset *= 2) {
    float value = (lid >= offset) ? temp[lid - offset] : 0.0f;
    barrier(CLK_LOCAL_MEM_FENCE);
    temp[lid] += value;
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  out[gid] = temp[lid];
}
"""

_SORT = r"""
__kernel void sort_radix_count(__global const unsigned int* keys, __global unsigned int* counters,
                               const int shift, const int n) {
  int gid = get_global_id(0);
  if (gid >= n) {
    return;
  }
  unsigned int key = keys[gid];
  unsigned int digit = (key >> (shift % 16)) & 0xF;
  atomic_add(&counters[digit % n], 1);
}
"""

_MD = r"""
__kernel void md_lj_force(__global const float* position, __global float* force,
                          __global const int* neighbours, const int n) {
  int gid = get_global_id(0);
  if (gid >= n) {
    return;
  }
  float pos = position[gid];
  float f = 0.0f;
  for (int j = 0; j < 32; j++) {
    int neighbour = neighbours[(gid * 32 + j) % n];
    float delta = pos - position[neighbour % n];
    float r2 = delta * delta + 0.01f;
    float r6 = r2 * r2 * r2;
    f += (2.0f / (r6 * r6) - 1.0f / r6) * delta / r2;
  }
  force[gid] = f;
}
"""

_FFT = r"""
__kernel void fft_radix2(__global float* real, __global float* imag,
                         __local float* shared, const int n) {
  int gid = get_global_id(0);
  int lid = get_local_id(0);
  shared[lid] = real[gid];
  barrier(CLK_LOCAL_MEM_FENCE);
  float re = shared[lid];
  float im = imag[gid];
  for (int stage = 1; stage < 32; stage <<= 1) {
    float angle = -3.14159265f * (float)(lid % stage) / (float)stage;
    float wr = cos(angle);
    float wi = sin(angle);
    float other = shared[(lid ^ stage) % get_local_size(0)];
    re = re + wr * other - wi * im;
    im = im + wr * im + wi * other;
    barrier(CLK_LOCAL_MEM_FENCE);
    shared[lid] = re;
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  real[gid] = re;
  imag[gid] = im;
}
"""

_GEMM_SHOC = r"""
__kernel void sgemmNN(__global const float* A, __global const float* B, __global float* C,
                      __local float* tileA, const int n) {
  int row = get_global_id(1);
  int col = get_global_id(0);
  int lid = get_local_id(0);
  float acc = 0.0f;
  for (int t = 0; t < 4; t++) {
    tileA[lid] = A[(row * 16 + t * 4 + lid % 4) % n];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int k = 0; k < 16; k++) {
      acc += tileA[(lid + k) % get_local_size(0)] * B[(k * 16 + col % 16) % n];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  C[(row * 16 + col % 16) % n] = acc;
}
"""

_SPMV_SHOC = r"""
__kernel void spmv_csr_scalar(__global const float* val, __global const int* cols,
                              __global const int* rowDelimiters, __global const float* vec,
                              __global float* out, const int n) {
  int row = get_global_id(0);
  if (row >= n) {
    return;
  }
  int start = rowDelimiters[row];
  float sum = 0.0f;
  for (int j = 0; j < 8; j++) {
    int column = cols[(start + j) % n];
    sum += val[(start + j) % n] * vec[column % n];
  }
  out[row] = sum;
}
"""

_BFS_SHOC = r"""
__kernel void bfs_shoc(__global const int* edgeArray, __global int* levels,
                       __global int* changed, const int curLevel, const int n) {
  int tid = get_global_id(0);
  if (tid >= n) {
    return;
  }
  if (levels[tid] == curLevel % 8) {
    for (int e = 0; e < 6; e++) {
      int neighbour = edgeArray[(tid * 6 + e) % n];
      if (levels[neighbour % n] > curLevel % 8 + 1) {
        levels[neighbour % n] = curLevel % 8 + 1;
        changed[0] = 1;
      }
    }
  }
}
"""

_STENCIL2D_SHOC = r"""
__kernel void StencilKernel(__global const float* data, __global float* newData,
                            const int nx, const int ny) {
  int i = get_global_id(0);
  int j = get_global_id(1);
  if (i <= 0 || j <= 0 || i >= nx - 1 || j >= ny - 1) {
    return;
  }
  int index = j * nx + i;
  newData[index] = 0.25f * data[index]
                 + 0.1875f * (data[index - 1] + data[index + 1] + data[index - nx] + data[index + nx]);
}
"""

_DEVICE_MEMORY = r"""
__kernel void readGlobalMemoryCoalesced(__global const float* data, __global float* output,
                                        const int size, const int n) {
  int gid = get_global_id(0);
  float sum = 0.0f;
  for (int j = 0; j < 16; j++) {
    sum += data[(gid + j * get_global_size(0)) % size];
  }
  output[gid % n] = sum;
}
"""

_QTC = r"""
__kernel void qtc_distances(__global const float* points, __global float* distances,
                            const float threshold, const int n) {
  int gid = get_global_id(0);
  if (gid >= n) {
    return;
  }
  float count = 0.0f;
  for (int j = 0; j < 24; j++) {
    float diff = points[gid] - points[(gid + j + 1) % n];
    float distance = sqrt(diff * diff);
    if (distance < threshold) {
      count += 1.0f;
    }
  }
  distances[gid] = count;
}
"""

BENCHMARKS = [
    Benchmark(SUITE_NAME, "Triad", _TRIAD, datasets=_SIZES, kernels_in_program=1),
    Benchmark(SUITE_NAME, "Reduction", _REDUCTION, datasets=_SIZES, kernels_in_program=2),
    Benchmark(SUITE_NAME, "Scan", _SCAN, datasets=_SIZES, kernels_in_program=3),
    Benchmark(SUITE_NAME, "Sort", _SORT, datasets=_DATASETS, kernels_in_program=6),
    Benchmark(SUITE_NAME, "MD", _MD, datasets=_DATASETS, kernels_in_program=2),
    Benchmark(SUITE_NAME, "FFT", _FFT, datasets=_DATASETS, kernels_in_program=5),
    Benchmark(SUITE_NAME, "GEMM", _GEMM_SHOC, datasets=_SIZES, kernels_in_program=2),
    Benchmark(SUITE_NAME, "SpMV", _SPMV_SHOC, datasets=_DATASETS, kernels_in_program=4),
    Benchmark(SUITE_NAME, "BFS", _BFS_SHOC, datasets=_DATASETS, kernels_in_program=2),
    Benchmark(SUITE_NAME, "Stencil2D", _STENCIL2D_SHOC, datasets=_SIZES, kernels_in_program=1),
    Benchmark(SUITE_NAME, "DeviceMemory", _DEVICE_MEMORY, datasets=_DATASETS, kernels_in_program=8),
    Benchmark(SUITE_NAME, "QTC", _QTC, datasets=_DATASETS, kernels_in_program=2),
]
