"""NAS Parallel Benchmarks (SNU OpenCL implementation) stand-ins.

Seven programs (BT, CG, EP, FT, LU, MG, SP), each shipped with the five NPB
problem classes S/W/A/B/C.  Mirroring the characterisation in §8.2 of the
paper, these kernels make heavy use of ``__local`` memory staging and are
written to minimise branching — which is precisely why the combined F3
feature over-specialises to NPB and why the branch feature is missing from
the original model.
"""

from __future__ import annotations

from repro.suites.registry import Benchmark, Dataset, NPB_CLASSES

SUITE_NAME = "NPB"

_BT = r"""
__kernel void bt_compute_rhs(__global const float* u, __global float* rhs,
                             __local float* tile, const int n) {
  int gid = get_global_id(0);
  int lid = get_local_id(0);
  tile[lid] = u[gid];
  barrier(CLK_LOCAL_MEM_FENCE);
  float flux = 0.0f;
  for (int m = 0; m < 5; m++) {
    float q = tile[lid] * (0.4f + 0.1f * m);
    flux += q * q - 0.25f * tile[lid];
  }
  float forcing = 1.0f / (1.0f + flux * flux);
  rhs[gid] = flux * 0.2f + forcing;
}
"""

_CG = r"""
__kernel void cg_spmv_partial(__global const float* values, __global const float* x,
                              __global float* y, __local float* partial, const int n) {
  int gid = get_global_id(0);
  int lid = get_local_id(0);
  float acc = 0.0f;
  for (int j = 0; j < 16; j++) {
    int col = (gid * 7 + j * 13) % n;
    acc += values[(gid + j) % n] * x[col];
  }
  partial[lid] = acc;
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int s = get_local_size(0) / 2; s > 0; s >>= 1) {
    if (lid < s) {
      partial[lid] += partial[lid + s];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  if (lid == 0) {
    y[get_group_id(0)] = partial[0];
  }
}
"""

_EP = r"""
__kernel void ep_gaussian_pairs(__global float* sums, __global float* counts,
                                __local float* scratch, const int n) {
  int gid = get_global_id(0);
  int lid = get_local_id(0);
  float seed = (float)(gid + 1) * 0.000301f;
  float sx = 0.0f;
  float sy = 0.0f;
  for (int k = 0; k < 64; k++) {
    seed = seed * 1220703.125f + 0.5f;
    seed = seed - floor(seed);
    float x1 = 2.0f * seed - 1.0f;
    seed = seed * 5931.0f + 0.25f;
    seed = seed - floor(seed);
    float x2 = 2.0f * seed - 1.0f;
    float t = x1 * x1 + x2 * x2;
    float scale = sqrt(fabs(log(t + 1.0e-6f)) / (t + 1.0e-6f));
    sx += x1 * scale;
    sy += x2 * scale;
  }
  scratch[lid] = sx + sy;
  barrier(CLK_LOCAL_MEM_FENCE);
  sums[gid] = scratch[lid];
  counts[gid] = sx * sx + sy * sy;
}
"""

_FT = r"""
__kernel void ft_butterfly(__global float* re, __global float* im,
                           __local float* stage, const int n) {
  int gid = get_global_id(0);
  int lid = get_local_id(0);
  stage[lid] = re[gid];
  barrier(CLK_LOCAL_MEM_FENCE);
  float real = stage[lid];
  float imag = im[gid];
  for (int span = 1; span < 64; span <<= 1) {
    int partner = lid ^ span;
    float angle = 6.2831853f * (float)(lid % span) / (float)(2 * span);
    float wr = cos(angle);
    float wi = sin(angle);
    float pr = stage[partner % get_local_size(0)];
    float tr = wr * pr - wi * imag;
    float ti = wr * imag + wi * pr;
    real = real + tr;
    imag = imag + ti;
    barrier(CLK_LOCAL_MEM_FENCE);
    stage[lid] = real;
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  re[gid] = real;
  im[gid] = imag;
}
"""

_LU = r"""
__kernel void lu_jacld_blts(__global const float* rsd, __global float* v,
                            __local float* row, const int n) {
  int gid = get_global_id(0);
  int lid = get_local_id(0);
  row[lid] = rsd[gid];
  barrier(CLK_LOCAL_MEM_FENCE);
  float diag = 1.0f + 0.001f * (float)(lid);
  float acc = row[lid];
  for (int m = 0; m < 12; m++) {
    float neighbour = row[(lid + m) % get_local_size(0)];
    acc = acc - 0.05f * neighbour * diag;
    acc = acc / (diag + 0.02f * m);
  }
  v[gid] = acc;
}
"""

_MG = r"""
__kernel void mg_resid(__global const float* u, __global const float* rhs,
                       __global float* r, __local float* plane, const int n) {
  int gid = get_global_id(0);
  int lid = get_local_id(0);
  plane[lid] = u[gid];
  barrier(CLK_LOCAL_MEM_FENCE);
  int left = (lid > 0) ? lid - 1 : lid;
  int right = (lid < get_local_size(0) - 1) ? lid + 1 : lid;
  float lap = plane[left] - 2.0f * plane[lid] + plane[right];
  float smooth = 0.5f * plane[lid] + 0.25f * (plane[left] + plane[right]);
  r[gid] = rhs[gid] - 0.8f * lap - 0.2f * smooth;
}
"""

_SP = r"""
__kernel void sp_x_solve(__global float* lhs, __global const float* rhs,
                         __local float* line, const int n) {
  int gid = get_global_id(0);
  int lid = get_local_id(0);
  line[lid] = lhs[gid];
  barrier(CLK_LOCAL_MEM_FENCE);
  float pivot = line[lid] + 1.0e-3f;
  float value = rhs[gid];
  for (int sweep = 0; sweep < 10; sweep++) {
    value = (value - 0.3f * line[(lid + sweep) % get_local_size(0)]) / pivot;
    pivot = pivot * 0.98f + 0.02f;
  }
  lhs[gid] = value;
}
"""

_KERNELS_PER_PROGRAM = {
    "BT": 26,
    "CG": 11,
    "EP": 4,
    "FT": 13,
    "LU": 25,
    "MG": 15,
    "SP": 20,
}

# Dataset availability mirrors Figure 7 of the paper: BT and FT ship without
# the C class, EP ships without the S class, the rest have all five.
BENCHMARKS = [
    Benchmark(suite=SUITE_NAME, name="BT", source=_BT, datasets=NPB_CLASSES[:4],
              kernels_in_program=_KERNELS_PER_PROGRAM["BT"]),
    Benchmark(suite=SUITE_NAME, name="CG", source=_CG, datasets=NPB_CLASSES,
              kernels_in_program=_KERNELS_PER_PROGRAM["CG"]),
    Benchmark(suite=SUITE_NAME, name="EP", source=_EP, datasets=NPB_CLASSES[1:],
              kernels_in_program=_KERNELS_PER_PROGRAM["EP"]),
    Benchmark(suite=SUITE_NAME, name="FT", source=_FT, datasets=NPB_CLASSES[:4],
              kernels_in_program=_KERNELS_PER_PROGRAM["FT"]),
    Benchmark(suite=SUITE_NAME, name="LU", source=_LU, datasets=NPB_CLASSES,
              kernels_in_program=_KERNELS_PER_PROGRAM["LU"]),
    Benchmark(suite=SUITE_NAME, name="MG", source=_MG, datasets=NPB_CLASSES,
              kernels_in_program=_KERNELS_PER_PROGRAM["MG"]),
    Benchmark(suite=SUITE_NAME, name="SP", source=_SP, datasets=NPB_CLASSES,
              kernels_in_program=_KERNELS_PER_PROGRAM["SP"]),
]
