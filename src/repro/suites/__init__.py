"""``repro.suites`` — the seven GPGPU benchmark suites of Table 3."""

from repro.suites.registry import (
    Benchmark,
    Dataset,
    NPB_CLASSES,
    Suite,
    all_benchmarks,
    all_suites,
    suite,
    suite_summary,
)

__all__ = [
    "Benchmark",
    "Dataset",
    "NPB_CLASSES",
    "Suite",
    "all_benchmarks",
    "all_suites",
    "suite",
    "suite_summary",
]
