"""NVIDIA OpenCL SDK sample stand-ins.

Six samples in the classic SDK style: highly regular, coalesced access
patterns, tuned work-group usage.  The paper found models trained on the
NVIDIA SDK generalise best across other suites (Table 1) — these kernels sit
in the "well-behaved" centre of the feature space.
"""

from __future__ import annotations

from repro.suites.registry import Benchmark, Dataset

SUITE_NAME = "NVIDIA SDK"

_DATASETS = (Dataset("default", 128.0),)

_VECTOR_ADD = r"""
__kernel void VectorAdd(__global const float* a, __global const float* b,
                        __global float* c, const int numElements) {
  int iGID = get_global_id(0);
  if (iGID < numElements) {
    c[iGID] = a[iGID] + b[iGID];
  }
}
"""

_MATRIX_MUL = r"""
__kernel void matrixMul(__global const float* A, __global const float* B,
                        __global float* C, __local float* As, const int width) {
  int row = get_global_id(1);
  int col = get_global_id(0);
  int lid = get_local_id(0);
  float acc = 0.0f;
  for (int tile = 0; tile < 8; tile++) {
    As[lid] = A[(row * 8 + tile) % width + lid];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int k = 0; k < 8; k++) {
      acc += As[(lid + k) % get_local_size(0)] * B[(tile * 8 + k) * 8 + col % 8];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  C[row * 8 + col % 8] = acc;
}
"""

_TRANSPOSE = r"""
__kernel void transpose(__global const float* idata, __global float* odata,
                        __local float* block, const int width, const int height) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  int lid = get_local_id(0);
  block[lid] = idata[(y * width + x) % (width * height)];
  barrier(CLK_LOCAL_MEM_FENCE);
  odata[(x * height + y) % (width * height)] = block[lid];
}
"""

_REDUCTION = r"""
__kernel void reduce(__global const float* g_idata, __global float* g_odata,
                     __local float* sdata, const int n) {
  int tid = get_local_id(0);
  int gid = get_global_id(0);
  sdata[tid] = (gid < n) ? g_idata[gid] : 0.0f;
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int s = get_local_size(0) / 2; s > 0; s >>= 1) {
    if (tid < s) {
      sdata[tid] += sdata[tid + s];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  if (tid == 0) {
    g_odata[get_group_id(0)] = sdata[0];
  }
}
"""

_BLACK_SCHOLES = r"""
__kernel void BlackScholes(__global const float* stockPrice, __global const float* optionStrike,
                           __global float* callResult, __global float* putResult,
                           const float riskFree, const int optN) {
  int opt = get_global_id(0);
  if (opt >= optN) {
    return;
  }
  float S = fabs(stockPrice[opt]) + 1.0f;
  float X = fabs(optionStrike[opt]) + 1.0f;
  float T = 0.25f + 0.01f * (float)(opt % 16);
  float sqrtT = sqrt(T);
  float d1 = (log(S / X) + (riskFree + 0.15f) * T) / (0.3f * sqrtT);
  float d2 = d1 - 0.3f * sqrtT;
  float cnd1 = 0.5f * (1.0f + tanh(0.7978845f * (d1 + 0.044715f * d1 * d1 * d1)));
  float cnd2 = 0.5f * (1.0f + tanh(0.7978845f * (d2 + 0.044715f * d2 * d2 * d2)));
  float expRT = exp(-riskFree * T);
  callResult[opt] = S * cnd1 - X * expRT * cnd2;
  putResult[opt] = X * expRT * (1.0f - cnd2) - S * (1.0f - cnd1);
}
"""

_DOT_PRODUCT = r"""
__kernel void DotProduct(__global const float4* a, __global const float4* b,
                         __global float* c, const int numElements) {
  int iGID = get_global_id(0);
  if (iGID < numElements) {
    float4 va = a[iGID];
    float4 vb = b[iGID];
    c[iGID] = va.x * vb.x + va.y * vb.y + va.z * vb.z + va.w * vb.w;
  }
}
"""

BENCHMARKS = [
    Benchmark(SUITE_NAME, "VectorAdd", _VECTOR_ADD, datasets=_DATASETS, kernels_in_program=1),
    Benchmark(SUITE_NAME, "MatrixMul", _MATRIX_MUL, datasets=_DATASETS, kernels_in_program=2),
    Benchmark(SUITE_NAME, "Transpose", _TRANSPOSE, datasets=_DATASETS, kernels_in_program=2),
    Benchmark(SUITE_NAME, "Reduction", _REDUCTION, datasets=_DATASETS, kernels_in_program=3),
    Benchmark(SUITE_NAME, "BlackScholes", _BLACK_SCHOLES, datasets=_DATASETS, kernels_in_program=1),
    Benchmark(SUITE_NAME, "DotProduct", _DOT_PRODUCT, datasets=_DATASETS, kernels_in_program=3),
]
