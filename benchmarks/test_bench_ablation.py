"""Ablation benchmarks for the design choices called out in DESIGN.md.

* identifier rewriting on/off → language-model quality (vocabulary, loss),
* language-model backend (n-gram order sweep),
* synthetic-benchmark count vs predictive-model behaviour,
* generator comparison (CLgen vs CLSmith vs GENESIS templates) in feature space.
"""

from __future__ import annotations

from repro.baselines import generate_clsmith_kernels, generate_genesis_kernels
from repro.corpus import Corpus, mine_content_files
from repro.experiments import run_figure7
from repro.features import extract_static_features
from repro.model import NgramLanguageModel
from repro.suites import all_benchmarks


def test_bench_ablation_identifier_rewriting(benchmark, bench_config):
    """Rewriting ablation: vocabulary size and model loss with/without renaming."""
    texts = mine_content_files(bench_config.corpus_repository_count // 2, seed=3)

    def build_both():
        renamed = Corpus.from_content_files(texts, rename_identifiers=True)
        raw = Corpus.from_content_files(texts, rename_identifiers=False)
        return renamed, raw

    renamed, raw = benchmark.pedantic(build_both, rounds=1, iterations=1)
    model_renamed = NgramLanguageModel(order=6)
    loss_renamed = model_renamed.fit(renamed.training_text()).final_loss
    model_raw = NgramLanguageModel(order=6)
    loss_raw = model_raw.fit(raw.training_text()).final_loss
    print(f"\n[ablation/rewrite] vocab renamed={len(renamed.character_vocabulary())} "
          f"raw={len(raw.character_vocabulary())}; loss renamed={loss_renamed:.3f} raw={loss_raw:.3f}")
    assert loss_renamed <= loss_raw * 1.2


def test_bench_ablation_ngram_order(benchmark, bench_config):
    """Backend ablation: acceptance-relevant model quality vs n-gram order."""
    corpus = Corpus.mine_and_build(bench_config.corpus_repository_count // 2, seed=5)
    text = corpus.training_text()
    held_out = text[: len(text) // 10]

    def sweep():
        results = {}
        for order in (3, 6, 10, 14):
            model = NgramLanguageModel(order=order)
            model.fit(text)
            results[order] = model.perplexity(held_out[:500])
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\n[ablation/order] perplexity by order: "
          + ", ".join(f"{order}: {value:.2f}" for order, value in results.items()))
    assert results[10] <= results[3]


def test_bench_ablation_synthetic_count(benchmark, bench_config, bench_data, bench_clgen):
    """Training-set ablation: Figure 7 improvement as synthetic kernels are added."""
    def run_with_counts():
        improvements = {}
        full = bench_data.synthetic_measurements
        for count in (0, len(full) // 4, len(full)):
            subset = full[:count]
            trimmed = type(bench_data)(
                config=bench_data.config,
                suite_measurements=bench_data.suite_measurements,
                benchmark_measurements=bench_data.benchmark_measurements,
                synthetic_measurements=subset,
                synthesis=bench_data.synthesis,
            )
            result = run_figure7(bench_config, trimmed)
            improvements[count] = result.platforms["AMD"].with_clgen_average
        return improvements

    improvements = benchmark.pedantic(run_with_counts, rounds=1, iterations=1)
    print(f"\n[ablation/synthetic-count] AMD speedup vs #synthetic kernels: "
          + ", ".join(f"{count}: {value:.2f}x" for count, value in improvements.items()))
    assert all(value > 0 for value in improvements.values())


def test_bench_ablation_generator_comparison(benchmark, bench_config, bench_clgen):
    """Generator ablation: CLgen vs GENESIS templates vs CLSmith in feature space."""
    signatures = set()
    for suite_benchmark in all_benchmarks():
        features = extract_static_features(suite_benchmark.source)
        if features is not None:
            signatures.add(features.as_extended_tuple())
    count = 30

    def compare():
        clgen_sources = [k.source for k in bench_clgen.generate_kernels(count, seed=3).kernels]
        genesis_sources = generate_genesis_kernels(count, seed=3)
        clsmith_sources = generate_clsmith_kernels(count, seed=3)
        fractions = {}
        for label, sources in (("CLgen", clgen_sources), ("GENESIS", genesis_sources),
                               ("CLSmith", clsmith_sources)):
            matches = 0
            for source in sources:
                features = extract_static_features(source)
                if features is not None and features.as_extended_tuple() in signatures:
                    matches += 1
            fractions[label] = matches / max(len(sources), 1)
        return fractions

    fractions = benchmark.pedantic(compare, rounds=1, iterations=1)
    print(f"\n[ablation/generators] benchmark-feature match rate: "
          + ", ".join(f"{label}: {value:.1%}" for label, value in fractions.items()))
    assert fractions["CLgen"] >= fractions["CLSmith"]
