"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures.  The heavy
shared inputs (suite measurements, the trained synthesizer) are built once
per session at a scale controlled by the ``REPRO_BENCH_SCALE`` environment
variable: ``quick`` (default, minutes) or ``full`` (paper-scale synthetic
kernel counts).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import (
    ExperimentConfig,
    build_clgen,
    measure_suites,
    synthesize_and_measure,
)


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if scale == "full":
        return ExperimentConfig.full()
    config = ExperimentConfig.quick()
    config.synthetic_kernel_count = 50
    return config


@pytest.fixture(scope="session")
def bench_clgen(bench_config):
    return build_clgen(bench_config)


@pytest.fixture(scope="session")
def bench_data(bench_config, bench_clgen):
    data = measure_suites(bench_config)
    return synthesize_and_measure(bench_config, data, clgen=bench_clgen)
