"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures.  The heavy
shared inputs (suite measurements, the trained synthesizer) are built once
per session at a scale controlled by the ``REPRO_BENCH_SCALE`` environment
variable: ``quick`` (default, minutes) or ``full`` (paper-scale synthetic
kernel counts).

The session also emits a perf snapshot at the repo root — ``BENCH_PR2.json``
by default, overridable with the ``REPRO_BENCH_OUT`` environment variable so
each PR's bench run stops clobbering the previous PR's artifact — recording
wall-clock seconds per pipeline phase (preprocess, train, sample, execute).
See the "Performance" section of ROADMAP.md for how to read it and for the
benchmark protocol; ``scripts/bench_compare.py`` diffs two snapshots.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments import (
    ExperimentConfig,
    build_clgen,
    measure_suites,
    synthesize_and_measure,
)

#: Wall-clock seconds per pipeline phase, accumulated by the session fixtures.
_PHASE_TIMINGS: dict[str, float] = {}

_SNAPSHOT_PATH = Path(__file__).resolve().parent.parent / os.environ.get(
    "REPRO_BENCH_OUT", "BENCH_PR2.json"
)

#: Pre-PR-1 reference numbers for the quick-scale synthesize-and-measure
#: pipeline, measured at commit 4066a81 (the PR-0 tree) on this machine with
#: ``scripts/profile_pipeline.py``.  Kept here so every snapshot reports its
#: speedup against the same fixed baseline (see ROADMAP.md "Performance").
_PR0_BASELINE_SECONDS = {
    "preprocess": 0.640,
    "train": 0.138,
    "sample": 2.270,
    "execute": 4.313,
}

#: PR-1 reference numbers re-measured at commit f45fae8 with *this same
#: pytest bench harness* on the same machine state as this PR's snapshot
#: (mean of two runs; the profile script agrees within noise: 0.93–1.21 s
#: execute over six runs).  The committed ``BENCH_PR1.json`` was recorded
#: under a markedly faster machine state — compare against these for a
#: like-for-like phase speedup (ROADMAP "Performance" has the drift
#: caveat).
_PR1_REMEASURED_SECONDS = {
    "preprocess": 0.367,
    "train": 0.156,
    "sample": 0.453,
    "execute": 1.017,
}


def _bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    if _bench_scale() == "full":
        return ExperimentConfig.full()
    config = ExperimentConfig.quick()
    config.synthetic_kernel_count = 50
    return config


@pytest.fixture(scope="session")
def bench_clgen(bench_config):
    return build_clgen(bench_config, timings=_PHASE_TIMINGS)


@pytest.fixture(scope="session")
def bench_data(bench_config, bench_clgen):
    started = time.perf_counter()
    data = measure_suites(bench_config)
    _PHASE_TIMINGS["execute"] = (
        _PHASE_TIMINGS.get("execute", 0.0) + time.perf_counter() - started
    )
    return synthesize_and_measure(
        bench_config, data, clgen=bench_clgen, timings=_PHASE_TIMINGS
    )


def pytest_sessionfinish(session, exitstatus):
    """Write the per-phase perf snapshot once the heavy fixtures have run."""
    if set(_PHASE_TIMINGS) != {"preprocess", "train", "sample", "execute"}:
        # A filtered or failed session timed only some phases; a partial
        # total would overwrite the snapshot with a bogus speedup.
        return
    total = sum(_PHASE_TIMINGS.values())
    snapshot = {
        "scale": _bench_scale(),
        "phases_seconds": {
            phase: round(_PHASE_TIMINGS[phase], 3) for phase in sorted(_PHASE_TIMINGS)
        },
        "total_seconds": round(total, 3),
        "unix_time": int(time.time()),
    }
    if _bench_scale() == "quick":
        baseline_total = sum(_PR0_BASELINE_SECONDS.values())
        snapshot["pr0_baseline_seconds"] = dict(_PR0_BASELINE_SECONDS)
        snapshot["pr0_baseline_total_seconds"] = round(baseline_total, 3)
        snapshot["speedup_vs_pr0"] = round(baseline_total / max(total, 1e-9), 2)
        snapshot["pr1_remeasured_seconds"] = dict(_PR1_REMEASURED_SECONDS)
        snapshot["execute_speedup_vs_pr1_remeasured"] = round(
            _PR1_REMEASURED_SECONDS["execute"]
            / max(_PHASE_TIMINGS["execute"], 1e-9),
            2,
        )
    try:
        _SNAPSHOT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")
    except OSError:
        pass
