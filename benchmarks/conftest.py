"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures.  The heavy
shared inputs (suite measurements, the trained synthesizer) are built once
per session at a scale controlled by the ``REPRO_BENCH_SCALE`` environment
variable: ``quick`` (default, minutes) or ``full`` (paper-scale synthetic
kernel counts).  They resolve through the pipeline stage graph
(:mod:`repro.store`), so pointing ``REPRO_STORE_DIR`` at a directory makes
repeat sessions reuse every unchanged stage artifact.

The session also emits a perf snapshot at the repo root — ``BENCH_PR10.json``
by default, overridable with the ``REPRO_BENCH_OUT`` environment variable so
each PR's bench run stops clobbering the previous PR's artifact — recording
wall-clock seconds per pipeline phase (preprocess, train, sample, execute)
plus the ``synthesis`` schema version the sample phase was measured under
(``sample_schema``), so ``scripts/bench_compare.py`` can flag — rather than
fail — sample comparisons spanning a sampling-semantics bump.  See the
"Performance" section of ROADMAP.md for how to read it and for the
benchmark protocol; ``bench_compare`` also refuses to compare snapshots
taken at different scales.

Sharding rides along through the default runner: ``REPRO_SHARDS`` /
``REPRO_WORKERS`` split the data-parallel stages and dispatch them to a
process pool, and ``REPRO_STEAL`` resolves them through the work-stealing
claim queue.  The guards below cover those runs too — a merge fed
entirely by store-warm shards taints its phase exactly like a direct warm
hit, and any sharded or stealing session (whose phases carry shard/claim
overhead, aggregate worker seconds under a pool, or queue wait time) is
refused as a snapshot source: committed snapshots are always cold,
shard-free, steal-free wall-clock.

The ``perfgate`` marker (``-m perfgate``, see ``test_perf_gate.py``) turns
the comparison against the previous PR's committed snapshot into a CI gate.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import pytest

from repro.experiments import (
    ExperimentConfig,
    build_clgen,
    measure_suites,
    synthesize_and_measure,
)
from repro.store import default_runner, warm_phases

#: Wall-clock seconds per pipeline phase, accumulated by the session fixtures.
_PHASE_TIMINGS: dict[str, float] = {}

#: Position in the default runner's event log when the session started, so
#: warm-phase detection only looks at this session's stage resolutions.
_RUNNER_MARK = 0

_SNAPSHOT_PATH = Path(__file__).resolve().parent.parent / os.environ.get(
    "REPRO_BENCH_OUT", "BENCH_PR10.json"
)

#: Pre-PR-1 reference numbers for the quick-scale synthesize-and-measure
#: pipeline, measured at commit 4066a81 (the PR-0 tree) on this machine with
#: ``scripts/profile_pipeline.py``.  Kept here so every snapshot reports its
#: speedup against the same fixed baseline (see ROADMAP.md "Performance").
_PR0_BASELINE_SECONDS = {
    "preprocess": 0.640,
    "train": 0.138,
    "sample": 2.270,
    "execute": 4.313,
}

#: PR-4 reference numbers re-measured at commit 90c7d28 with *this same
#: pytest bench harness* on the same day/machine state as this PR's
#: snapshot (mean of two runs).  The committed ``BENCH_PR4.json`` was
#: recorded under a different machine state — compare against these for a
#: like-for-like phase speedup (ROADMAP "Performance" has the drift
#: caveat).  Caveat for ``sample``: PR 4 measured the sequential-chain
#: sampler (synthesis schema v1); this tree's independently-seeded streams
#: (v2) synthesize different kernels, so the sample comparison is a
#: re-baseline, not a like-for-like speedup (``bench_compare`` flags it).
_PR4_REMEASURED_SECONDS = {
    "preprocess": 0.232,
    "train": 0.153,
    "sample": 0.397,
    "execute": 0.495,
}


#: PR-9 full-scale reference numbers re-measured at commit edd9b4c with
#: this same harness on the same day/machine state as the PR 10 snapshot
#: (mean of two clean runs in a pristine worktree of the PR 9 tree).  The
#: analyzer-guided specialization PR's execute speedup must be read
#: against these — machine state has drifted repeatedly since the PR 5–8
#: snapshots were recorded (see the PR 8 note in ROADMAP "Performance").
_PR9_FULL_REMEASURED_SECONDS = {
    "preprocess": 1.712,
    "train": 0.383,
    "sample": 2.290,
    "execute": 2.687,
}


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perfgate: perf regression gate comparing this session's phase timings "
        "against the previous PR's committed BENCH snapshot (opt-in: -m perfgate)",
    )


def _bench_scale() -> str:
    # Hardened: an unknown scale falls back to "quick" with a warning
    # instead of being silently treated as quick while claiming otherwise.
    from repro.envutil import env_choice

    return env_choice("REPRO_BENCH_SCALE", ("quick", "full"), "quick")


@pytest.fixture(scope="session", autouse=True)
def _bench_runner_mark():
    global _RUNNER_MARK
    _RUNNER_MARK = default_runner().mark()


def _warm_phases() -> list[str]:
    """Phases whose timings this session were tainted by store warmth.

    Warm (cross-session) hits record store-lookup times, not real work — a
    snapshot or perf gate built from them would be bogus, so both refuse
    them.  See :func:`repro.store.stages.warm_phases` for the exact rule
    (it distinguishes structural same-session hits from cross-session ones,
    so even a partially warm phase is caught).
    """
    return warm_phases(default_runner().events[_RUNNER_MARK:])


def _sharded() -> bool:
    """True when this session's runner resolves stages through shards or
    the work-stealing queue.

    Such sessions must never become a snapshot or feed the perf gate:
    pool-computed shards report aggregate worker seconds (up to ~Nx the
    wall-clock on an N-wide pool), in-process sharding adds its own
    measurable overhead (~6% at quick scale, ROADMAP PR 4) that would
    silently eat the gate's 10% headroom, and steal-mode hits time queue
    *waits* rather than work.  Workers without shards never create a pool,
    so those timings stay genuine wall-clock.
    """
    runner = default_runner()
    return runner.plan.sharded or runner.plan.steal


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    if _bench_scale() == "full":
        return ExperimentConfig.full()
    config = ExperimentConfig.quick()
    config.synthetic_kernel_count = 50
    return config


@pytest.fixture(scope="session")
def bench_clgen(bench_config):
    return build_clgen(bench_config, timings=_PHASE_TIMINGS)


@pytest.fixture(scope="session")
def bench_data(bench_config, bench_clgen):
    started = time.perf_counter()
    data = measure_suites(bench_config)
    _PHASE_TIMINGS["execute"] = (
        _PHASE_TIMINGS.get("execute", 0.0) + time.perf_counter() - started
    )
    return synthesize_and_measure(
        bench_config, data, clgen=bench_clgen, timings=_PHASE_TIMINGS
    )


@pytest.fixture(scope="session")
def bench_phase_timings(bench_data) -> dict[str, float]:
    """The session's per-phase wall-clock seconds (forces the heavy fixtures)."""
    return _PHASE_TIMINGS


@pytest.fixture(scope="session")
def bench_warm_phases(bench_data) -> list[str]:
    """Phases served entirely from the artifact store this session."""
    return _warm_phases()


def _build_snapshot() -> dict | None:
    if set(_PHASE_TIMINGS) != {"preprocess", "train", "sample", "execute"}:
        # A filtered or failed session timed only some phases; a partial
        # total would make a bogus speedup.
        return None
    warm = _warm_phases()
    if warm:
        # Store-warm phases timed cache lookups, not pipeline work (e.g. a
        # second session against the same REPRO_STORE_DIR); a snapshot of
        # them would report fantasy speedups.
        print(
            f"bench snapshot skipped: phases {', '.join(warm)} were served "
            "from the artifact store (warm); measure with a cold store",
            file=sys.stderr,
        )
        return None
    if _sharded():
        print(
            "bench snapshot skipped: sharded or work-stealing resolution "
            "active (REPRO_SHARDS/REPRO_WORKERS/REPRO_STEAL); those phases "
            "carry shard/claim overhead (pooled ones aggregate worker "
            "seconds, stealing ones time queue waits) — measure shard-free",
            file=sys.stderr,
        )
        return None
    from repro.store import SCHEMA_VERSIONS

    total = sum(_PHASE_TIMINGS.values())
    snapshot = {
        "scale": _bench_scale(),
        "phases_seconds": {
            phase: round(_PHASE_TIMINGS[phase], 3) for phase in sorted(_PHASE_TIMINGS)
        },
        "total_seconds": round(total, 3),
        # The synthesis schema the sample phase measured: bench_compare
        # flags (instead of failing) sample diffs across a schema bump.
        "sample_schema": SCHEMA_VERSIONS.get("synthesis", 1),
        "unix_time": int(time.time()),
    }
    if _bench_scale() == "quick":
        baseline_total = sum(_PR0_BASELINE_SECONDS.values())
        snapshot["pr0_baseline_seconds"] = dict(_PR0_BASELINE_SECONDS)
        snapshot["pr0_baseline_total_seconds"] = round(baseline_total, 3)
        snapshot["speedup_vs_pr0"] = round(baseline_total / max(total, 1e-9), 2)
        snapshot["pr4_remeasured_seconds"] = dict(_PR4_REMEASURED_SECONDS)
        snapshot["total_speedup_vs_pr4_remeasured"] = round(
            sum(_PR4_REMEASURED_SECONDS.values()) / max(total, 1e-9), 2
        )
    else:
        snapshot["pr9_remeasured_seconds"] = dict(_PR9_FULL_REMEASURED_SECONDS)
        snapshot["execute_speedup_vs_pr9_remeasured"] = round(
            _PR9_FULL_REMEASURED_SECONDS["execute"]
            / max(_PHASE_TIMINGS["execute"], 1e-9),
            2,
        )
    return snapshot


def pytest_sessionfinish(session, exitstatus):
    """Write the per-phase perf snapshot once the heavy fixtures have run."""
    snapshot = _build_snapshot()
    if snapshot is None:
        return
    try:
        _SNAPSHOT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")
    except OSError:
        pass
