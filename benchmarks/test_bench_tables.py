"""Benchmarks regenerating the paper's tables (Table 1, Table 3) and Figure 2."""

from __future__ import annotations

from repro.experiments import (
    average_benchmarks_per_paper,
    coverage_of_top_suites,
    figure2_series,
    run_table1,
)
from repro.suites import suite_summary


def test_bench_figure2_survey(benchmark):
    """Figure 2: average number of benchmarks per paper, by suite."""
    series = benchmark.pedantic(figure2_series, rounds=3, iterations=1)
    print(f"\n[figure2] avg benchmarks/paper={average_benchmarks_per_paper():.1f} (paper: 17); "
          f"top-7 coverage={coverage_of_top_suites():.0%} (paper: 92%)")
    assert series["Rodinia"] > series["SHOC"]


def test_bench_table1_cross_suite(benchmark, bench_config, bench_data):
    """Table 1: Grewe model trained on suite X, tested on suite Y (AMD)."""
    result = benchmark.pedantic(run_table1, args=(bench_config, bench_data), rounds=1, iterations=1)
    best_suite, best_value = result.best_training_suite()
    worst = result.worst_cell()
    print("\n[table1]")
    for row in result.rows():
        print("  " + "  ".join(f"{cell:>12s}" for cell in row))
    print(f"  best training suite: {best_suite} ({best_value:.0%}); "
          f"worst pair: {worst[0]} -> {worst[1]} ({worst[2]:.1%})")
    assert worst[2] < best_value


def test_bench_table3_inventory(benchmark):
    """Table 3: the benchmark inventory (7 suites, 71 programs, ~256 kernels)."""
    rows = benchmark.pedantic(suite_summary, rounds=3, iterations=1)
    total = rows[-1]
    print(f"\n[table3] {total['benchmarks']} benchmarks, {total['kernels']} kernels "
          f"(paper: 71 / 256)")
    assert total["benchmarks"] == 71
