"""Benchmarks regenerating the paper's figures (3, 7, 8, 9) and the §6.1 Turing test."""

from __future__ import annotations

from repro.experiments import (
    run_figure3,
    run_figure7,
    run_figure9,
    run_turing_test,
)
from repro.experiments.figure8 import run_figure8


def test_bench_figure3_feature_space(benchmark, bench_config, bench_data):
    """Figure 3: Parboil PCA projection, before/after adding neighbouring observations."""
    result = benchmark.pedantic(run_figure3, args=(bench_config, bench_data), rounds=1, iterations=1)
    print(f"\n[figure3] accuracy before={result.accuracy_before:.0%} "
          f"after={result.accuracy_after:.0%} (outliers corrected by added neighbours)")
    assert result.accuracy_after >= result.accuracy_before


def test_bench_figure7_npb_speedups(benchmark, bench_config, bench_data):
    """Figure 7: Grewe model on NPB with and without CLgen synthetic benchmarks."""
    result = benchmark.pedantic(run_figure7, args=(bench_config, bench_data), rounds=1, iterations=1)
    print("\n[figure7]")
    for platform, panel in result.platforms.items():
        print(f"  {platform}: {panel.baseline_average:.2f}x -> {panel.with_clgen_average:.2f}x "
              f"over {panel.static_device}-only "
              f"(paper: {'1.26->1.57' if platform == 'AMD' else '2.50->3.26'})")
    print(f"  overall improvement {result.overall_improvement:.2f}x (paper: 1.27x)")
    assert result.platforms["AMD"].baseline_average > 0


def test_bench_figure8_extended_model(benchmark, bench_config, bench_data):
    """Figure 8: extended model (raw features + branches) vs the original model."""
    result = benchmark.pedantic(run_figure8, args=(bench_config, bench_data), rounds=1, iterations=1)
    print("\n[figure8]")
    for platform, panel in result.platforms.items():
        print(f"  {platform}: extended/original {panel.average_speedup:.2f}x "
              f"(paper: {'3.56x' if platform == 'AMD' else '5.04x'}); "
              f"worst benchmarks: {panel.worst_benchmarks(3)}")
    assert result.overall_speedup > 0


def test_bench_figure9_feature_matches(benchmark, bench_config, bench_clgen):
    """Figure 9: kernels matching benchmark static features, per generator."""
    count = max(30, bench_config.synthetic_kernel_count // 2)
    result = benchmark.pedantic(run_figure9, args=(bench_config, bench_clgen, count), rounds=1, iterations=1)
    print("\n[figure9]")
    for label, series in result.series.items():
        print(f"  {label:8s}: {series.match_counts[-1]}/{series.kernel_counts[-1]} "
              f"({series.final_match_fraction:.1%}) match benchmark features")
    print(f"  CLgen matches/benchmark: {result.matches_per_benchmark:.2f} (paper: ~14 at 10k kernels)")
    assert result.fraction("CLgen") >= result.fraction("CLSmith")


def test_bench_turing_test(benchmark, bench_config, bench_clgen):
    """§6.1: simulated judge panel — CLSmith detectable, CLgen at chance."""
    result = benchmark.pedantic(run_turing_test, args=(bench_config, bench_clgen), rounds=1, iterations=1)
    print(f"\n[turing] control(CLSmith)={result.control.mean_score:.0%} "
          f"(paper: 96%), CLgen={result.clgen.mean_score:.0%} (paper: 52%)")
    assert result.control.mean_score > result.clgen.mean_score
