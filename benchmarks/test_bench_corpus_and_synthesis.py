"""Benchmarks for the corpus pipeline (§4.1) and kernel synthesis (§4.3).

Regenerates the corpus statistics (discard rates with/without the shim,
vocabulary reduction) and measures CLgen's synthesis throughput and
acceptance rate.
"""

from __future__ import annotations

from repro.corpus import GitHubMiner
from repro.experiments import run_corpus_stats
from repro.preprocess import PreprocessingPipeline
from repro.synthesis import ArgumentSpec


def test_bench_corpus_statistics(benchmark, bench_config):
    """§4.1: content files -> corpus, with the shim enabled."""
    mining = GitHubMiner(seed=bench_config.seed).mine(bench_config.corpus_repository_count)
    texts = [cf.text for cf in mining.content_files]

    result = benchmark.pedantic(lambda: PreprocessingPipeline(use_shim=True).run(texts), rounds=1, iterations=1)
    stats = result.statistics
    print(f"\n[corpus] files={stats.content_files} discard={stats.discard_rate:.1%} "
          f"kernels={stats.kernel_functions} vocab_reduction={stats.vocabulary_reduction:.1%}")
    assert stats.discard_rate < 0.6
    assert stats.vocabulary_reduction > 0.6


def test_bench_shim_ablation(benchmark, bench_config):
    """§4.1 ablation: discard rate without the shim header (paper: 40% vs 32%)."""
    stats = benchmark.pedantic(run_corpus_stats, args=(bench_config,), rounds=1, iterations=1)
    print(f"\n[shim] without={stats.discard_rate_without_shim:.1%} "
          f"with={stats.discard_rate_with_shim:.1%} (paper: 40% -> 32%)")
    assert stats.discard_rate_with_shim < stats.discard_rate_without_shim


def test_bench_kernel_synthesis(benchmark, bench_clgen, bench_config):
    """§4.3: synthesis throughput and acceptance rate of Algorithm 1 + rejection filter."""
    count = max(10, bench_config.synthetic_kernel_count // 5)

    def synthesize():
        return bench_clgen.generate_kernels(count, seed=1, max_attempts_per_kernel=40)

    result = benchmark.pedantic(synthesize, rounds=1, iterations=1)
    stats = result.statistics
    print(f"\n[synthesis] generated={stats.generated}/{stats.requested} "
          f"acceptance={stats.acceptance_rate:.1%} chars/kernel="
          f"{stats.characters_sampled / max(stats.generated, 1):.0f}")
    assert stats.generated > 0


def test_bench_argument_spec_sampling_modes(benchmark, bench_clgen):
    """§4.3: sampling with an explicit argument specification (Figure 6's spec)."""
    import random

    spec = ArgumentSpec.paper_default()

    def sample_once():
        return bench_clgen.sample_candidate(spec, random.Random(7))

    candidate = benchmark.pedantic(sample_once, rounds=3, iterations=1)
    assert candidate.text.startswith("__kernel void A(")
