"""Opt-in perf regression gate (``-m perfgate``).

Compares this session's freshly measured per-phase timings against the
previous PR's committed ``BENCH_*.json`` snapshot through
``scripts/bench_compare.py``, failing on any phase regression beyond the
documented 10% threshold.  Run it on its own so the timings are cold::

    PYTHONPATH=src python -m pytest benchmarks -m perfgate

Because absolute numbers drift with machine load (ROADMAP "Performance"
caveat), the gate only runs when explicitly selected; in a plain session it
skips before building any fixture.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.perfgate

_ROOT = Path(__file__).resolve().parent.parent
_COMPARE = _ROOT / "scripts" / "bench_compare.py"
#: The previous PR's committed snapshot (the gate's baseline).
_BASELINE = _ROOT / "BENCH_PR3.json"
#: Documented per-phase regression tolerance (ROADMAP "Performance").
_THRESHOLD = 0.10


def test_no_phase_regression_vs_previous_pr(request, tmp_path):
    if "perfgate" not in (request.config.option.markexpr or ""):
        pytest.skip("perf gate is opt-in: select it with -m perfgate")
    if not _BASELINE.exists():
        pytest.skip(f"baseline snapshot {_BASELINE.name} not committed")

    from repro.envutil import env_choice

    baseline = json.loads(_BASELINE.read_text())
    scale = env_choice("REPRO_BENCH_SCALE", ("quick", "full"), "quick")
    if baseline.get("scale") != scale:
        pytest.skip(f"scale mismatch: baseline {baseline.get('scale')!r} vs {scale!r}")

    from repro.store import default_runner

    if default_runner().plan.sharded:
        pytest.skip(
            "sharded resolution active (REPRO_SHARDS/REPRO_WORKERS); "
            "sharded timings carry shard overhead (pooled ones aggregate "
            "worker seconds) — the gate needs shard-free runs"
        )

    # Force the heavy session fixtures only once the gate is actually on.
    timings = request.getfixturevalue("bench_phase_timings")
    warm = request.getfixturevalue("bench_warm_phases")
    if warm:
        pytest.skip(
            f"phases {', '.join(warm)} were served warm from the artifact "
            "store; the gate needs cold timings (clear the store or unset "
            "REPRO_STORE_DIR)"
        )

    fresh = tmp_path / "BENCH_FRESH.json"
    fresh.write_text(
        json.dumps(
            {
                "scale": scale,
                "phases_seconds": {k: round(v, 3) for k, v in timings.items()},
                "total_seconds": round(sum(timings.values()), 3),
            }
        )
    )
    completed = subprocess.run(
        [
            sys.executable,
            str(_COMPARE),
            str(_BASELINE),
            str(fresh),
            "--threshold",
            str(_THRESHOLD),
        ],
        capture_output=True,
        text=True,
        cwd=str(_ROOT),
    )
    assert completed.returncode == 0, (
        f"perf gate failed against {_BASELINE.name}:\n"
        f"{completed.stdout}\n{completed.stderr}"
    )
