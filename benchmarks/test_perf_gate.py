"""Opt-in perf regression gate (``-m perfgate``).

Compares this session's freshly measured per-phase timings against the
previous PR's committed ``BENCH_*.json`` snapshot through
``scripts/bench_compare.py``, failing on any phase regression beyond the
documented 10% threshold.  Run it on its own so the timings are cold::

    PYTHONPATH=src python -m pytest benchmarks -m perfgate

Because absolute numbers drift with machine load (ROADMAP "Performance"
caveat), the gate only runs when explicitly selected; in a plain session it
skips before building any fixture.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.perfgate

_ROOT = Path(__file__).resolve().parent.parent
_COMPARE = _ROOT / "scripts" / "bench_compare.py"
#: The committed snapshot the gate pins against: each PR re-pins to its own
#: re-measured snapshot, because absolute numbers drift with machine state
#: (the PR 8 machine ran ~3x slower than the one that recorded the PR 5–7
#: snapshots — see `pr7_remeasured_seconds` inside BENCH_PR8_full.json for
#: the same-day anchor).  Since PR 5 the synthesis schema is v2; no bump in
#: PR 9 or PR 10 (specialization changes *how* the lockstep tier computes,
#: never *what* any engine computes), so sample gates honestly against this
#: snapshot.
_BASELINE = _ROOT / "BENCH_PR10.json"
#: Documented per-phase regression tolerance (ROADMAP "Performance").
_THRESHOLD = 0.10


def _baseline_snapshot(tmp_path) -> Path | None:
    """The baseline to gate against — the *committed* bytes when possible.

    The default bench output and the gate baseline are the same file since
    PR 5 (the gate pins this PR's own re-baselined snapshot), so a casual
    local bench run overwrites the working-tree copy.  Preferring
    ``git show HEAD:BENCH_PR10.json`` keeps the gate pinned to the committed
    reference regardless of local clobbers; outside a git checkout the
    working-tree file is used as-is.
    """
    committed = subprocess.run(
        ["git", "show", f"HEAD:{_BASELINE.name}"],
        capture_output=True,
        cwd=str(_ROOT),
    )
    if committed.returncode == 0 and committed.stdout.strip():
        path = tmp_path / f"committed-{_BASELINE.name}"
        path.write_bytes(committed.stdout)
        return path
    if _BASELINE.exists():
        return _BASELINE
    return None


def test_no_phase_regression_vs_previous_pr(request, tmp_path):
    if "perfgate" not in (request.config.option.markexpr or ""):
        pytest.skip("perf gate is opt-in: select it with -m perfgate")
    baseline_path = _baseline_snapshot(tmp_path)
    if baseline_path is None:
        pytest.skip(f"baseline snapshot {_BASELINE.name} not committed")

    from repro.envutil import env_choice

    baseline = json.loads(baseline_path.read_text())
    scale = env_choice("REPRO_BENCH_SCALE", ("quick", "full"), "quick")
    if baseline.get("scale") != scale:
        pytest.skip(f"scale mismatch: baseline {baseline.get('scale')!r} vs {scale!r}")

    from repro.store import default_runner

    plan = default_runner().plan
    if plan.sharded or plan.steal:
        pytest.skip(
            "sharded or work-stealing resolution active "
            "(REPRO_SHARDS/REPRO_WORKERS/REPRO_STEAL); those timings carry "
            "shard/claim overhead (pooled ones aggregate worker seconds) — "
            "the gate needs shard-free runs"
        )

    # Force the heavy session fixtures only once the gate is actually on.
    timings = request.getfixturevalue("bench_phase_timings")
    warm = request.getfixturevalue("bench_warm_phases")
    if warm:
        pytest.skip(
            f"phases {', '.join(warm)} were served warm from the artifact "
            "store; the gate needs cold timings (clear the store or unset "
            "REPRO_STORE_DIR)"
        )

    from repro.store import SCHEMA_VERSIONS

    fresh = tmp_path / "BENCH_FRESH.json"
    fresh.write_text(
        json.dumps(
            {
                "scale": scale,
                "phases_seconds": {k: round(v, 3) for k, v in timings.items()},
                "total_seconds": round(sum(timings.values()), 3),
                # Without this the gate would see a phantom schema mismatch
                # vs the committed snapshot and stop gating sample at all.
                "sample_schema": SCHEMA_VERSIONS.get("synthesis", 1),
            }
        )
    )
    completed = subprocess.run(
        [
            sys.executable,
            str(_COMPARE),
            str(baseline_path),
            str(fresh),
            "--threshold",
            str(_THRESHOLD),
        ],
        capture_output=True,
        text=True,
        cwd=str(_ROOT),
    )
    assert completed.returncode == 0, (
        f"perf gate failed against {_BASELINE.name}:\n"
        f"{completed.stdout}\n{completed.stderr}"
    )
